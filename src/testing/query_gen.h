#ifndef RAPIDA_TESTING_QUERY_GEN_H_
#define RAPIDA_TESTING_QUERY_GEN_H_

#include <memory>
#include <string>

#include "sparql/ast.h"
#include "testing/vocab.h"
#include "util/random.h"

namespace rapida::difftest {

/// Knobs for the random analytical-query generator. The defaults are biased
/// toward the paper's MG ("multiple groupings over overlapping patterns")
/// and MA ("grouping + top-level arithmetic") shapes.
struct GenOptions {
  int max_groupings = 4;
  int max_stars = 4;
  double multi_grouping_bias = 0.70;  // P(>= 2 groupings)
  /// P(a grouping carries >= 1 OPTIONAL tail). Tails are single
  /// subject-rooted stars over fresh variables (the analyzer's left
  /// star-join form), sometimes with optional-local filters, post-filters
  /// over optional variables, optional-variable aggregates, and
  /// NULL-capable group keys.
  double optional_bias = 0.25;
  /// P(a grouping's pattern is a UNION chain of 2-3 arms), each arm adding
  /// constant-pinned, type, or fresh-variable triples to the required
  /// pattern.
  double union_bias = 0.15;
  /// Multi-valued data bias (--grammar=multival): the generated dataset
  /// draws every mean multi-valued fanout from [3, 10] objects per
  /// predicate-subject pair (pubmed mesh/chemical/author/grant, bsbm
  /// offers; chem boosts publications-per-gene, its reverse fanout), the
  /// regime where flat star-join outputs are per-subject cross products
  /// and the factorized path must still match byte for byte.
  bool multival = false;
};

/// Generates one valid analytical query over `schema`, deterministically
/// from `rng`. The result always passes analytics::AnalyzeQuery: star
/// patterns with variable subjects and bound predicates, connected via the
/// schema's join edges, 1-4 groupings each carrying >= 1 aggregate, and
/// (for multi-grouping queries) a top level that only references grouping
/// output columns. Solution modifiers that would make results order- or
/// tie-dependent are avoided (a LIMIT always comes with a total ORDER BY).
std::unique_ptr<sparql::SelectQuery> GenerateQuery(const VocabSchema& schema,
                                                   Random* rng,
                                                   const GenOptions& opts = {});

/// Picks a dataset (uniformly among AllSchemas()) and generates a query
/// for it. `dataset_out` receives the chosen dataset name.
std::unique_ptr<sparql::SelectQuery> GenerateAnyQuery(
    Random* rng, std::string* dataset_out, const GenOptions& opts = {});

}  // namespace rapida::difftest

#endif  // RAPIDA_TESTING_QUERY_GEN_H_
