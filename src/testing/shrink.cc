#include "testing/shrink.h"

#include <algorithm>
#include <functional>
#include <set>
#include <utility>

#include "analytics/analytical_query.h"
#include "sparql/parser.h"
#include "util/logging.h"

namespace rapida::difftest {

namespace {

using sparql::SelectQuery;

/// Deep copy by round-tripping through the printer; ToString/ParseQuery are
/// exact inverses over the supported subset (robustness_test's property).
std::unique_ptr<SelectQuery> CloneQuery(const SelectQuery& q) {
  StatusOr<std::unique_ptr<SelectQuery>> parsed =
      sparql::ParseQuery(q.ToString());
  if (!parsed.ok()) {
    RAPIDA_LOG(Error) << "shrinker clone failed to re-parse: "
                      << parsed.status().ToString();
    return nullptr;
  }
  return std::move(parsed).value();
}

/// The "grouping" SELECTs of a query: the subqueries if it is
/// multi-grouping, else the query itself.
std::vector<SelectQuery*> Groupings(SelectQuery* q) {
  std::vector<SelectQuery*> out;
  if (q->where.subqueries.empty()) {
    out.push_back(q);
  } else {
    for (auto& sub : q->where.subqueries) out.push_back(sub.get());
  }
  return out;
}

/// After an edit removed columns, re-validates the top level: drops items
/// whose inputs vanished, ORDER BY keys over dropped outputs, HAVING over
/// dropped outputs, and a LIMIT whose ordering is no longer total (a
/// partial-order LIMIT would make results engine-dependent — a fake
/// "repro" the shrinker must never manufacture).
void CleanTopLevel(SelectQuery* q) {
  if (!q->where.subqueries.empty()) {
    std::set<std::string> cols;
    for (const auto& sub : q->where.subqueries) {
      for (const auto& item : sub->items) cols.insert(item.name);
    }
    auto gone = [&cols](const sparql::SelectItem& item) {
      if (item.expr == nullptr) return cols.count(item.name) == 0;
      std::vector<std::string> vars;
      item.expr->CollectVars(&vars);
      for (const std::string& v : vars) {
        if (cols.count(v) == 0) return true;
      }
      return false;
    };
    q->items.erase(std::remove_if(q->items.begin(), q->items.end(), gone),
                   q->items.end());
  }
  std::set<std::string> outs;
  for (const auto& item : q->items) outs.insert(item.name);
  q->order_by.erase(
      std::remove_if(q->order_by.begin(), q->order_by.end(),
                     [&](const sparql::OrderKey& k) {
                       return outs.count(k.var) == 0;
                     }),
      q->order_by.end());
  if (q->having != nullptr) {
    std::vector<std::string> vars;
    q->having->CollectVars(&vars);
    for (const std::string& v : vars) {
      if (outs.count(v) == 0) {
        q->having = nullptr;
        break;
      }
    }
  }
  if (q->limit >= 0 && q->order_by.size() < outs.size()) {
    q->limit = -1;
    q->offset = 0;
  }
}

using EditFn = std::function<bool(SelectQuery*)>;

/// All single-step reductions of `q`, biggest wins first. Each is applied
/// to a *clone* of q; edits identify their target by index, which is safe
/// because the clone is structurally identical.
std::vector<EditFn> EnumerateEdits(const SelectQuery& q) {
  std::vector<EditFn> edits;
  if (q.where.subqueries.size() >= 2) {
    for (size_t i = 0; i < q.where.subqueries.size(); ++i) {
      edits.push_back([i](SelectQuery* c) {
        c->where.subqueries.erase(c->where.subqueries.begin() + i);
        CleanTopLevel(c);
        return !c->items.empty();
      });
    }
  }
  std::vector<SelectQuery*> groupings =
      Groupings(const_cast<SelectQuery*>(&q));
  for (size_t gi = 0; gi < groupings.size(); ++gi) {
    const SelectQuery& g = *groupings[gi];
    for (size_t ti = 0; ti < g.where.triples.size(); ++ti) {
      edits.push_back([gi, ti](SelectQuery* c) {
        SelectQuery* cg = Groupings(c)[gi];
        if (cg->where.triples.size() <= 1) return false;
        cg->where.triples.erase(cg->where.triples.begin() + ti);
        return true;
      });
    }
    for (size_t fi = 0; fi < g.where.filters.size(); ++fi) {
      edits.push_back([gi, fi](SelectQuery* c) {
        SelectQuery* cg = Groupings(c)[gi];
        cg->where.filters.erase(cg->where.filters.begin() + fi);
        return true;
      });
    }
    for (size_t oi = 0; oi < g.where.optionals.size(); ++oi) {
      // Drop the whole OPTIONAL block (aggregates/keys over its variables
      // make the clone fail analysis, which skips the edit).
      edits.push_back([gi, oi](SelectQuery* c) {
        SelectQuery* cg = Groupings(c)[gi];
        cg->where.optionals.erase(cg->where.optionals.begin() + oi);
        return true;
      });
      const sparql::GroupGraphPattern& opt = g.where.optionals[oi];
      for (size_t ti = 0; ti < opt.triples.size(); ++ti) {
        edits.push_back([gi, oi, ti](SelectQuery* c) {
          sparql::GroupGraphPattern& o =
              Groupings(c)[gi]->where.optionals[oi];
          if (o.triples.size() <= 1) return false;
          o.triples.erase(o.triples.begin() + ti);
          return true;
        });
      }
      for (size_t fi = 0; fi < opt.filters.size(); ++fi) {
        edits.push_back([gi, oi, fi](SelectQuery* c) {
          sparql::GroupGraphPattern& o =
              Groupings(c)[gi]->where.optionals[oi];
          o.filters.erase(o.filters.begin() + fi);
          return true;
        });
      }
    }
    if (!g.where.unions.empty()) {
      // Replace the UNION with one arm inlined into the group — the biggest
      // single-step reduction of a union query. Never leaves a 1-arm UNION
      // (the printer cannot round-trip one).
      for (size_t ai = 0; ai < g.where.unions.size(); ++ai) {
        edits.push_back([gi, ai](SelectQuery* c) {
          SelectQuery* cg = Groupings(c)[gi];
          sparql::GroupGraphPattern arm = std::move(cg->where.unions[ai]);
          cg->where.unions.clear();
          for (auto& t : arm.triples) {
            cg->where.triples.push_back(std::move(t));
          }
          for (auto& f : arm.filters) {
            cg->where.filters.push_back(std::move(f));
          }
          for (auto& o : arm.optionals) {
            cg->where.optionals.push_back(std::move(o));
          }
          return true;
        });
      }
      if (g.where.unions.size() >= 3) {
        for (size_t ai = 0; ai < g.where.unions.size(); ++ai) {
          edits.push_back([gi, ai](SelectQuery* c) {
            SelectQuery* cg = Groupings(c)[gi];
            cg->where.unions.erase(cg->where.unions.begin() + ai);
            return true;
          });
        }
      }
      for (size_t ai = 0; ai < g.where.unions.size(); ++ai) {
        const sparql::GroupGraphPattern& arm = g.where.unions[ai];
        for (size_t ti = 0; ti < arm.triples.size(); ++ti) {
          edits.push_back([gi, ai, ti](SelectQuery* c) {
            sparql::GroupGraphPattern& a = Groupings(c)[gi]->where.unions[ai];
            if (a.triples.size() <= 1) return false;
            a.triples.erase(a.triples.begin() + ti);
            return true;
          });
        }
        for (size_t fi = 0; fi < arm.filters.size(); ++fi) {
          edits.push_back([gi, ai, fi](SelectQuery* c) {
            sparql::GroupGraphPattern& a = Groupings(c)[gi]->where.unions[ai];
            a.filters.erase(a.filters.begin() + fi);
            return true;
          });
        }
      }
    }
    if (g.having != nullptr) {
      edits.push_back([gi](SelectQuery* c) {
        Groupings(c)[gi]->having = nullptr;
        return true;
      });
    }
    size_t num_aggs = 0;
    for (const auto& item : g.items) {
      if (item.expr != nullptr) ++num_aggs;
    }
    for (size_t ii = 0; ii < g.items.size(); ++ii) {
      bool is_agg = g.items[ii].expr != nullptr;
      if (is_agg && num_aggs < 2) continue;  // a grouping needs >= 1 agg
      edits.push_back([gi, ii, is_agg](SelectQuery* c) {
        SelectQuery* cg = Groupings(c)[gi];
        std::string name = cg->items[ii].name;
        cg->items.erase(cg->items.begin() + ii);
        if (!is_agg) {
          cg->group_by.erase(
              std::remove(cg->group_by.begin(), cg->group_by.end(), name),
              cg->group_by.end());
        }
        if (cg != c && cg->items.empty()) return false;
        CleanTopLevel(c);
        return !c->items.empty();
      });
    }
  }
  if (!q.order_by.empty() || q.limit >= 0 || q.offset > 0) {
    edits.push_back([](SelectQuery* c) {
      c->order_by.clear();
      c->limit = -1;
      c->offset = 0;
      return true;
    });
  }
  if (q.limit >= 0) {
    edits.push_back([](SelectQuery* c) {
      c->limit = -1;
      c->offset = 0;
      return true;
    });
  }
  if (q.distinct) {
    edits.push_back([](SelectQuery* c) {
      c->distinct = false;
      return true;
    });
  }
  return edits;
}

bool AnalyzesOk(const SelectQuery& q) {
  return analytics::AnalyzeQuery(q).ok();
}

}  // namespace

ShrinkResult Shrink(const FuzzCase& original, const DiffOptions& diff_opts,
                    int max_predicate_calls) {
  ShrinkResult out;
  out.reduced.seed = original.seed;
  out.reduced.dataset = original.dataset;
  out.reduced.triples = original.triples;
  out.reduced.query = CloneQuery(*original.query);
  if (out.reduced.query == nullptr) {
    out.reduced.query = nullptr;
    return out;
  }

  auto still_fails = [&](const FuzzCase& c, DiffFailure* f) {
    if (out.predicate_calls >= max_predicate_calls) return false;
    ++out.predicate_calls;
    *f = RunDifferential(c, diff_opts);
    return f->failed && f->kind != "analyze";
  };

  if (!still_fails(out.reduced, &out.failure)) {
    return out;  // not a failing case (or budget exhausted) — nothing to do
  }

  auto shrink_query = [&]() {
    bool progress = true;
    while (progress && out.predicate_calls < max_predicate_calls) {
      progress = false;
      for (const EditFn& edit : EnumerateEdits(*out.reduced.query)) {
        std::unique_ptr<SelectQuery> cand = CloneQuery(*out.reduced.query);
        if (cand == nullptr || !edit(cand.get())) continue;
        if (!AnalyzesOk(*cand)) continue;
        FuzzCase trial;
        trial.seed = out.reduced.seed;
        trial.dataset = out.reduced.dataset;
        trial.query = std::move(cand);
        trial.triples = out.reduced.triples;
        DiffFailure f;
        if (still_fails(trial, &f)) {
          out.reduced.query = std::move(trial.query);
          out.failure = f;
          progress = true;
          break;
        }
        if (out.predicate_calls >= max_predicate_calls) break;
      }
    }
  };

  auto shrink_data = [&]() {
    // Zeller-style ddmin on the triple list.
    size_t n = 2;
    while (out.reduced.triples.size() >= 2 &&
           out.predicate_calls < max_predicate_calls) {
      size_t size = out.reduced.triples.size();
      size_t chunk = std::max<size_t>(1, size / n);
      bool reduced = false;
      for (size_t start = 0; start < size; start += chunk) {
        FuzzCase trial;
        trial.seed = out.reduced.seed;
        trial.dataset = out.reduced.dataset;
        trial.query = CloneQuery(*out.reduced.query);
        size_t end = std::min(size, start + chunk);
        trial.triples.reserve(size - (end - start));
        for (size_t i = 0; i < size; ++i) {
          if (i < start || i >= end) {
            trial.triples.push_back(out.reduced.triples[i]);
          }
        }
        DiffFailure f;
        if (still_fails(trial, &f)) {
          out.reduced.triples = std::move(trial.triples);
          out.failure = f;
          n = std::max<size_t>(2, n - 1);
          reduced = true;
          break;
        }
        if (out.predicate_calls >= max_predicate_calls) break;
      }
      if (!reduced) {
        if (n >= out.reduced.triples.size()) break;
        n = std::min(out.reduced.triples.size(), n * 2);
      }
    }
  };

  shrink_query();
  shrink_data();
  shrink_query();  // smaller data often unlocks further query reductions
  return out;
}

std::string FormatRepro(const FuzzCase& c, const DiffFailure& failure) {
  std::string out;
  out += "=== rapida_fuzz repro ===\n";
  out += "seed:    " + std::to_string(c.seed) + "\n";
  out += "dataset: " + c.dataset + " (" + std::to_string(c.triples.size()) +
         " triples)\n";
  out += "failure: " + failure.ToString() + "\n";
  out += "query:\n";
  out += c.query != nullptr ? c.query->ToString() : "<unparseable>";
  out += "\n";
  if (c.triples.size() <= 100) {
    out += "data:\n";
    for (const TripleSpec& t : c.triples) {
      out += "  " + t[0].ToNTriples() + " " + t[1].ToNTriples() + " " +
             t[2].ToNTriples() + " .\n";
    }
  }
  return out;
}

}  // namespace rapida::difftest
