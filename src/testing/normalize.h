#ifndef RAPIDA_TESTING_NORMALIZE_H_
#define RAPIDA_TESTING_NORMALIZE_H_

#include <string>
#include <vector>

#include "analytics/binding.h"
#include "rdf/dictionary.h"

namespace rapida::difftest {

/// Tolerant float equality: |a-b| <= abs_tol or <= rel_tol * max(|a|,|b|).
/// The differential harness compares AVG / arithmetic outputs with this so
/// a different (but algebraically equal) summation order never reports a
/// false engine mismatch.
bool ApproxEqual(double a, double b, double rel_tol = 1e-9,
                 double abs_tol = 1e-9);

/// One result cell, decoded out of an engine-specific dictionary. Numeric
/// literals carry their parsed value (so 5 == 5.0 across datatypes); all
/// other terms carry their canonical SPARQL text (<iri> or "literal").
/// An unbound cell (OPTIONAL left a variable without a value) is a
/// structural state of its own — it never equals any literal, not even ""
/// — and sorts before every bound cell.
struct NormalizedCell {
  bool is_unbound = false;
  bool is_number = false;
  double number = 0;
  std::string text;
};

/// An engine result in canonical form: columns sorted by name, every row
/// permuted to that column order, rows sorted. Two engines agree iff their
/// NormalizedTables compare equal under the tolerant cell comparison —
/// row order, dictionary ids, and float representation are all factored
/// out (result *multisets* are compared; duplicate rows must match too).
struct NormalizedTable {
  std::vector<std::string> columns;
  std::vector<std::vector<NormalizedCell>> rows;
};

NormalizedTable Normalize(const analytics::BindingTable& table,
                          const rdf::Dictionary& dict);

/// Empty string if equal; otherwise a human-readable description of the
/// first difference (column sets, row counts, or the first divergent row).
std::string CompareNormalized(const NormalizedTable& expected,
                              const NormalizedTable& actual);

/// Stable text form for golden-result fixtures. Round-trips through
/// ParseNormalized with enough precision that CompareNormalized on the
/// parsed table reports equality.
std::string SerializeNormalized(const NormalizedTable& table);
bool ParseNormalized(const std::string& text, NormalizedTable* out);

}  // namespace rapida::difftest

#endif  // RAPIDA_TESTING_NORMALIZE_H_
