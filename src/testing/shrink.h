#ifndef RAPIDA_TESTING_SHRINK_H_
#define RAPIDA_TESTING_SHRINK_H_

#include <string>

#include "testing/differential.h"

namespace rapida::difftest {

/// Result of minimizing a failing fuzz case.
struct ShrinkResult {
  FuzzCase reduced;       // smallest query + dataset that still fails
  DiffFailure failure;    // the failure the reduced case produces
  int predicate_calls = 0;
};

/// Greedily minimizes a failing case: repeatedly tries structural query
/// reductions (drop a grouping subquery, triple pattern, filter, HAVING,
/// surplus aggregate, GROUP BY key, or solution modifier) and ddmin-style
/// dataset bisection, keeping any reduction after which RunDifferential
/// still reports a (non-"analyze") failure. At most `max_predicate_calls`
/// differential runs are spent. `diff_opts` should be the options the
/// original failure was observed under (same thread counts / fault
/// injection), so the predicate hunts the same bug.
ShrinkResult Shrink(const FuzzCase& original, const DiffOptions& diff_opts,
                    int max_predicate_calls = 400);

/// Renders a self-contained repro report: seed, dataset name and size, the
/// (reduced) SPARQL text, the failure, and an N-Triples-style dump of the
/// (reduced) data when it is small enough to paste into a test.
std::string FormatRepro(const FuzzCase& c, const DiffFailure& failure);

}  // namespace rapida::difftest

#endif  // RAPIDA_TESTING_SHRINK_H_
