#ifndef RAPIDA_TESTING_VOCAB_H_
#define RAPIDA_TESTING_VOCAB_H_

#include <string>
#include <vector>

#include "rdf/graph.h"
#include "util/random.h"

namespace rapida::difftest {

/// A non-join property of a star template: either a dimension (IRI/string
/// valued — groupable) or a measure (numeric — SUM/AVG/MIN/MAX-able).
struct SchemaProp {
  std::string iri;  // full property IRI
  enum class Kind { kDim, kNumber } kind = Kind::kDim;
  /// Dimension only: literal constants the generator may pin the object to
  /// instead of a variable (selectivity variants, e.g. pub_type "News").
  std::vector<std::string> constants;
  /// Measure only: plausible FILTER threshold range in the generated data.
  double lo = 0;
  double hi = 100;
};

/// One subject-rooted star the generator can instantiate, mirroring an
/// entity class of the workload generators in src/workload/.
struct StarTemplate {
  std::string hint;  // variable-name stem ("off", "p", "v", ...)
  /// Candidate rdf:type constants (full IRIs); empty = class is untyped.
  std::vector<std::string> types;
  std::vector<SchemaProp> props;
};

/// A join edge between two star templates. An empty prop means "the shared
/// variable is that star's subject"; a non-empty prop means the star gains
/// a triple (?subj <prop> ?shared). Both non-empty = object-object join
/// (e.g. Chem2Bio's ?b :assay_gi ?gi . ?u :gi ?gi).
struct JoinTemplate {
  int star_a = 0;
  std::string prop_a;
  int star_b = 0;
  std::string prop_b;
  std::string hint;  // shared-variable name stem
};

/// Query-generation vocabulary for one workload dataset.
struct VocabSchema {
  std::string dataset;  // "bsbm" | "chem" | "pubmed"
  std::vector<StarTemplate> stars;
  std::vector<JoinTemplate> joins;
};

/// Schemas for the three paper workloads, in catalog order.
const std::vector<VocabSchema>& AllSchemas();
const VocabSchema& SchemaFor(const std::string& dataset);

/// Generates a small randomized instance of the named workload: config
/// sizes are drawn from `rng`, so every fuzz seed sees a different shape
/// and scale (but the same seed always sees the same data). With
/// `multival` every mean multi-valued fanout is drawn from [3, 10]
/// objects per predicate-subject pair instead of the default [1, ~3]
/// (GenOptions::multival; subject counts are trimmed so the flat
/// cross products stay executable).
rdf::Graph GenerateFuzzGraph(const std::string& dataset, Random* rng,
                             bool multival = false);

}  // namespace rapida::difftest

#endif  // RAPIDA_TESTING_VOCAB_H_
