#ifndef RAPIDA_TESTING_DIFFERENTIAL_H_
#define RAPIDA_TESTING_DIFFERENTIAL_H_

#include <array>
#include <memory>
#include <string>
#include <vector>

#include "engines/engine.h"
#include "rdf/graph.h"
#include "rdf/term.h"
#include "sparql/ast.h"
#include "testing/query_gen.h"

namespace rapida::difftest {

/// One decoded triple. Fuzz datasets are carried in this form (not as
/// rdf::Graph) because a Graph is move-only and the shrinker needs to
/// rebuild bisected subsets of the data cheaply.
using TripleSpec = std::array<rdf::Term, 3>;

std::vector<TripleSpec> DecodeGraph(const rdf::Graph& graph);
rdf::Graph BuildGraph(const std::vector<TripleSpec>& triples);

/// A reproducible fuzz case: everything below is a pure function of the
/// seed (dataset choice, generated data, and generated query come from
/// independent Random::Split streams, so the shrinker can vary one without
/// disturbing the other).
struct FuzzCase {
  uint64_t seed = 0;
  std::string dataset;
  std::unique_ptr<sparql::SelectQuery> query;
  std::vector<TripleSpec> triples;
};

FuzzCase MakeFuzzCase(uint64_t seed);

/// As above with explicit generator knobs (e.g. the OPTIONAL/UNION-biased
/// grammar of `rapida_fuzz --grammar=opt-union`). The same (seed, opts)
/// pair always yields the same case; the data stream is independent of the
/// grammar, so a seed's dataset is identical under every grammar.
FuzzCase MakeFuzzCase(uint64_t seed, const GenOptions& gen);

/// Artificial engine bugs for exercising the harness itself (the shrinker
/// acceptance test, and `rapida_fuzz --inject`).
enum class FaultKind {
  kNone,
  kDropRow,            // silently drop the last result row
  kPerturbAggregate,   // add 1 to the first numeric cell of the first row
};

struct DiffOptions {
  std::vector<int> thread_counts = {1, 8};
  /// Cap on exec split size, so even tiny fuzz datasets are divided across
  /// several in-process mappers (otherwise exec_threads never matters).
  uint64_t exec_split_bytes = 4 * 1024;
  FaultKind fault = FaultKind::kNone;
  std::string fault_engine;  // engine name() to sabotage, e.g. "RAPIDAnalytics"
  /// Also assert the paper's cost-model invariants (RAPIDAnalytics never
  /// takes more MR cycles than RAPID+; cycle counts independent of
  /// exec_threads).
  bool check_cost_invariants = true;
  /// Optimizer pass toggles for the engines under test (the reference
  /// evaluator ignores them). Used to force e.g. the vectorized-kernels
  /// pass on or off across a whole corpus run.
  engine::EngineOptions engine_options;
  /// Shard counts to additionally run every engine under (both placement
  /// schemes each), cross-checking each sharded run against the reference
  /// AND against the unsharded baseline's cycle count and total shuffled
  /// bytes — sharding may never change the workflow, only its placement.
  /// Entries <= 1 are ignored (that is the baseline). Empty = unsharded
  /// only.
  std::vector<int> shard_counts;
};

/// The first divergence found, or failed == false if all engines agree
/// with the reference evaluator everywhere.
struct DiffFailure {
  bool failed = false;
  std::string kind;    // analyze | reference | engine-error | mismatch |
                       // cost-invariant
  std::string engine;  // offending engine name ("" for analyze/reference)
  int threads = 0;
  std::string detail;

  std::string ToString() const;
};

/// Runs `c.query` over `c.triples` on all four engines at every requested
/// thread count and cross-checks each normalized result multiset against
/// the in-memory reference evaluator.
DiffFailure RunDifferential(const FuzzCase& c, const DiffOptions& opts = {});

/// Service mode: submits the generated query through a QueryService with
/// caching and shared-scan batching enabled — as a concurrent burst of
/// duplicates from several sessions (exercising admission, dedup and
/// batching), then again hot (result cache) — and cross-checks every
/// returned table against the reference evaluator. Caching and batching
/// must never change results.
DiffFailure RunServiceDifferential(const FuzzCase& c);

}  // namespace rapida::difftest

#endif  // RAPIDA_TESTING_DIFFERENTIAL_H_
