#ifndef RAPIDA_UTIL_THREAD_POOL_H_
#define RAPIDA_UTIL_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

namespace rapida::util {

/// Fixed-size worker pool. Tasks run FIFO on the worker threads; an
/// exception escaping a task is captured in the task's future and rethrown
/// from get() (ParallelFor rethrows the first one in index order). The
/// destructor drains queued tasks before joining the workers.
class ThreadPool {
 public:
  explicit ThreadPool(int num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int num_threads() const { return static_cast<int>(workers_.size()); }

  /// Enqueues one task. The returned future becomes ready when the task
  /// completes (get() rethrows anything the task threw).
  std::future<void> Submit(std::function<void()> fn);

  /// Runs fn(0) .. fn(n-1) across the pool and blocks until every call
  /// has completed. The calling thread participates, so a pool of k
  /// workers gives k+1-way concurrency and n == 1 never leaves this
  /// thread idle.
  void ParallelFor(size_t n, const std::function<void(size_t)>& fn);

  /// hardware_concurrency(), floored at 1 (the standard allows 0).
  static int HardwareThreads();

 private:
  void WorkerLoop();
  /// Pops and runs one queued task; returns false when the queue is empty.
  bool RunOneTask();

  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::packaged_task<void()>> queue_;
  bool shutdown_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace rapida::util

#endif  // RAPIDA_UTIL_THREAD_POOL_H_
