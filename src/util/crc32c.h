#ifndef RAPIDA_UTIL_CRC32C_H_
#define RAPIDA_UTIL_CRC32C_H_

#include <cstdint>
#include <string_view>

namespace rapida::util {

/// CRC-32C (Castagnoli polynomial 0x1EDC6F41, reflected 0x82F63B78) — the
/// checksum used for artifact page integrity in the materialization store.
/// Table-driven, byte at a time; plenty for the store's page sizes, and the
/// polynomial's error-detection properties are what matter, not throughput.
///
/// Streaming: Crc32c(data) == Crc32cExtend(Crc32cExtend(0, a), b) for any
/// split data == a + b, so large payloads can be checksummed in chunks.
uint32_t Crc32cExtend(uint32_t crc, std::string_view data);

inline uint32_t Crc32c(std::string_view data) {
  return Crc32cExtend(0, data);
}

}  // namespace rapida::util

#endif  // RAPIDA_UTIL_CRC32C_H_
