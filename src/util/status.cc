#include "util/status.h"

namespace rapida {

const char* CodeName(Code code) {
  switch (code) {
    case Code::kOk:
      return "OK";
    case Code::kInvalidArgument:
      return "InvalidArgument";
    case Code::kNotFound:
      return "NotFound";
    case Code::kAlreadyExists:
      return "AlreadyExists";
    case Code::kOutOfRange:
      return "OutOfRange";
    case Code::kUnimplemented:
      return "Unimplemented";
    case Code::kInternal:
      return "Internal";
    case Code::kResourceExhausted:
      return "ResourceExhausted";
    case Code::kParseError:
      return "ParseError";
    case Code::kDeadlineExceeded:
      return "DeadlineExceeded";
    case Code::kUnavailable:
      return "Unavailable";
    case Code::kDataLoss:
      return "DataLoss";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = CodeName(code_);
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

}  // namespace rapida
