#include "util/arena.h"

#include <algorithm>

namespace rapida::util {

void Arena::AddBlock(size_t min_bytes) {
  size_t block = std::max(next_block_bytes_, min_bytes);
  blocks_.push_back(std::make_unique<char[]>(block));
  cursor_ = blocks_.back().get();
  remaining_ = block;
  // Geometric growth amortizes block setup without holding large slack for
  // small producers.
  next_block_bytes_ = std::min(next_block_bytes_ * 2, kMaxBlock);
}

}  // namespace rapida::util
