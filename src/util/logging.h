#ifndef RAPIDA_UTIL_LOGGING_H_
#define RAPIDA_UTIL_LOGGING_H_

#include <cstdlib>
#include <iostream>
#include <sstream>
#include <string>

namespace rapida {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

/// Process-wide minimum level for emitted log lines; defaults to kWarning so
/// library users are not spammed. Benchmarks raise it to kInfo with -v.
LogLevel GetLogLevel();
void SetLogLevel(LogLevel level);

namespace internal_logging {

/// Accumulates one log line and flushes it (with level prefix) on
/// destruction. For kFatal-style usage see RAPIDA_CHECK below.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  template <typename T>
  LogMessage& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

/// Like LogMessage but aborts the process after flushing. Used by
/// RAPIDA_CHECK for invariant violations (programming errors, not data
/// errors — data errors go through Status).
class FatalLogMessage {
 public:
  FatalLogMessage(const char* file, int line, const char* condition);
  [[noreturn]] ~FatalLogMessage();

  template <typename T>
  FatalLogMessage& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  std::ostringstream stream_;
};

}  // namespace internal_logging

#define RAPIDA_LOG(level)                                              \
  if (::rapida::LogLevel::k##level >= ::rapida::GetLogLevel())         \
  ::rapida::internal_logging::LogMessage(::rapida::LogLevel::k##level, \
                                         __FILE__, __LINE__)

/// Aborts with a message when `condition` is false. Use only for internal
/// invariants; user-visible failures must return Status.
#define RAPIDA_CHECK(condition)                                       \
  if (!(condition))                                                   \
  ::rapida::internal_logging::FatalLogMessage(__FILE__, __LINE__,     \
                                              #condition)

#define RAPIDA_DCHECK(condition) RAPIDA_CHECK(condition)

}  // namespace rapida

#endif  // RAPIDA_UTIL_LOGGING_H_
