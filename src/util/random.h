#ifndef RAPIDA_UTIL_RANDOM_H_
#define RAPIDA_UTIL_RANDOM_H_

#include <cstdint>

namespace rapida {

/// Deterministic 64-bit RNG (xorshift128+). All workload generators use this
/// so that datasets are reproducible across runs and platforms; std::mt19937
/// is avoided because its distribution adapters are not cross-stdlib stable.
class Random {
 public:
  explicit Random(uint64_t seed);

  /// Uniform value in [0, 2^64).
  uint64_t Next();

  /// Uniform value in [0, n). n must be > 0.
  uint64_t Uniform(uint64_t n);

  /// Uniform value in [lo, hi]. Requires lo <= hi.
  int64_t UniformRange(int64_t lo, int64_t hi);

  /// Uniform double in [0, 1).
  double NextDouble();

  /// True with probability p (clamped to [0,1]).
  bool Bernoulli(double p);

  /// Zipf-distributed rank in [0, n): rank r chosen with probability
  /// proportional to 1/(r+1)^s. Used to produce the skewed entity
  /// popularity typical of RDF datasets (few hot product types / journals).
  uint64_t Zipf(uint64_t n, double s);

  /// Returns an independent child stream, advancing this stream by exactly
  /// one draw. Use when several consumers (dataset generator, query
  /// generator, scheduler) must each see a deterministic sequence that does
  /// not shift when another consumer changes how many values it draws.
  Random Fork();

  /// Returns the independent stream for `stream_id` WITHOUT advancing this
  /// stream: Split(i) is a pure function of (current state, i), so any
  /// number of named streams can be derived from one point in the parent
  /// sequence.
  Random Split(uint64_t stream_id) const;

 private:
  uint64_t state0_;
  uint64_t state1_;
};

}  // namespace rapida

#endif  // RAPIDA_UTIL_RANDOM_H_
