#include "util/crc32c.h"

#include <array>

namespace rapida::util {

namespace {

constexpr uint32_t kPoly = 0x82F63B78u;  // reflected Castagnoli

constexpr std::array<uint32_t, 256> MakeTable() {
  std::array<uint32_t, 256> table{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t crc = i;
    for (int bit = 0; bit < 8; ++bit) {
      crc = (crc & 1) ? (crc >> 1) ^ kPoly : crc >> 1;
    }
    table[i] = crc;
  }
  return table;
}

constexpr std::array<uint32_t, 256> kTable = MakeTable();

}  // namespace

uint32_t Crc32cExtend(uint32_t crc, std::string_view data) {
  crc = ~crc;
  for (char c : data) {
    crc = kTable[(crc ^ static_cast<unsigned char>(c)) & 0xFF] ^ (crc >> 8);
  }
  return ~crc;
}

}  // namespace rapida::util
