#include "util/random.h"

#include <cmath>

namespace rapida {

Random::Random(uint64_t seed) {
  // SplitMix64 to expand the seed into two non-zero state words.
  auto splitmix = [](uint64_t& x) {
    x += 0x9e3779b97f4a7c15ULL;
    uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  };
  uint64_t x = seed;
  state0_ = splitmix(x);
  state1_ = splitmix(x);
  if (state0_ == 0 && state1_ == 0) state1_ = 1;
}

uint64_t Random::Next() {
  uint64_t s1 = state0_;
  const uint64_t s0 = state1_;
  state0_ = s0;
  s1 ^= s1 << 23;
  state1_ = s1 ^ s0 ^ (s1 >> 18) ^ (s0 >> 5);
  return state1_ + s0;
}

uint64_t Random::Uniform(uint64_t n) { return n == 0 ? 0 : Next() % n; }

int64_t Random::UniformRange(int64_t lo, int64_t hi) {
  return lo + static_cast<int64_t>(
                  Uniform(static_cast<uint64_t>(hi - lo + 1)));
}

double Random::NextDouble() {
  return static_cast<double>(Next() >> 11) * (1.0 / 9007199254740992.0);
}

bool Random::Bernoulli(double p) { return NextDouble() < p; }

uint64_t Random::Zipf(uint64_t n, double s) {
  if (n <= 1) return 0;
  // Inverse-CDF sampling over the truncated zeta distribution. The
  // normalization constant is computed on the fly; n is small (tens to a
  // few thousand categories) in all generators, so this stays cheap.
  double norm = 0.0;
  for (uint64_t i = 1; i <= n; ++i) norm += 1.0 / std::pow(i, s);
  double u = NextDouble() * norm;
  double cum = 0.0;
  for (uint64_t i = 1; i <= n; ++i) {
    cum += 1.0 / std::pow(i, s);
    if (u <= cum) return i - 1;
  }
  return n - 1;
}

Random Random::Fork() {
  // A draw from the parent keyed with an odd constant: child state is
  // re-expanded through the SplitMix64 constructor, so parent and child
  // sequences share no state words.
  return Random(Next() * 0x9e3779b97f4a7c15ULL + 0x1d8e4e27c47d124fULL);
}

Random Random::Split(uint64_t stream_id) const {
  // Mix both state words with the stream id (const: the parent stream is
  // not advanced). Distinct ids land in distinct SplitMix64 trajectories.
  uint64_t h = state0_;
  h ^= (state1_ + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2));
  h ^= (stream_id + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2));
  h *= 0xff51afd7ed558ccdULL;
  h ^= h >> 33;
  return Random(h);
}

}  // namespace rapida
