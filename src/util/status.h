#ifndef RAPIDA_UTIL_STATUS_H_
#define RAPIDA_UTIL_STATUS_H_

#include <ostream>
#include <string>
#include <utility>

namespace rapida {

/// Canonical error codes, modeled after the usual database-engine
/// conventions (RocksDB / Arrow style). Code::kOk means success.
enum class Code {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kOutOfRange,
  kUnimplemented,
  kInternal,
  kResourceExhausted,
  kParseError,
  kDeadlineExceeded,
  kUnavailable,
  /// Unrecoverable corruption of stored data (truncated / bit-flipped /
  /// checksum-failed artifacts). Callers treat it as "recompute, don't
  /// trust the bytes" — never as a crash.
  kDataLoss,
};

/// Returns a human-readable name for an error code ("InvalidArgument", ...).
const char* CodeName(Code code);

/// Status carries the outcome of an operation that can fail. The library
/// does not use exceptions; every fallible public API returns Status or
/// StatusOr<T>.
///
/// Usage:
///   Status s = DoThing();
///   if (!s.ok()) return s;
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(Code::kOk) {}
  Status(Code code, std::string message)
      : code_(code), message_(std::move(message)) {}

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) = default;
  Status& operator=(Status&&) = default;

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(Code::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(Code::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(Code::kAlreadyExists, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(Code::kOutOfRange, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(Code::kUnimplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(Code::kInternal, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(Code::kResourceExhausted, std::move(msg));
  }
  static Status ParseError(std::string msg) {
    return Status(Code::kParseError, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(Code::kDeadlineExceeded, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(Code::kUnavailable, std::move(msg));
  }
  static Status DataLoss(std::string msg) {
    return Status(Code::kDataLoss, std::move(msg));
  }

  bool ok() const { return code_ == Code::kOk; }
  Code code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_ && a.message_ == b.message_;
  }

 private:
  Code code_;
  std::string message_;
};

inline std::ostream& operator<<(std::ostream& os, const Status& s) {
  return os << s.ToString();
}

/// Propagates a non-OK status to the caller.
#define RAPIDA_RETURN_IF_ERROR(expr)               \
  do {                                             \
    ::rapida::Status _st = (expr);                 \
    if (!_st.ok()) return _st;                     \
  } while (0)

}  // namespace rapida

#endif  // RAPIDA_UTIL_STATUS_H_
