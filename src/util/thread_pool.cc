#include "util/thread_pool.h"

#include <algorithm>
#include <exception>
#include <utility>

namespace rapida::util {

ThreadPool::ThreadPool(int num_threads) {
  num_threads = std::max(num_threads, 1);
  workers_.reserve(num_threads);
  for (int i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  cv_.notify_all();
  for (std::thread& w : workers_) w.join();
  // Any tasks still queued run on this thread so their futures resolve.
  while (RunOneTask()) {
  }
}

int ThreadPool::HardwareThreads() {
  return std::max(1u, std::thread::hardware_concurrency());
}

std::future<void> ThreadPool::Submit(std::function<void()> fn) {
  std::packaged_task<void()> task(std::move(fn));
  std::future<void> future = task.get_future();
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(std::move(task));
  }
  cv_.notify_one();
  return future;
}

void ThreadPool::ParallelFor(size_t n, const std::function<void(size_t)>& fn) {
  if (n == 0) return;
  if (n == 1) {
    fn(0);
    return;
  }
  std::vector<std::future<void>> futures;
  futures.reserve(n - 1);
  for (size_t i = 1; i < n; ++i) {
    futures.push_back(Submit([&fn, i] { fn(i); }));
  }
  std::exception_ptr first_error;
  try {
    fn(0);
  } catch (...) {
    first_error = std::current_exception();
  }
  // Help drain the queue while waiting so ParallelFor also makes progress
  // when every worker is busy with earlier submissions.
  while (RunOneTask()) {
  }
  for (std::future<void>& f : futures) {
    try {
      f.get();
    } catch (...) {
      if (!first_error) first_error = std::current_exception();
    }
  }
  if (first_error) std::rethrow_exception(first_error);
}

bool ThreadPool::RunOneTask() {
  std::packaged_task<void()> task;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (queue_.empty()) return false;
    task = std::move(queue_.front());
    queue_.pop_front();
  }
  task();
  return true;
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::packaged_task<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return shutdown_ || !queue_.empty(); });
      if (queue_.empty()) return;  // shutdown: destructor drains leftovers
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

}  // namespace rapida::util
