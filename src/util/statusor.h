#ifndef RAPIDA_UTIL_STATUSOR_H_
#define RAPIDA_UTIL_STATUSOR_H_

#include <cassert>
#include <optional>
#include <utility>

#include "util/status.h"

namespace rapida {

/// StatusOr<T> holds either a value of type T or a non-OK Status explaining
/// why the value is absent. Accessing the value of a non-OK StatusOr aborts
/// in debug builds (assert) — callers must check ok() first.
template <typename T>
class StatusOr {
 public:
  /// Constructs from an error status. `status` must not be OK.
  StatusOr(Status status) : status_(std::move(status)) {  // NOLINT
    assert(!status_.ok() && "StatusOr constructed from OK status");
  }
  /// Constructs from a value; status() is OK.
  StatusOr(T value) : value_(std::move(value)) {}  // NOLINT

  StatusOr(const StatusOr&) = default;
  StatusOr& operator=(const StatusOr&) = default;
  StatusOr(StatusOr&&) = default;
  StatusOr& operator=(StatusOr&&) = default;

  bool ok() const { return value_.has_value(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  Status status_;
  std::optional<T> value_;
};

/// Evaluates `rexpr` (a StatusOr expression), propagating the error to the
/// caller, otherwise assigning the value into `lhs`.
#define RAPIDA_ASSIGN_OR_RETURN(lhs, rexpr)            \
  RAPIDA_ASSIGN_OR_RETURN_IMPL_(                       \
      RAPIDA_STATUS_CONCAT_(_statusor_, __LINE__), lhs, rexpr)

#define RAPIDA_STATUS_CONCAT_INNER_(a, b) a##b
#define RAPIDA_STATUS_CONCAT_(a, b) RAPIDA_STATUS_CONCAT_INNER_(a, b)
#define RAPIDA_ASSIGN_OR_RETURN_IMPL_(var, lhs, rexpr) \
  auto var = (rexpr);                                  \
  if (!var.ok()) return var.status();                  \
  lhs = std::move(var).value()

}  // namespace rapida

#endif  // RAPIDA_UTIL_STATUSOR_H_
