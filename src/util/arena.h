#ifndef RAPIDA_UTIL_ARENA_H_
#define RAPIDA_UTIL_ARENA_H_

#include <cstddef>
#include <cstring>
#include <memory>
#include <string_view>
#include <vector>

namespace rapida::util {

/// Bump allocator for record payloads: bytes copied in stay valid (and at a
/// stable address) until the arena is destroyed. One arena serves one
/// producer thread; it is not internally synchronized.
///
/// The MapReduce runtime gives every map task and reduce context its own
/// arena so the hot emit path is an append plus a pointer bump — no
/// per-record operator new — and record string_views can outlive the
/// emitting callback as long as the owning arena is kept alive (Dfs::File
/// and RecordBatch hold shared_ptr<Arena> for exactly that reason).
class Arena {
 public:
  explicit Arena(size_t first_block_bytes = kDefaultFirstBlock)
      : next_block_bytes_(first_block_bytes) {}
  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  /// Uninitialized storage; valid for the arena's lifetime.
  char* Allocate(size_t n) {
    if (n > remaining_) AddBlock(n);
    char* out = cursor_;
    cursor_ += n;
    remaining_ -= n;
    bytes_used_ += n;
    return out;
  }

  /// Copies `s` into the arena and returns a view of the stable copy.
  std::string_view Copy(std::string_view s) {
    if (s.empty()) return std::string_view(EmptyMarker(), 0);
    char* dst = Allocate(s.size());
    std::memcpy(dst, s.data(), s.size());
    return std::string_view(dst, s.size());
  }

  /// Copies the concatenation a+b in one contiguous allocation.
  std::string_view Concat(std::string_view a, std::string_view b) {
    if (a.size() + b.size() == 0) return std::string_view(EmptyMarker(), 0);
    char* dst = Allocate(a.size() + b.size());
    if (!a.empty()) std::memcpy(dst, a.data(), a.size());
    if (!b.empty()) std::memcpy(dst + a.size(), b.data(), b.size());
    return std::string_view(dst, a.size() + b.size());
  }

  /// Total bytes handed out (not counting block slack).
  size_t bytes_used() const { return bytes_used_; }

 private:
  static constexpr size_t kDefaultFirstBlock = 16 * 1024;
  static constexpr size_t kMaxBlock = 1024 * 1024;

  // Empty views still need a non-null data() distinguishable from "no
  // value"; point them at a static byte instead of burning arena space.
  static const char* EmptyMarker() {
    static const char marker = '\0';
    return &marker;
  }

  void AddBlock(size_t min_bytes);

  std::vector<std::unique_ptr<char[]>> blocks_;
  char* cursor_ = nullptr;
  size_t remaining_ = 0;
  size_t next_block_bytes_;
  size_t bytes_used_ = 0;
};

}  // namespace rapida::util

#endif  // RAPIDA_UTIL_ARENA_H_
