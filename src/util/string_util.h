#ifndef RAPIDA_UTIL_STRING_UTIL_H_
#define RAPIDA_UTIL_STRING_UTIL_H_

#include <charconv>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace rapida {

/// Splits `input` on `sep`, keeping empty fields.
std::vector<std::string> SplitString(std::string_view input, char sep);

/// Zero-copy field splitter with SplitString's exact semantics (empty
/// fields kept, "" yields one empty field, a trailing separator yields a
/// trailing empty field) — but each field is a string_view into `input`,
/// so per-record parse loops allocate nothing. `input` must outlive the
/// returned views.
class FieldTokenizer {
 public:
  FieldTokenizer(std::string_view input, char sep)
      : input_(input), sep_(sep) {}

  /// Writes the next field into `*field` and returns true, or returns
  /// false when all fields (including a trailing empty one) are consumed.
  bool Next(std::string_view* field) {
    if (done_) return false;
    size_t pos = input_.find(sep_, start_);
    if (pos == std::string_view::npos) {
      *field = input_.substr(start_);
      done_ = true;
      return true;
    }
    *field = input_.substr(start_, pos - start_);
    start_ = pos + 1;
    return true;
  }

 private:
  std::string_view input_;
  char sep_;
  size_t start_ = 0;
  bool done_ = false;
};

/// Joins `parts` with `sep` between consecutive elements.
std::string JoinStrings(const std::vector<std::string>& parts,
                        std::string_view sep);

/// Whitespace-trimmed copy of `s` (trims ' ', '\t', '\r', '\n').
std::string TrimString(std::string_view s);

/// True if `s` begins with / ends with the given prefix or suffix.
bool StartsWith(std::string_view s, std::string_view prefix);
bool EndsWith(std::string_view s, std::string_view suffix);

/// Lower-cases ASCII characters.
std::string AsciiToLower(std::string_view s);

/// Case-insensitive ASCII substring test; `needle` must be non-empty.
/// Mirrors SPARQL's regex(?x, "pattern", "i") usage in the paper's queries.
bool ContainsIgnoreCase(std::string_view haystack, std::string_view needle);

/// Slow-path parsers with full strtoll/strtod semantics (leading
/// whitespace, explicit '+', hex floats, "infinity"). The inline wrappers
/// below try an allocation-free std::from_chars parse first and only fall
/// back here when it does not consume the whole input.
bool ParseInt64Slow(std::string_view s, int64_t* out);
bool ParseDoubleSlow(std::string_view s, double* out);

/// Parses a decimal integer / floating-point literal. Returns false on any
/// trailing garbage or empty input.
inline bool ParseInt64(std::string_view s, int64_t* out) {
  if (s.empty()) return false;
  int64_t v = 0;
  auto res = std::from_chars(s.data(), s.data() + s.size(), v);
  if (res.ec == std::errc() && res.ptr == s.data() + s.size()) {
    *out = v;
    return true;
  }
  if (res.ec == std::errc::result_out_of_range) return false;
  return ParseInt64Slow(s, out);
}

/// Parser for the dense unsigned decimal ids the data plane serializes
/// (std::to_string / AppendDecimal output): pure digit strings. Returns
/// false on empty input or any non-digit byte, skipping ParseInt64's
/// sign/whitespace/overflow generality. No overflow check — callers parse
/// ids they themselves encoded from 32-bit ranges.
inline bool ParseDigits(std::string_view s, int64_t* out) {
  if (s.empty()) return false;
  uint64_t v = 0;
  for (char c : s) {
    const unsigned d = static_cast<unsigned char>(c) - static_cast<unsigned>('0');
    if (d > 9) return false;
    v = v * 10 + d;
  }
  *out = static_cast<int64_t>(v);
  return true;
}

inline bool ParseDouble(std::string_view s, double* out) {
  if (s.empty()) return false;
  double v = 0;
  auto res = std::from_chars(s.data(), s.data() + s.size(), v);
  if (res.ec == std::errc() && res.ptr == s.data() + s.size()) {
    *out = v;
    return true;
  }
  if (res.ec == std::errc::result_out_of_range) return false;
  return ParseDoubleSlow(s, out);
}

/// Human-readable byte count ("1.5 MB").
std::string FormatBytes(uint64_t bytes);

}  // namespace rapida

#endif  // RAPIDA_UTIL_STRING_UTIL_H_
