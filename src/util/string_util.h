#ifndef RAPIDA_UTIL_STRING_UTIL_H_
#define RAPIDA_UTIL_STRING_UTIL_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace rapida {

/// Splits `input` on `sep`, keeping empty fields.
std::vector<std::string> SplitString(std::string_view input, char sep);

/// Joins `parts` with `sep` between consecutive elements.
std::string JoinStrings(const std::vector<std::string>& parts,
                        std::string_view sep);

/// Whitespace-trimmed copy of `s` (trims ' ', '\t', '\r', '\n').
std::string TrimString(std::string_view s);

/// True if `s` begins with / ends with the given prefix or suffix.
bool StartsWith(std::string_view s, std::string_view prefix);
bool EndsWith(std::string_view s, std::string_view suffix);

/// Lower-cases ASCII characters.
std::string AsciiToLower(std::string_view s);

/// Case-insensitive ASCII substring test; `needle` must be non-empty.
/// Mirrors SPARQL's regex(?x, "pattern", "i") usage in the paper's queries.
bool ContainsIgnoreCase(std::string_view haystack, std::string_view needle);

/// Parses a decimal integer / floating-point literal. Returns false on any
/// trailing garbage or empty input.
bool ParseInt64(std::string_view s, int64_t* out);
bool ParseDouble(std::string_view s, double* out);

/// Human-readable byte count ("1.5 MB").
std::string FormatBytes(uint64_t bytes);

}  // namespace rapida

#endif  // RAPIDA_UTIL_STRING_UTIL_H_
