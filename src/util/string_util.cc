#include "util/string_util.h"

#include <cctype>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace rapida {

std::vector<std::string> SplitString(std::string_view input, char sep) {
  std::vector<std::string> out;
  size_t start = 0;
  while (true) {
    size_t pos = input.find(sep, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(input.substr(start));
      break;
    }
    out.emplace_back(input.substr(start, pos - start));
    start = pos + 1;
  }
  return out;
}

std::string JoinStrings(const std::vector<std::string>& parts,
                        std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out.append(sep);
    out.append(parts[i]);
  }
  return out;
}

std::string TrimString(std::string_view s) {
  size_t b = 0;
  size_t e = s.size();
  while (b < e && (s[b] == ' ' || s[b] == '\t' || s[b] == '\r' ||
                   s[b] == '\n')) {
    ++b;
  }
  while (e > b && (s[e - 1] == ' ' || s[e - 1] == '\t' || s[e - 1] == '\r' ||
                   s[e - 1] == '\n')) {
    --e;
  }
  return std::string(s.substr(b, e - b));
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool EndsWith(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.substr(s.size() - suffix.size()) == suffix;
}

std::string AsciiToLower(std::string_view s) {
  std::string out(s);
  for (char& c : out) {
    c = static_cast<char>(
        std::tolower(static_cast<unsigned char>(c)));
  }
  return out;
}

bool ContainsIgnoreCase(std::string_view haystack, std::string_view needle) {
  if (needle.empty()) return true;
  if (needle.size() > haystack.size()) return false;
  std::string h = AsciiToLower(haystack);
  std::string n = AsciiToLower(needle);
  return h.find(n) != std::string::npos;
}

bool ParseInt64Slow(std::string_view s, int64_t* out) {
  if (s.empty()) return false;
  std::string buf(s);
  errno = 0;
  char* end = nullptr;
  long long v = std::strtoll(buf.c_str(), &end, 10);
  if (errno != 0 || end != buf.c_str() + buf.size()) return false;
  *out = static_cast<int64_t>(v);
  return true;
}

bool ParseDoubleSlow(std::string_view s, double* out) {
  if (s.empty()) return false;
  std::string buf(s);
  errno = 0;
  char* end = nullptr;
  double v = std::strtod(buf.c_str(), &end);
  if (errno != 0 || end != buf.c_str() + buf.size()) return false;
  *out = v;
  return true;
}

std::string FormatBytes(uint64_t bytes) {
  const char* units[] = {"B", "KB", "MB", "GB", "TB"};
  double v = static_cast<double>(bytes);
  int u = 0;
  while (v >= 1024.0 && u < 4) {
    v /= 1024.0;
    ++u;
  }
  char buf[32];
  if (u == 0) {
    std::snprintf(buf, sizeof(buf), "%llu B",
                  static_cast<unsigned long long>(bytes));
  } else {
    std::snprintf(buf, sizeof(buf), "%.1f %s", v, units[u]);
  }
  return buf;
}

}  // namespace rapida
