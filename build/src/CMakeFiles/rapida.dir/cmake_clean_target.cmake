file(REMOVE_RECURSE
  "librapida.a"
)
