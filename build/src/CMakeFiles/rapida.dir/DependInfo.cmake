
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/analytics/aggregates.cc" "src/CMakeFiles/rapida.dir/analytics/aggregates.cc.o" "gcc" "src/CMakeFiles/rapida.dir/analytics/aggregates.cc.o.d"
  "/root/repo/src/analytics/analytical_query.cc" "src/CMakeFiles/rapida.dir/analytics/analytical_query.cc.o" "gcc" "src/CMakeFiles/rapida.dir/analytics/analytical_query.cc.o.d"
  "/root/repo/src/analytics/binding.cc" "src/CMakeFiles/rapida.dir/analytics/binding.cc.o" "gcc" "src/CMakeFiles/rapida.dir/analytics/binding.cc.o.d"
  "/root/repo/src/analytics/reference_evaluator.cc" "src/CMakeFiles/rapida.dir/analytics/reference_evaluator.cc.o" "gcc" "src/CMakeFiles/rapida.dir/analytics/reference_evaluator.cc.o.d"
  "/root/repo/src/analytics/value.cc" "src/CMakeFiles/rapida.dir/analytics/value.cc.o" "gcc" "src/CMakeFiles/rapida.dir/analytics/value.cc.o.d"
  "/root/repo/src/engines/dataset.cc" "src/CMakeFiles/rapida.dir/engines/dataset.cc.o" "gcc" "src/CMakeFiles/rapida.dir/engines/dataset.cc.o.d"
  "/root/repo/src/engines/hive_mqo.cc" "src/CMakeFiles/rapida.dir/engines/hive_mqo.cc.o" "gcc" "src/CMakeFiles/rapida.dir/engines/hive_mqo.cc.o.d"
  "/root/repo/src/engines/hive_naive.cc" "src/CMakeFiles/rapida.dir/engines/hive_naive.cc.o" "gcc" "src/CMakeFiles/rapida.dir/engines/hive_naive.cc.o.d"
  "/root/repo/src/engines/ntga_exec.cc" "src/CMakeFiles/rapida.dir/engines/ntga_exec.cc.o" "gcc" "src/CMakeFiles/rapida.dir/engines/ntga_exec.cc.o.d"
  "/root/repo/src/engines/plan_preview.cc" "src/CMakeFiles/rapida.dir/engines/plan_preview.cc.o" "gcc" "src/CMakeFiles/rapida.dir/engines/plan_preview.cc.o.d"
  "/root/repo/src/engines/rapid_analytics.cc" "src/CMakeFiles/rapida.dir/engines/rapid_analytics.cc.o" "gcc" "src/CMakeFiles/rapida.dir/engines/rapid_analytics.cc.o.d"
  "/root/repo/src/engines/rapid_plus.cc" "src/CMakeFiles/rapida.dir/engines/rapid_plus.cc.o" "gcc" "src/CMakeFiles/rapida.dir/engines/rapid_plus.cc.o.d"
  "/root/repo/src/engines/relational_ops.cc" "src/CMakeFiles/rapida.dir/engines/relational_ops.cc.o" "gcc" "src/CMakeFiles/rapida.dir/engines/relational_ops.cc.o.d"
  "/root/repo/src/engines/var_translate.cc" "src/CMakeFiles/rapida.dir/engines/var_translate.cc.o" "gcc" "src/CMakeFiles/rapida.dir/engines/var_translate.cc.o.d"
  "/root/repo/src/mapreduce/cluster.cc" "src/CMakeFiles/rapida.dir/mapreduce/cluster.cc.o" "gcc" "src/CMakeFiles/rapida.dir/mapreduce/cluster.cc.o.d"
  "/root/repo/src/mapreduce/counters.cc" "src/CMakeFiles/rapida.dir/mapreduce/counters.cc.o" "gcc" "src/CMakeFiles/rapida.dir/mapreduce/counters.cc.o.d"
  "/root/repo/src/mapreduce/dfs.cc" "src/CMakeFiles/rapida.dir/mapreduce/dfs.cc.o" "gcc" "src/CMakeFiles/rapida.dir/mapreduce/dfs.cc.o.d"
  "/root/repo/src/ntga/operators.cc" "src/CMakeFiles/rapida.dir/ntga/operators.cc.o" "gcc" "src/CMakeFiles/rapida.dir/ntga/operators.cc.o.d"
  "/root/repo/src/ntga/overlap.cc" "src/CMakeFiles/rapida.dir/ntga/overlap.cc.o" "gcc" "src/CMakeFiles/rapida.dir/ntga/overlap.cc.o.d"
  "/root/repo/src/ntga/resolved_pattern.cc" "src/CMakeFiles/rapida.dir/ntga/resolved_pattern.cc.o" "gcc" "src/CMakeFiles/rapida.dir/ntga/resolved_pattern.cc.o.d"
  "/root/repo/src/ntga/star_pattern.cc" "src/CMakeFiles/rapida.dir/ntga/star_pattern.cc.o" "gcc" "src/CMakeFiles/rapida.dir/ntga/star_pattern.cc.o.d"
  "/root/repo/src/ntga/triplegroup.cc" "src/CMakeFiles/rapida.dir/ntga/triplegroup.cc.o" "gcc" "src/CMakeFiles/rapida.dir/ntga/triplegroup.cc.o.d"
  "/root/repo/src/rdf/dictionary.cc" "src/CMakeFiles/rapida.dir/rdf/dictionary.cc.o" "gcc" "src/CMakeFiles/rapida.dir/rdf/dictionary.cc.o.d"
  "/root/repo/src/rdf/graph.cc" "src/CMakeFiles/rapida.dir/rdf/graph.cc.o" "gcc" "src/CMakeFiles/rapida.dir/rdf/graph.cc.o.d"
  "/root/repo/src/rdf/graph_index.cc" "src/CMakeFiles/rapida.dir/rdf/graph_index.cc.o" "gcc" "src/CMakeFiles/rapida.dir/rdf/graph_index.cc.o.d"
  "/root/repo/src/rdf/ntriples.cc" "src/CMakeFiles/rapida.dir/rdf/ntriples.cc.o" "gcc" "src/CMakeFiles/rapida.dir/rdf/ntriples.cc.o.d"
  "/root/repo/src/rdf/term.cc" "src/CMakeFiles/rapida.dir/rdf/term.cc.o" "gcc" "src/CMakeFiles/rapida.dir/rdf/term.cc.o.d"
  "/root/repo/src/rdf/turtle.cc" "src/CMakeFiles/rapida.dir/rdf/turtle.cc.o" "gcc" "src/CMakeFiles/rapida.dir/rdf/turtle.cc.o.d"
  "/root/repo/src/rdf/vp_store.cc" "src/CMakeFiles/rapida.dir/rdf/vp_store.cc.o" "gcc" "src/CMakeFiles/rapida.dir/rdf/vp_store.cc.o.d"
  "/root/repo/src/sparql/ast.cc" "src/CMakeFiles/rapida.dir/sparql/ast.cc.o" "gcc" "src/CMakeFiles/rapida.dir/sparql/ast.cc.o.d"
  "/root/repo/src/sparql/expr_eval.cc" "src/CMakeFiles/rapida.dir/sparql/expr_eval.cc.o" "gcc" "src/CMakeFiles/rapida.dir/sparql/expr_eval.cc.o.d"
  "/root/repo/src/sparql/lexer.cc" "src/CMakeFiles/rapida.dir/sparql/lexer.cc.o" "gcc" "src/CMakeFiles/rapida.dir/sparql/lexer.cc.o.d"
  "/root/repo/src/sparql/parser.cc" "src/CMakeFiles/rapida.dir/sparql/parser.cc.o" "gcc" "src/CMakeFiles/rapida.dir/sparql/parser.cc.o.d"
  "/root/repo/src/util/logging.cc" "src/CMakeFiles/rapida.dir/util/logging.cc.o" "gcc" "src/CMakeFiles/rapida.dir/util/logging.cc.o.d"
  "/root/repo/src/util/random.cc" "src/CMakeFiles/rapida.dir/util/random.cc.o" "gcc" "src/CMakeFiles/rapida.dir/util/random.cc.o.d"
  "/root/repo/src/util/status.cc" "src/CMakeFiles/rapida.dir/util/status.cc.o" "gcc" "src/CMakeFiles/rapida.dir/util/status.cc.o.d"
  "/root/repo/src/util/string_util.cc" "src/CMakeFiles/rapida.dir/util/string_util.cc.o" "gcc" "src/CMakeFiles/rapida.dir/util/string_util.cc.o.d"
  "/root/repo/src/workload/bsbm.cc" "src/CMakeFiles/rapida.dir/workload/bsbm.cc.o" "gcc" "src/CMakeFiles/rapida.dir/workload/bsbm.cc.o.d"
  "/root/repo/src/workload/catalog.cc" "src/CMakeFiles/rapida.dir/workload/catalog.cc.o" "gcc" "src/CMakeFiles/rapida.dir/workload/catalog.cc.o.d"
  "/root/repo/src/workload/chem2bio.cc" "src/CMakeFiles/rapida.dir/workload/chem2bio.cc.o" "gcc" "src/CMakeFiles/rapida.dir/workload/chem2bio.cc.o.d"
  "/root/repo/src/workload/pubmed.cc" "src/CMakeFiles/rapida.dir/workload/pubmed.cc.o" "gcc" "src/CMakeFiles/rapida.dir/workload/pubmed.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
