# Empty dependencies file for rapida.
# This may be replaced when dependencies are built.
