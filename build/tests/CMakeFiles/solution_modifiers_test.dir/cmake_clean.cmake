file(REMOVE_RECURSE
  "CMakeFiles/solution_modifiers_test.dir/solution_modifiers_test.cc.o"
  "CMakeFiles/solution_modifiers_test.dir/solution_modifiers_test.cc.o.d"
  "solution_modifiers_test"
  "solution_modifiers_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/solution_modifiers_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
