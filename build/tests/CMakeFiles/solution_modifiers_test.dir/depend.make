# Empty dependencies file for solution_modifiers_test.
# This may be replaced when dependencies are built.
