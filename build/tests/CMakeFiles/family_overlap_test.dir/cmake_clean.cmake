file(REMOVE_RECURSE
  "CMakeFiles/family_overlap_test.dir/family_overlap_test.cc.o"
  "CMakeFiles/family_overlap_test.dir/family_overlap_test.cc.o.d"
  "family_overlap_test"
  "family_overlap_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/family_overlap_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
