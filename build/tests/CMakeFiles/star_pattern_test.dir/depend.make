# Empty dependencies file for star_pattern_test.
# This may be replaced when dependencies are built.
