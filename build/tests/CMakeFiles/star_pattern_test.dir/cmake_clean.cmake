file(REMOVE_RECURSE
  "CMakeFiles/star_pattern_test.dir/star_pattern_test.cc.o"
  "CMakeFiles/star_pattern_test.dir/star_pattern_test.cc.o.d"
  "star_pattern_test"
  "star_pattern_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/star_pattern_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
