file(REMOVE_RECURSE
  "CMakeFiles/plan_preview_test.dir/plan_preview_test.cc.o"
  "CMakeFiles/plan_preview_test.dir/plan_preview_test.cc.o.d"
  "plan_preview_test"
  "plan_preview_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/plan_preview_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
