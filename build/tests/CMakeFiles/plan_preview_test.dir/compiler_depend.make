# Empty compiler generated dependencies file for plan_preview_test.
# This may be replaced when dependencies are built.
