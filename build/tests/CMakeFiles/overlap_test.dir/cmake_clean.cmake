file(REMOVE_RECURSE
  "CMakeFiles/overlap_test.dir/overlap_test.cc.o"
  "CMakeFiles/overlap_test.dir/overlap_test.cc.o.d"
  "overlap_test"
  "overlap_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/overlap_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
