file(REMOVE_RECURSE
  "CMakeFiles/ntriples_test.dir/ntriples_test.cc.o"
  "CMakeFiles/ntriples_test.dir/ntriples_test.cc.o.d"
  "ntriples_test"
  "ntriples_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ntriples_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
