file(REMOVE_RECURSE
  "CMakeFiles/figure7_shapes_test.dir/figure7_shapes_test.cc.o"
  "CMakeFiles/figure7_shapes_test.dir/figure7_shapes_test.cc.o.d"
  "figure7_shapes_test"
  "figure7_shapes_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/figure7_shapes_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
