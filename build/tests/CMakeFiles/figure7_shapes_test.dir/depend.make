# Empty dependencies file for figure7_shapes_test.
# This may be replaced when dependencies are built.
