file(REMOVE_RECURSE
  "CMakeFiles/analytical_query_test.dir/analytical_query_test.cc.o"
  "CMakeFiles/analytical_query_test.dir/analytical_query_test.cc.o.d"
  "analytical_query_test"
  "analytical_query_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/analytical_query_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
