# Empty dependencies file for analytical_query_test.
# This may be replaced when dependencies are built.
