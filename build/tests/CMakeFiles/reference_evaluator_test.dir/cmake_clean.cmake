file(REMOVE_RECURSE
  "CMakeFiles/reference_evaluator_test.dir/reference_evaluator_test.cc.o"
  "CMakeFiles/reference_evaluator_test.dir/reference_evaluator_test.cc.o.d"
  "reference_evaluator_test"
  "reference_evaluator_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/reference_evaluator_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
