# Empty dependencies file for reference_evaluator_test.
# This may be replaced when dependencies are built.
