# Empty dependencies file for bench_shape_test.
# This may be replaced when dependencies are built.
