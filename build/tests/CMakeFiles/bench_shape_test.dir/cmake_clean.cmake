file(REMOVE_RECURSE
  "CMakeFiles/bench_shape_test.dir/bench_shape_test.cc.o"
  "CMakeFiles/bench_shape_test.dir/bench_shape_test.cc.o.d"
  "bench_shape_test"
  "bench_shape_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_shape_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
