# Empty dependencies file for rapida_cli.
# This may be replaced when dependencies are built.
