file(REMOVE_RECURSE
  "CMakeFiles/rapida_cli.dir/rapida_cli.cpp.o"
  "CMakeFiles/rapida_cli.dir/rapida_cli.cpp.o.d"
  "rapida_cli"
  "rapida_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rapida_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
