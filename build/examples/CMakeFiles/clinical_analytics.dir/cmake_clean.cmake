file(REMOVE_RECURSE
  "CMakeFiles/clinical_analytics.dir/clinical_analytics.cpp.o"
  "CMakeFiles/clinical_analytics.dir/clinical_analytics.cpp.o.d"
  "clinical_analytics"
  "clinical_analytics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/clinical_analytics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
