# Empty compiler generated dependencies file for clinical_analytics.
# This may be replaced when dependencies are built.
