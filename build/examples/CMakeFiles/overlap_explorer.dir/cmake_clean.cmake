file(REMOVE_RECURSE
  "CMakeFiles/overlap_explorer.dir/overlap_explorer.cpp.o"
  "CMakeFiles/overlap_explorer.dir/overlap_explorer.cpp.o.d"
  "overlap_explorer"
  "overlap_explorer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/overlap_explorer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
