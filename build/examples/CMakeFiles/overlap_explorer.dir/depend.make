# Empty dependencies file for overlap_explorer.
# This may be replaced when dependencies are built.
