file(REMOVE_RECURSE
  "CMakeFiles/ecommerce_analytics.dir/ecommerce_analytics.cpp.o"
  "CMakeFiles/ecommerce_analytics.dir/ecommerce_analytics.cpp.o.d"
  "ecommerce_analytics"
  "ecommerce_analytics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ecommerce_analytics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
