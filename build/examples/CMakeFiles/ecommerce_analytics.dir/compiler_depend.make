# Empty compiler generated dependencies file for ecommerce_analytics.
# This may be replaced when dependencies are built.
