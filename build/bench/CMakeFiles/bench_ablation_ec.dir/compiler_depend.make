# Empty compiler generated dependencies file for bench_ablation_ec.
# This may be replaced when dependencies are built.
