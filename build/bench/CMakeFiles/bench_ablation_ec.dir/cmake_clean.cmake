file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_ec.dir/bench_ablation_ec.cc.o"
  "CMakeFiles/bench_ablation_ec.dir/bench_ablation_ec.cc.o.d"
  "bench_ablation_ec"
  "bench_ablation_ec.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_ec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
