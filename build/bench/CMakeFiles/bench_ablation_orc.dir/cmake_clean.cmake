file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_orc.dir/bench_ablation_orc.cc.o"
  "CMakeFiles/bench_ablation_orc.dir/bench_ablation_orc.cc.o.d"
  "bench_ablation_orc"
  "bench_ablation_orc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_orc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
