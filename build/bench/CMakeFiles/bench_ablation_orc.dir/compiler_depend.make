# Empty compiler generated dependencies file for bench_ablation_orc.
# This may be replaced when dependencies are built.
