# Empty dependencies file for bench_plan_shapes.
# This may be replaced when dependencies are built.
