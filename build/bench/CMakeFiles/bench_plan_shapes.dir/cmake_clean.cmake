file(REMOVE_RECURSE
  "CMakeFiles/bench_plan_shapes.dir/bench_plan_shapes.cc.o"
  "CMakeFiles/bench_plan_shapes.dir/bench_plan_shapes.cc.o.d"
  "bench_plan_shapes"
  "bench_plan_shapes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_plan_shapes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
