file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_mapjoin.dir/bench_ablation_mapjoin.cc.o"
  "CMakeFiles/bench_ablation_mapjoin.dir/bench_ablation_mapjoin.cc.o.d"
  "bench_ablation_mapjoin"
  "bench_ablation_mapjoin.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_mapjoin.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
