# Empty compiler generated dependencies file for bench_ablation_mapjoin.
# This may be replaced when dependencies are built.
