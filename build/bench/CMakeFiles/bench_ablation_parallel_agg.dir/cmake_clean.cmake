file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_parallel_agg.dir/bench_ablation_parallel_agg.cc.o"
  "CMakeFiles/bench_ablation_parallel_agg.dir/bench_ablation_parallel_agg.cc.o.d"
  "bench_ablation_parallel_agg"
  "bench_ablation_parallel_agg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_parallel_agg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
