# Empty dependencies file for bench_ablation_parallel_agg.
# This may be replaced when dependencies are built.
