file(REMOVE_RECURSE
  "CMakeFiles/bench_table4_pubmed.dir/bench_table4_pubmed.cc.o"
  "CMakeFiles/bench_table4_pubmed.dir/bench_table4_pubmed.cc.o.d"
  "bench_table4_pubmed"
  "bench_table4_pubmed.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table4_pubmed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
