# Empty dependencies file for bench_table4_pubmed.
# This may be replaced when dependencies are built.
