file(REMOVE_RECURSE
  "CMakeFiles/bench_table3_bsbm.dir/bench_table3_bsbm.cc.o"
  "CMakeFiles/bench_table3_bsbm.dir/bench_table3_bsbm.cc.o.d"
  "bench_table3_bsbm"
  "bench_table3_bsbm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table3_bsbm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
