file(REMOVE_RECURSE
  "CMakeFiles/bench_table3_chem.dir/bench_table3_chem.cc.o"
  "CMakeFiles/bench_table3_chem.dir/bench_table3_chem.cc.o.d"
  "bench_table3_chem"
  "bench_table3_chem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table3_chem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
