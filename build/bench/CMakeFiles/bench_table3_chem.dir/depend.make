# Empty dependencies file for bench_table3_chem.
# This may be replaced when dependencies are built.
