file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_rollup.dir/bench_ext_rollup.cc.o"
  "CMakeFiles/bench_ext_rollup.dir/bench_ext_rollup.cc.o.d"
  "bench_ext_rollup"
  "bench_ext_rollup.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_rollup.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
