# Empty dependencies file for bench_ext_rollup.
# This may be replaced when dependencies are built.
