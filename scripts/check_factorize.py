#!/usr/bin/env python3
"""Gate BENCH_factorize.json (see scripts/check.sh).

Every row must be byte-identical across the flat and factorized paths.
The mg-pubmed rows (Table 4 shape: multi-valued PubMed stars under
Hive (Naive) with repartition joins) carry the quantitative claims:

  - factorization_factor > 1 on every MG-class query;
  - factorized materialized bytes strictly below flat;
  - factorized shuffle bytes never above flat, and strictly below on
    every row whose factor reaches 2x. Below 2x the join column lives
    inside the factor, so FactJoin partially decompresses before the
    shuffle and the factorized byte stream degenerates to exactly the
    flat encoding — equality is the honest floor there, not a bug.
"""
import json
import sys

path = sys.argv[1] if len(sys.argv) > 1 else "BENCH_factorize.json"
rows = [json.loads(l) for l in open(path) if l.strip()]
assert rows, "%s is empty" % path

bad = [r for r in rows if not r["identical"]]
assert not bad, "factorized results diverged from flat: %s" % bad

mg = [r for r in rows if r["bench"] == "mg-pubmed"]
assert mg, "no mg-pubmed rows in %s" % path
for r in mg:
    tag = "%s shards=%d" % (r["query"], r["shards"])
    f = r["factorization_factor"]
    assert f > 1.0, "%s: factorization_factor %.3f not > 1" % (tag, f)
    assert r["fact_materialized_bytes"] < r["flat_materialized_bytes"], (
        "%s: factorized materialized %d not < flat %d"
        % (tag, r["fact_materialized_bytes"], r["flat_materialized_bytes"]))
    assert r["fact_shuffle_bytes"] <= r["flat_shuffle_bytes"], (
        "%s: factorized shuffle %d above flat %d"
        % (tag, r["fact_shuffle_bytes"], r["flat_shuffle_bytes"]))
    if f >= 2.0:
        assert r["fact_shuffle_bytes"] < r["flat_shuffle_bytes"], (
            "%s: factor %.2fx but factorized shuffle %d not < flat %d"
            % (tag, f, r["fact_shuffle_bytes"], r["flat_shuffle_bytes"]))

mat = sum(r["flat_materialized_bytes"] for r in mg) / max(
    1, sum(r["fact_materialized_bytes"] for r in mg))
shuf = sum(r["flat_shuffle_bytes"] for r in mg) / max(
    1, sum(r["fact_shuffle_bytes"] for r in mg))
peak = max(r["factorization_factor"] for r in mg)
print("factorize bench OK: %d rows identical; mg-pubmed materialized "
      "%.2fx, shuffle %.2fx smaller, peak factor %.2fx"
      % (len(rows), mat, shuf, peak))
