#!/usr/bin/env bash
# Full check: regular build + all tests, the plan-IR suite (EXPLAIN
# goldens for the full catalog plus the pass on/off divergence gate), the
# query-service smoke run (every catalog query byte-identical through the
# service, cold / hot / 32 concurrent sessions), the materialization-store
# gates (cold publish then a cross-process warm restart that must answer
# >= 29/31 catalog queries from the store with zero MapReduce jobs; a
# mutate-heavy bench appending to BENCH_store.json that must show >= 10x
# incremental-maintenance advantage; and, under ASan, a corruption
# injection that bit-flips and truncates artifacts and requires typed
# quarantine plus clean recompute), the 200-seed differential
# fuzz corpus plus its service mode (and a scalar-fallback corpus pass
# with the vectorized-kernels pass forced off), a 100-seed
# OPTIONAL/UNION-biased corpus (--grammar=opt-union, repeated under
# ASan), a guard that regenerating the golden fixtures reproduces the
# committed files byte-for-byte, a perf smoke that replays
# Fig. 8(a) and Fig. 8(b) at 8 threads and diffs their deterministic
# per-query aggregates against committed goldens, an AddressSanitizer run
# of the fuzz smoke and the EXPLAIN goldens, and a ThreadSanitizer build
# running the concurrency-sensitive suites (the parallel MapReduce
# runtime — including the ValueSpan reduce-mode matrix in mapreduce_test —
# the batch-kernel byte-identity matrix in kernels_test, the engines on
# top of it, the sharded data plane in shard_test — stressed across
# shards {1,2,4} x threads {1,8} — and the 32-session service stress).
# The sharded data plane adds its own gates: a sharded pass over the fuzz
# corpus (every engine at 4 shards, both placement schemes, cross-checked
# against the unsharded baseline), a sharded serve smoke, and a perf
# smoke running bench_shard (BENCH_shard.json must show byte-identical
# results at every shard count, >= 3x speedup at 8 shards on fig8a, and
# strictly fewer cross-shard bytes under the locality scheme than under
# hash-by-subject on fig8a).
# The factorized-intermediates path adds: a 100-seed multi-valued-star
# corpus (--grammar=multival, repeated with --no-factorize to pin the
# flat fallback), and a perf smoke running bench_factorize twice (plain
# and TSan builds; the binary exits nonzero on any flat/factorized result
# mismatch) whose BENCH_factorize.json must show, on every mg-pubmed row,
# factorization_factor > 1, factorized materialized bytes strictly below
# flat, factorized shuffle never above flat — and strictly below wherever
# the factor reaches 2x, i.e. where the d-representation survives into
# the shuffle instead of being flattened by partial decompression.
#
# Usage: scripts/check.sh [jobs]
set -euo pipefail
cd "$(dirname "$0")/.."

JOBS="${1:-$(nproc)}"
SCRATCH="$(mktemp -d)"
trap 'rm -rf "$SCRATCH"' EXIT

echo "== regular build + ctest =="
cmake -B build -S . > /dev/null
cmake --build build -j "$JOBS"
ctest --test-dir build --output-on-failure -j "$JOBS"

echo "== plan IR: EXPLAIN goldens + pass on/off divergence gate =="
ctest --test-dir build -L plan --output-on-failure -j "$JOBS"

echo "== query service smoke (catalog equivalence, cold/hot/32 sessions) =="
./build/examples/rapida_serve --smoke

echo "== query service smoke, sharded data plane (4 shards, locality) =="
./build/examples/rapida_serve --smoke --shards=4 --scheme=locality

echo "== materialization store: cold publish -> cross-process warm restart =="
STORE_DIR="$SCRATCH/store"
# Cold run: publishes every catalog result as an artifact, then proves an
# in-process warm restart and the IVM mutate check byte-identical.
./build/examples/rapida_serve --smoke --store "$STORE_DIR"
# Second process over the same directory: >= 29/31 catalog queries must be
# answered from the store (byte-identical, zero MapReduce jobs).
./build/examples/rapida_serve --smoke --store "$STORE_DIR" --expect-warm

echo "== store bench: incremental maintenance vs full recompute =="
./build/examples/rapida_serve --bench-store --out BENCH_store.json
tail -1 BENCH_store.json | python3 -c '
import json, sys
r = json.loads(sys.stdin.read())
s, p = r["speedup"], r["artifacts_patched"]
assert s >= 10, "IVM speedup %sx < 10x" % s
assert p > 0, "no artifacts were patched"
print("store bench OK: %sx, %s patched" % (s, p))
'

echo "== differential fuzz corpus (200 seeds, 4 engines x 2 thread cfgs) =="
ctest --test-dir build -C fuzz -R rapida_fuzz_corpus --output-on-failure

echo "== differential fuzz corpus, scalar fallback (--no-kernels) =="
./build/examples/rapida_fuzz --seeds=200 --no-kernels

echo "== differential fuzz corpus, sharded data plane (4 shards) =="
# Every engine additionally runs at 4 shards under both placement schemes;
# each sharded run must match the reference result AND the unsharded
# baseline's cycle count and total shuffled bytes.
./build/examples/rapida_fuzz --seeds=200 --shards=4

echo "== differential fuzz, OPTIONAL/UNION-biased grammar (100 seeds) =="
./build/examples/rapida_fuzz --grammar=opt-union --seeds=100

echo "== differential fuzz, multi-valued-star grammar (100 seeds) =="
# 3-10 objects per predicate-subject pair: the shape the factorize pass
# compresses. Runs with the pass on (default) and forced off — both must
# agree with the reference on every engine.
./build/examples/rapida_fuzz --grammar=multival --seeds=100
./build/examples/rapida_fuzz --grammar=multival --seeds=100 --no-factorize

echo "== golden regen guard (fixtures must match a fresh regeneration) =="
RAPIDA_UPDATE_GOLDEN=1 ./build/tests/golden_test > /dev/null
RAPIDA_UPDATE_GOLDEN=1 ./build/tests/explain_golden_test > /dev/null
git diff --exit-code -- tests/golden || {
  echo "golden regen guard FAILED: committed fixtures differ from a fresh" \
       "RAPIDA_UPDATE_GOLDEN=1 run (diff above; commit the regen if" \
       "intentional)" >&2
  exit 1
}

echo "== differential fuzz, service mode (caching + batching vs direct) =="
./build/examples/rapida_fuzz --service --seeds=50

echo "== perf smoke: Fig. 8(a)+(b) aggregates vs goldens (8 threads) =="
PERF_TMP="$SCRATCH/perf"
for FIG in fig8a fig8b; do
  mkdir -p "$PERF_TMP/$FIG"
  RAPIDA_EXEC_THREADS=8 RAPIDA_BENCH_JSON= RAPIDA_BENCH_CSV="$PERF_TMP/$FIG" \
      "./build/bench/bench_$FIG" > /dev/null
  diff "tests/golden/bench_${FIG}_aggregates.csv" "$PERF_TMP/$FIG"/*.csv || {
    echo "perf smoke FAILED: $FIG per-query aggregates differ from" \
         "tests/golden/bench_${FIG}_aggregates.csv" >&2
    exit 1
  }
done

echo "== perf smoke: shard scale-out sweep (BENCH_shard.json gates) =="
# bench_shard exits nonzero on any byte-identity violation; the JSON gates
# below additionally pin the scale-out and locality claims on fig8a.
./build/bench/bench_shard > /dev/null
python3 - <<'EOF'
import json

rows = [json.loads(l) for l in open("BENCH_shard.json") if l.strip()]
assert rows, "BENCH_shard.json is empty"
bad = [r for r in rows if not r["identical"]]
assert not bad, "sharded results diverged from unsharded: %s" % bad

fig8a = [r for r in rows if r["bench"] == "fig8a"]
base = sum(r["sim_seconds"] for r in fig8a if r["shards"] == 1)
best8 = sum(r["sim_seconds"] for r in fig8a
            if r["shards"] == 8 and r["scheme"] == "locality")
speedup = base / best8
assert speedup >= 3.0, "fig8a speedup at 8 shards %.2fx < 3x" % speedup

hash_cross = sum(r["cross_bytes"] for r in fig8a
                 if r["shards"] > 1 and r["scheme"] == "hash-subject")
loc_cross = sum(r["cross_bytes"] for r in fig8a
                if r["shards"] > 1 and r["scheme"] == "locality")
assert loc_cross < hash_cross, (
    "locality cross-shard bytes %d not < hash-subject %d"
    % (loc_cross, hash_cross))
print("shard bench OK: %.2fx at 8 shards, locality cross %d < hash %d"
      % (speedup, loc_cross, hash_cross))
EOF

echo "== perf smoke: factorized intermediates (BENCH_factorize.json gates) =="
# bench_factorize exits nonzero on any flat/factorized result mismatch;
# the JSON gates below pin the byte-reduction claims on the mg-pubmed
# rows (Table 4 shape: Hive (Naive), repartition joins, shards {1,8}).
./build/bench/bench_factorize > /dev/null
python3 scripts/check_factorize.py BENCH_factorize.json

echo "== AddressSanitizer fuzz smoke (RAPIDA_SANITIZE=address) =="
cmake -B build-asan -S . -DRAPIDA_SANITIZE=address \
      -DCMAKE_BUILD_TYPE=RelWithDebInfo > /dev/null
cmake --build build-asan -j "$JOBS" --target rapida_fuzz explain_golden_test \
      storage_test rapida_serve
./build-asan/examples/rapida_fuzz --seeds=50
echo "== ASan: OPTIONAL/UNION-biased fuzz (100 seeds) =="
./build-asan/examples/rapida_fuzz --grammar=opt-union --seeds=100
echo "== ASan: EXPLAIN goldens =="
./build-asan/tests/explain_golden_test

echo "== ASan: storage suite (artifact recovery, IVM patch equivalence) =="
./build-asan/tests/storage_test

echo "== ASan: store corruption injection (degrade to recompute, no crash) =="
ASAN_STORE="$SCRATCH/store-asan"
./build-asan/examples/rapida_serve --smoke --store "$ASAN_STORE" > /dev/null
# Bit-flip one artifact and truncate another, then re-run the smoke over
# the damaged store: the corrupt artifacts must surface as typed DataLoss
# internally, be quarantined, and every query must still answer correctly
# from recompute — no crash, no wrong bytes.
ARTS=("$ASAN_STORE"/*.rapart)
printf '\xff' | dd of="${ARTS[0]}" bs=1 seek=64 conv=notrunc 2> /dev/null
truncate -s 17 "${ARTS[1]}"
CORRUPT_OUT="$SCRATCH/corrupt-run.txt"
./build-asan/examples/rapida_serve --smoke --store "$ASAN_STORE" \
    | tee "$CORRUPT_OUT" | tail -2
grep -q '"corrupt": *[1-9]' "$CORRUPT_OUT" || {
  echo "corruption gate FAILED: no quarantined artifact reported in the" \
       "store stats (expected \"corrupt\" >= 1 in the metrics JSON)" >&2
  exit 1
}

echo "== ThreadSanitizer build (RAPIDA_SANITIZE=thread) =="
cmake -B build-tsan -S . -DRAPIDA_SANITIZE=thread \
      -DCMAKE_BUILD_TYPE=RelWithDebInfo > /dev/null
cmake --build build-tsan -j "$JOBS" --target \
      thread_pool_test mapreduce_test kernels_test engines_test \
      shard_test service_stress_test bench_factorize

echo "== TSan: thread_pool_test =="
./build-tsan/tests/thread_pool_test
echo "== TSan: mapreduce_test (incl. ValueSpan reduce-mode matrix) =="
./build-tsan/tests/mapreduce_test
echo "== TSan: kernels_test (batch kernels x exec_threads x combine) =="
./build-tsan/tests/kernels_test
echo "== TSan: engines_test =="
./build-tsan/tests/engines_test
echo "== TSan: shard_test (channel stress + shards {1,2,4} x threads {1,8}) =="
./build-tsan/tests/shard_test
echo "== TSan: service_stress_test (32 sessions + concurrent mutations) =="
./build-tsan/tests/service_stress_test

echo "== TSan: bench_factorize (flat/factorized byte identity at 8 threads) =="
RAPIDA_FACTORIZE_JSON="$SCRATCH/BENCH_factorize_tsan.json" \
    ./build-tsan/bench/bench_factorize > /dev/null
python3 scripts/check_factorize.py "$SCRATCH/BENCH_factorize_tsan.json"

echo "All checks passed."
