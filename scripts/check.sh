#!/usr/bin/env bash
# Full check: regular build + all tests, the 200-seed differential fuzz
# corpus, an AddressSanitizer fuzz smoke run, and a ThreadSanitizer build
# running the concurrency-sensitive suites (the parallel MapReduce runtime
# and the engines on top of it).
#
# Usage: scripts/check.sh [jobs]
set -euo pipefail
cd "$(dirname "$0")/.."

JOBS="${1:-$(nproc)}"

echo "== regular build + ctest =="
cmake -B build -S . > /dev/null
cmake --build build -j "$JOBS"
ctest --test-dir build --output-on-failure -j "$JOBS"

echo "== differential fuzz corpus (200 seeds, 4 engines x 2 thread cfgs) =="
ctest --test-dir build -C fuzz -R rapida_fuzz_corpus --output-on-failure

echo "== AddressSanitizer fuzz smoke (RAPIDA_SANITIZE=address) =="
cmake -B build-asan -S . -DRAPIDA_SANITIZE=address \
      -DCMAKE_BUILD_TYPE=RelWithDebInfo > /dev/null
cmake --build build-asan -j "$JOBS" --target rapida_fuzz
./build-asan/examples/rapida_fuzz --seeds=50

echo "== ThreadSanitizer build (RAPIDA_SANITIZE=thread) =="
cmake -B build-tsan -S . -DRAPIDA_SANITIZE=thread \
      -DCMAKE_BUILD_TYPE=RelWithDebInfo > /dev/null
cmake --build build-tsan -j "$JOBS" --target \
      thread_pool_test mapreduce_test engines_test

echo "== TSan: thread_pool_test =="
./build-tsan/tests/thread_pool_test
echo "== TSan: mapreduce_test =="
./build-tsan/tests/mapreduce_test
echo "== TSan: engines_test =="
./build-tsan/tests/engines_test

echo "All checks passed."
