#!/usr/bin/env bash
# Full check: regular build + all tests, the plan-IR suite (EXPLAIN
# goldens for the full catalog plus the pass on/off divergence gate), the
# query-service smoke run (every catalog query byte-identical through the
# service, cold / hot / 32 concurrent sessions), the 200-seed differential
# fuzz corpus plus its service mode (and a scalar-fallback corpus pass
# with the vectorized-kernels pass forced off), a 100-seed
# OPTIONAL/UNION-biased corpus (--grammar=opt-union, repeated under
# ASan), a guard that regenerating the golden fixtures reproduces the
# committed files byte-for-byte, a perf smoke that replays
# Fig. 8(a) and Fig. 8(b) at 8 threads and diffs their deterministic
# per-query aggregates against committed goldens, an AddressSanitizer run
# of the fuzz smoke and the EXPLAIN goldens, and a ThreadSanitizer build
# running the concurrency-sensitive suites (the parallel MapReduce
# runtime — including the ValueSpan reduce-mode matrix in mapreduce_test —
# the batch-kernel byte-identity matrix in kernels_test, the engines on
# top of it, and the 32-session service stress).
#
# Usage: scripts/check.sh [jobs]
set -euo pipefail
cd "$(dirname "$0")/.."

JOBS="${1:-$(nproc)}"

echo "== regular build + ctest =="
cmake -B build -S . > /dev/null
cmake --build build -j "$JOBS"
ctest --test-dir build --output-on-failure -j "$JOBS"

echo "== plan IR: EXPLAIN goldens + pass on/off divergence gate =="
ctest --test-dir build -L plan --output-on-failure -j "$JOBS"

echo "== query service smoke (catalog equivalence, cold/hot/32 sessions) =="
./build/examples/rapida_serve --smoke

echo "== differential fuzz corpus (200 seeds, 4 engines x 2 thread cfgs) =="
ctest --test-dir build -C fuzz -R rapida_fuzz_corpus --output-on-failure

echo "== differential fuzz corpus, scalar fallback (--no-kernels) =="
./build/examples/rapida_fuzz --seeds=200 --no-kernels

echo "== differential fuzz, OPTIONAL/UNION-biased grammar (100 seeds) =="
./build/examples/rapida_fuzz --grammar=opt-union --seeds=100

echo "== golden regen guard (fixtures must match a fresh regeneration) =="
RAPIDA_UPDATE_GOLDEN=1 ./build/tests/golden_test > /dev/null
RAPIDA_UPDATE_GOLDEN=1 ./build/tests/explain_golden_test > /dev/null
git diff --exit-code -- tests/golden || {
  echo "golden regen guard FAILED: committed fixtures differ from a fresh" \
       "RAPIDA_UPDATE_GOLDEN=1 run (diff above; commit the regen if" \
       "intentional)" >&2
  exit 1
}

echo "== differential fuzz, service mode (caching + batching vs direct) =="
./build/examples/rapida_fuzz --service --seeds=50

echo "== perf smoke: Fig. 8(a)+(b) aggregates vs goldens (8 threads) =="
PERF_TMP="$(mktemp -d)"
trap 'rm -rf "$PERF_TMP"' EXIT
for FIG in fig8a fig8b; do
  mkdir -p "$PERF_TMP/$FIG"
  RAPIDA_EXEC_THREADS=8 RAPIDA_BENCH_JSON= RAPIDA_BENCH_CSV="$PERF_TMP/$FIG" \
      "./build/bench/bench_$FIG" > /dev/null
  diff "tests/golden/bench_${FIG}_aggregates.csv" "$PERF_TMP/$FIG"/*.csv || {
    echo "perf smoke FAILED: $FIG per-query aggregates differ from" \
         "tests/golden/bench_${FIG}_aggregates.csv" >&2
    exit 1
  }
done

echo "== AddressSanitizer fuzz smoke (RAPIDA_SANITIZE=address) =="
cmake -B build-asan -S . -DRAPIDA_SANITIZE=address \
      -DCMAKE_BUILD_TYPE=RelWithDebInfo > /dev/null
cmake --build build-asan -j "$JOBS" --target rapida_fuzz explain_golden_test
./build-asan/examples/rapida_fuzz --seeds=50
echo "== ASan: OPTIONAL/UNION-biased fuzz (100 seeds) =="
./build-asan/examples/rapida_fuzz --grammar=opt-union --seeds=100
echo "== ASan: EXPLAIN goldens =="
./build-asan/tests/explain_golden_test

echo "== ThreadSanitizer build (RAPIDA_SANITIZE=thread) =="
cmake -B build-tsan -S . -DRAPIDA_SANITIZE=thread \
      -DCMAKE_BUILD_TYPE=RelWithDebInfo > /dev/null
cmake --build build-tsan -j "$JOBS" --target \
      thread_pool_test mapreduce_test kernels_test engines_test \
      service_stress_test

echo "== TSan: thread_pool_test =="
./build-tsan/tests/thread_pool_test
echo "== TSan: mapreduce_test (incl. ValueSpan reduce-mode matrix) =="
./build-tsan/tests/mapreduce_test
echo "== TSan: kernels_test (batch kernels x exec_threads x combine) =="
./build-tsan/tests/kernels_test
echo "== TSan: engines_test =="
./build-tsan/tests/engines_test
echo "== TSan: service_stress_test (32 sessions + concurrent mutations) =="
./build-tsan/tests/service_stress_test

echo "All checks passed."
