// Golden EXPLAIN fixtures: the physical plan of every catalog query on
// every engine — text and JSON, with per-node cycle/byte estimates — is
// pinned under tests/golden/explain/. Any change to a planner, a pass, or
// the EXPLAIN renderer shows up as a readable fixture diff.
//
// To regenerate after an intentional change:
//   RAPIDA_UPDATE_GOLDEN=1 ./build/tests/explain_golden_test
#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <map>
#include <memory>
#include <sstream>

#include "analytics/analytical_query.h"
#include "plan/planner.h"
#include "sparql/parser.h"
#include "workload/bsbm.h"
#include "workload/catalog.h"
#include "workload/chem2bio.h"
#include "workload/pubmed.h"

#ifndef RAPIDA_GOLDEN_DIR
#error "RAPIDA_GOLDEN_DIR must be defined by the build"
#endif

namespace rapida::plan {
namespace {

/// Same fixed configs as catalog_test.cc / golden_test.cc, so the byte
/// estimates in the fixtures describe the datasets the engines are
/// validated on.
rdf::Graph SmallGraphFor(const std::string& dataset) {
  if (dataset == "bsbm") {
    workload::BsbmConfig cfg;
    cfg.num_products = 300;
    cfg.offers_per_product = 2.5;
    return workload::GenerateBsbm(cfg);
  }
  if (dataset == "chem") {
    workload::ChemConfig cfg;
    cfg.num_assays = 500;
    cfg.num_publications = 1200;
    return workload::GenerateChem2Bio(cfg);
  }
  workload::PubmedConfig cfg;
  cfg.num_publications = 500;
  cfg.mesh_per_publication = 3.0;
  cfg.chemicals_per_publication = 2.0;
  return workload::GeneratePubmed(cfg);
}

engine::Dataset* DatasetFor(const std::string& name) {
  static auto* cache =
      new std::map<std::string, std::unique_ptr<engine::Dataset>>();
  auto it = cache->find(name);
  if (it == cache->end()) {
    it = cache->emplace(name, std::make_unique<engine::Dataset>(
                                  SmallGraphFor(name)))
             .first;
  }
  return it->second.get();
}

std::string GoldenPath(const std::string& id) {
  return std::string(RAPIDA_GOLDEN_DIR) + "/explain/" + id + ".explain";
}

bool UpdateMode() {
  const char* v = std::getenv("RAPIDA_UPDATE_GOLDEN");
  return v != nullptr && *v != '\0' && std::string(v) != "0";
}

/// The full EXPLAIN report of one query: all four engines, text + JSON.
std::string ExplainAll(const analytics::AnalyticalQuery& query,
                       engine::Dataset* dataset) {
  std::string out;
  for (const char* engine : {"Hive (Naive)", "Hive (MQO)", "RAPID+ (Naive)",
                             "RAPIDAnalytics"}) {
    engine::EngineOptions options;
    StatusOr<PhysicalPlan> physical =
        PlanForEngine(engine, query, dataset, options);
    if (!physical.ok()) {
      // Composite construction failed: explain the fallback pipeline the
      // engine would run (PlanForEngine already handles mere non-overlap).
      if (std::string(engine) == "Hive (MQO)") {
        physical = PlanHiveNaive(query, dataset, options);
      } else if (std::string(engine) == "RAPIDAnalytics") {
        physical = PlanRapidPlus(query, dataset, options);
      }
      if (physical.ok()) physical->engine = engine;
    }
    out += "==== " + std::string(engine) + " ====\n";
    if (!physical.ok()) {
      out += "planner error: " + physical.status().ToString() + "\n";
      continue;
    }
    out += physical->ExplainText();
    out += "---- json ----\n";
    out += physical->ExplainJson() + "\n";
  }
  return out;
}

class ExplainGoldenTest : public ::testing::TestWithParam<std::string> {};

TEST_P(ExplainGoldenTest, PlanMatchesFixture) {
  auto cq = workload::FindQuery(GetParam());
  ASSERT_TRUE(cq.ok()) << cq.status();
  engine::Dataset* dataset = DatasetFor((*cq)->dataset);

  auto parsed = sparql::ParseQuery((*cq)->sparql);
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  auto query = analytics::AnalyzeQuery(**parsed);
  ASSERT_TRUE(query.ok()) << query.status();

  std::string actual = ExplainAll(*query, dataset);
  const std::string path = GoldenPath((*cq)->id);
  if (UpdateMode()) {
    std::ofstream out(path);
    ASSERT_TRUE(out.good()) << "cannot write " << path;
    out << actual;
    return;
  }

  std::ifstream in(path);
  ASSERT_TRUE(in.good())
      << "missing fixture " << path
      << " — run RAPIDA_UPDATE_GOLDEN=1 ./build/tests/explain_golden_test";
  std::stringstream buf;
  buf << in.rdbuf();
  EXPECT_EQ(buf.str(), actual)
      << (*cq)->id << " EXPLAIN drifted from " << path
      << " — if intentional, regenerate with RAPIDA_UPDATE_GOLDEN=1";
}

std::vector<std::string> AllQueryIds() {
  std::vector<std::string> ids;
  for (const workload::CatalogQuery& q : workload::Catalog()) {
    ids.push_back(q.id);
  }
  return ids;
}

INSTANTIATE_TEST_SUITE_P(AllQueries, ExplainGoldenTest,
                         ::testing::ValuesIn(AllQueryIds()),
                         [](const ::testing::TestParamInfo<std::string>& i) {
                           // Test names must be identifiers: MG-OPT -> MG_OPT
                           // (fixture files keep the hyphenated id).
                           std::string name = i.param;
                           for (char& c : name) {
                             if (c == '-') c = '_';
                           }
                           return name;
                         });

}  // namespace
}  // namespace rapida::plan
