// Direct unit tests for the Hive-side relational MR operators (Join in
// both physical forms, GroupBy with/without partial aggregation,
// DistinctProject) — the building blocks the two Hive engines compile to.
#include "engines/relational_ops.h"
#include <algorithm>

#include <gtest/gtest.h>

#include "engines/dataset.h"

namespace rapida::engine {
namespace {

class RelationalOpsTest : public ::testing::Test {
 protected:
  RelationalOpsTest()
      : dataset_(rdf::Graph()),
        cluster_(mr::ClusterConfig{}, &dataset_.dfs()),
        ops_(&cluster_, &dataset_, EngineOptions(), "tmp:test") {}

  /// Writes an intermediate-format table into the DFS.
  TableRef WriteTable(const std::string& name,
                      std::vector<std::string> columns,
                      std::vector<std::vector<rdf::TermId>> rows) {
    mr::RecordBatch records;
    for (const auto& row : rows) records.Add("", EncodeRow(row));
    EXPECT_TRUE(dataset_.dfs().Write(name, std::move(records)).ok());
    return TableRef{name, std::move(columns)};
  }

  /// Writes a VP-format table (key=subject, value=object).
  std::string WriteVp(const std::string& name,
                      std::vector<std::pair<rdf::TermId, rdf::TermId>> rows) {
    mr::RecordBatch records;
    for (const auto& [s, o] : rows) {
      records.Add(std::to_string(s), std::to_string(o));
    }
    EXPECT_TRUE(dataset_.dfs().Write(name, std::move(records)).ok());
    return name;
  }

  std::vector<std::vector<rdf::TermId>> Rows(const TableRef& t) {
    auto table = ops_.ReadTable(t);
    EXPECT_TRUE(table.ok());
    auto rows = table->rows();
    std::sort(rows.begin(), rows.end());
    return rows;
  }

  Dataset dataset_;
  mr::Cluster cluster_;
  RelationalOps ops_;
};

TEST_F(RelationalOpsTest, MultiWayStarJoinOnSubject) {
  // Three VP tables sharing subjects 1 and 2; subject 3 misses one.
  JoinInput a{WriteVp("a", {{1, 10}, {2, 20}, {3, 30}}),
              {"s", "x"}, true, "s", false, nullptr};
  JoinInput b{WriteVp("b", {{1, 11}, {2, 21}, {3, 31}}),
              {"s", "y"}, true, "s", false, nullptr};
  JoinInput c{WriteVp("c", {{1, 12}, {2, 22}}),
              {"s", "z"}, true, "s", false, nullptr};
  EngineOptions no_mapjoin;
  no_mapjoin.enable_map_joins = false;
  RelationalOps ops(&cluster_, &dataset_, no_mapjoin, "tmp:x");
  auto t = ops.Join("star", {a, b, c}, nullptr);
  ASSERT_TRUE(t.ok()) << t.status();
  EXPECT_EQ(t->columns, (std::vector<std::string>{"s", "x", "y", "z"}));
  auto rows = Rows(*t);
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0], (std::vector<rdf::TermId>{1, 10, 11, 12}));
  EXPECT_EQ(rows[1], (std::vector<rdf::TermId>{2, 20, 21, 22}));
}

TEST_F(RelationalOpsTest, MapJoinEqualsReduceJoin) {
  JoinInput big{WriteVp("big", {{1, 10}, {2, 20}, {2, 25}, {4, 40}}),
                {"s", "x"}, true, "s", false, nullptr};
  JoinInput small{WriteVp("small", {{1, 100}, {2, 200}}),
                  {"s", "y"}, true, "s", false, nullptr};

  EngineOptions map_on;
  map_on.map_join_threshold_bytes = 1 << 20;
  RelationalOps ops_map(&cluster_, &dataset_, map_on, "tmp:m");
  EngineOptions map_off;
  map_off.enable_map_joins = false;
  RelationalOps ops_red(&cluster_, &dataset_, map_off, "tmp:r");

  auto t1 = ops_map.Join("j", {big, small}, nullptr);
  auto t2 = ops_red.Join("j", {big, small}, nullptr);
  ASSERT_TRUE(t1.ok() && t2.ok());
  EXPECT_EQ(Rows(*t1), Rows(*t2));
  // The map-join cycle must actually be map-only.
  bool saw_map_only = false;
  for (const auto& j : cluster_.history()) {
    if (j.name.find("map-join") != std::string::npos) {
      saw_map_only = saw_map_only || j.map_only;
    }
  }
  EXPECT_TRUE(saw_map_only);
}

TEST_F(RelationalOpsTest, OuterInputPadsNulls) {
  JoinInput base{WriteVp("base", {{1, 10}, {2, 20}}),
                 {"s", "x"}, true, "s", false, nullptr};
  JoinInput opt{WriteVp("opt", {{1, 99}}),
                {"s", "y"}, true, "s", true, nullptr};
  auto t = ops_.Join("outer", {base, opt}, nullptr);
  ASSERT_TRUE(t.ok()) << t.status();
  auto rows = Rows(*t);
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0], (std::vector<rdf::TermId>{1, 10, 99}));
  EXPECT_EQ(rows[1], (std::vector<rdf::TermId>{2, 20, rdf::kInvalidTermId}));
}

TEST_F(RelationalOpsTest, PredicatesAndPostPredicate) {
  JoinInput a{WriteVp("a", {{1, 10}, {2, 20}, {3, 30}}),
              {"s", "x"}, true, "s", false,
              [](const std::vector<rdf::TermId>& row) {
                return row[1] != 20;  // drop subject 2 map-side
              }};
  JoinInput b{WriteVp("b", {{1, 11}, {2, 21}, {3, 31}}),
              {"s", "y"}, true, "s", false, nullptr};
  auto t = ops_.Join("filtered", {a, b},
                     [](const std::vector<rdf::TermId>& row) {
                       return row[0] != 3;  // drop subject 3 post-join
                     });
  ASSERT_TRUE(t.ok());
  auto rows = Rows(*t);
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0][0], 1u);
}

TEST_F(RelationalOpsTest, GroupByPartialAndRawAgree) {
  rdf::Dictionary& dict = dataset_.dict();
  rdf::TermId k1 = dict.InternIri("k1"), k2 = dict.InternIri("k2");
  rdf::TermId v5 = dict.InternInt(5), v7 = dict.InternInt(7),
              v2 = dict.InternInt(2);
  TableRef input = WriteTable("rows", {"k", "v"},
                              {{k1, v5}, {k1, v7}, {k2, v2}, {k1, v2}});
  std::vector<RelationalOps::AggColumn> aggs = {
      {sparql::AggFunc::kCount, "v", false, "cnt", " "},
      {sparql::AggFunc::kSum, "v", false, "sum", " "}};

  EngineOptions raw;
  raw.partial_aggregation = false;
  RelationalOps ops_raw(&cluster_, &dataset_, raw, "tmp:raw");
  auto partial = ops_.GroupBy("g", input, {"k"}, aggs);
  auto direct = ops_raw.GroupBy("g", input, {"k"}, aggs);
  ASSERT_TRUE(partial.ok() && direct.ok());
  EXPECT_EQ(Rows(*partial), Rows(*direct));

  // Spot-check the values: k1 -> cnt 3, sum 14.
  auto rows = Rows(*partial);
  const rdf::Dictionary& d = dataset_.dict();
  for (const auto& row : rows) {
    if (row[0] == k1) {
      EXPECT_DOUBLE_EQ(*d.AsNumber(row[1]), 3);
      EXPECT_DOUBLE_EQ(*d.AsNumber(row[2]), 14);
    }
  }
}

TEST_F(RelationalOpsTest, GroupByHavingFiltersInReduce) {
  rdf::Dictionary& dict = dataset_.dict();
  rdf::TermId k1 = dict.InternIri("k1"), k2 = dict.InternIri("k2");
  rdf::TermId v1 = dict.InternInt(1);
  TableRef input =
      WriteTable("rows", {"k", "v"}, {{k1, v1}, {k1, v1}, {k2, v1}});
  std::vector<RelationalOps::AggColumn> aggs = {
      {sparql::AggFunc::kCount, "v", false, "cnt", " "}};
  RowPredicate having = [&dict](const std::vector<rdf::TermId>& row) {
    return *dict.AsNumber(row[1]) >= 2;
  };
  auto t = ops_.GroupBy("g", input, {"k"}, aggs, having);
  ASSERT_TRUE(t.ok());
  auto rows = Rows(*t);
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0][0], k1);
}

TEST_F(RelationalOpsTest, DistinctProjectDedups) {
  TableRef input = WriteTable("rows", {"a", "b", "c"},
                              {{1, 2, 3}, {1, 2, 4}, {1, 2, 3}, {5, 6, 7}});
  auto t = ops_.DistinctProject("d", input, {"a", "b"}, nullptr);
  ASSERT_TRUE(t.ok());
  auto rows = Rows(*t);
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0], (std::vector<rdf::TermId>{1, 2}));
  EXPECT_EQ(rows[1], (std::vector<rdf::TermId>{5, 6}));
}

TEST_F(RelationalOpsTest, CleanupRemovesTempFiles) {
  TableRef input = WriteTable("rows", {"a"}, {{1}});
  auto t = ops_.DistinctProject("d", input, {"a"}, nullptr);
  ASSERT_TRUE(t.ok());
  EXPECT_TRUE(dataset_.dfs().Exists(t->file));
  ops_.Cleanup();
  EXPECT_FALSE(dataset_.dfs().Exists(t->file));
  EXPECT_TRUE(dataset_.dfs().Exists("rows"));  // inputs untouched
}

}  // namespace
}  // namespace rapida::engine
