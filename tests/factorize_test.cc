// Factorized (d-representation) intermediates: codec round-trips, the
// weighted aggregator, and the byte-identity matrix — every factorized
// pipeline must produce exactly the flat path's rows across exec_threads
// x map-join x partial-aggregation x vectorized-kernel combinations,
// while materializing and shuffling fewer bytes on multi-valued data.
#include "engines/factorized.h"

#include <algorithm>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "analytics/aggregates.h"
#include "analytics/reference_evaluator.h"
#include "engines/dataset.h"
#include "engines/engines.h"
#include "engines/relational_ops.h"
#include "sparql/parser.h"
#include "workload/catalog.h"
#include "workload/pubmed.h"

namespace rapida::engine {
namespace {

using Row = std::vector<rdf::TermId>;
using Rows = std::vector<Row>;

// ---------------------------------------------------------------------------
// Codec unit tests
// ---------------------------------------------------------------------------

TEST(FactorizedCodec, EncodeParseEnumerate) {
  Factorization spec;
  spec.width = 4;
  spec.base_cols = {0};
  spec.factors = {{1, 2}, {3}};

  GroupEncoder enc;
  enc.Start();
  enc.AddBaseCell(7);
  enc.StartFactor();
  Row r1 = {10, 11}, r2 = {20, 21};
  enc.AddFactorRow(r1.data(), 2);
  enc.AddFactorRow(r2.data(), 2);
  enc.StartFactor();
  Row s1 = {30}, s2 = {31}, s3 = {32};
  enc.AddFactorRow(s1.data(), 1);
  enc.AddFactorRow(s2.data(), 1);
  enc.AddFactorRow(s3.data(), 1);
  std::string value = enc.Finish();
  EXPECT_EQ(value, "7|10,11;20,21|30;31;32");
  EXPECT_EQ(enc.flat_rows(), 6u);

  GroupView view;
  ASSERT_TRUE(ParseGroup(value, 2, &view));
  EXPECT_EQ(view.FlatRows(), 6u);

  Rows flat;
  Row scratch;
  ForEachFlatRow(spec, view, &scratch,
                 [&flat](const Row& r) { flat.push_back(r); });
  // Factor 0 outermost, factor 1 innermost: canonical flat order.
  Rows expected = {{7, 10, 11, 30}, {7, 10, 11, 31}, {7, 10, 11, 32},
                   {7, 20, 21, 30}, {7, 20, 21, 31}, {7, 20, 21, 32}};
  EXPECT_EQ(flat, expected);

  // FlatRecordBytes == the exact stored size of the enumerated records.
  uint64_t expect_bytes = 0;
  for (const Row& r : expected) expect_bytes += EncodeRow(r).size() + 2;
  EXPECT_EQ(FlatRecordBytes(spec, view), expect_bytes);
}

TEST(FactorizedCodec, ZeroColumnFactorIsPureMultiplicity) {
  Factorization spec;
  spec.width = 1;
  spec.base_cols = {0};
  spec.factors = {{}};

  GroupEncoder enc;
  enc.Start();
  enc.AddBaseCell(5);
  enc.StartFactor();
  enc.AddFactorRow(nullptr, 0);
  enc.AddFactorRow(nullptr, 0);
  enc.AddFactorRow(nullptr, 0);
  std::string value = enc.Finish();
  EXPECT_EQ(value, "5|;;");
  EXPECT_EQ(enc.flat_rows(), 3u);

  GroupView view;
  ASSERT_TRUE(ParseGroup(value, 1, &view));
  Rows flat;
  Row scratch;
  ForEachFlatRow(spec, view, &scratch,
                 [&flat](const Row& r) { flat.push_back(r); });
  EXPECT_EQ(flat, (Rows{{5}, {5}, {5}}));
  EXPECT_EQ(FlatRecordBytes(spec, view), 3u * (1 + 2));
}

TEST(FactorizedCodec, UncoveredPositionsReadNull) {
  Factorization spec;
  spec.width = 3;
  spec.base_cols = {2};
  spec.factors = {{0}};
  GroupEncoder enc;
  enc.Start();
  enc.AddBaseCell(9);
  enc.StartFactor();
  Row r = {4};
  enc.AddFactorRow(r.data(), 1);
  GroupView view;
  ASSERT_TRUE(ParseGroup(enc.Finish(), 1, &view));
  Rows flat;
  Row scratch;
  ForEachFlatRow(spec, view, &scratch,
                 [&flat](const Row& rr) { flat.push_back(rr); });
  EXPECT_EQ(flat, (Rows{{4, rdf::kInvalidTermId, 9}}));
  // "4,0,9" + 2 accounting bytes.
  EXPECT_EQ(FlatRecordBytes(spec, view), 5u + 2u);
}

TEST(FactorizedCodec, RawSegmentPassThrough) {
  GroupEncoder enc;
  enc.Start();
  enc.AddRawBase("1,2");
  enc.AddBaseCell(3);
  enc.AddRawFactor("7;8;9", 3);
  enc.AddRawFactor("", 1);  // one row of zero cells
  EXPECT_EQ(enc.Finish(), "1,2,3|7;8;9|");
  EXPECT_EQ(enc.flat_rows(), 3u);
}

TEST(WeightedAggregator, MatchesSequentialAdds) {
  rdf::Dictionary dict;
  rdf::TermId a = dict.InternInt(3), b = dict.InternInt(11);
  for (sparql::AggFunc f :
       {sparql::AggFunc::kCount, sparql::AggFunc::kMin, sparql::AggFunc::kMax,
        sparql::AggFunc::kSample, sparql::AggFunc::kGroupConcat}) {
    analytics::Aggregator seq(f, false);
    analytics::Aggregator wtd(f, false);
    for (int i = 0; i < 4; ++i) seq.AddTerm(a, dict);
    for (int i = 0; i < 2; ++i) seq.AddTerm(b, dict);
    wtd.AddTermWeighted(a, dict, 4);
    wtd.AddTermWeighted(b, dict, 2);
    EXPECT_EQ(seq.Finalize(&dict), wtd.Finalize(&dict))
        << "func " << static_cast<int>(f);
    EXPECT_EQ(seq.count(), wtd.count());
    EXPECT_EQ(seq.SerializePartial(), wtd.SerializePartial())
        << "func " << static_cast<int>(f);
  }
  // COUNT(*) rows.
  analytics::Aggregator seq(sparql::AggFunc::kCount, false);
  analytics::Aggregator wtd(sparql::AggFunc::kCount, false);
  for (int i = 0; i < 7; ++i) seq.AddRow();
  wtd.AddRowWeighted(7);
  EXPECT_EQ(seq.count(), wtd.count());
}

// ---------------------------------------------------------------------------
// Operator byte-identity matrix
// ---------------------------------------------------------------------------

class FactorizeTest : public ::testing::Test {
 protected:
  FactorizeTest() : dataset_(rdf::Graph()) { BuildTables(); }

  rdf::TermId I(int64_t v) { return dataset_.dict().InternInt(v); }

  void WriteVp(const std::string& name,
               const std::vector<std::pair<rdf::TermId, rdf::TermId>>& rows) {
    mr::RecordBatch records;
    for (const auto& [s, o] : rows) {
      records.Add(std::to_string(s), std::to_string(o));
    }
    ASSERT_TRUE(dataset_.dfs().Write(name, std::move(records)).ok());
  }

  /// A multi-valued star over subjects 1..6:
  ///   a: 1-3 objects per subject (the MeSH-style multi-valued slot)
  ///   b: 2 objects per subject, subject 5 missing (inner-join miss)
  ///   c: 1 object per subject, subject 3 missing (outer pad)
  /// plus d: maps a-objects to 1-2 w values (the inter-star link), and a
  /// small flat side table e for UNION.
  void BuildTables() {
    std::vector<std::pair<rdf::TermId, rdf::TermId>> a, b, c, d;
    for (int s = 1; s <= 6; ++s) {
      rdf::TermId sid = I(s);
      for (int k = 0; k <= s % 3; ++k) {
        rdf::TermId x = I(10 * s + k);
        a.push_back({sid, x});
        d.push_back({x, I(5000 + 10 * s + k)});
        if (k == 0) d.push_back({x, I(7000 + s)});
      }
      if (s != 5) {
        b.push_back({sid, I(100 * s + 1)});
        b.push_back({sid, I(100 * s + 2)});
      }
      if (s != 3) c.push_back({sid, I(1000 * s)});
    }
    WriteVp("vp:a", a);
    WriteVp("vp:b", b);
    WriteVp("vp:c", c);
    WriteVp("vp:d", d);
  }

  JoinInput VpInput(const std::string& file, const std::string& subj,
                    const std::string& obj, bool outer = false) {
    JoinInput in;
    in.file = file;
    in.columns = {subj, obj};
    in.is_vp = true;
    in.join_column = subj;
    in.outer = outer;
    return in;
  }

  struct PipelineResult {
    Rows star, linked, by_s, by_y, distinct;
    uint64_t star_stored = 0;  // stored bytes of the star intermediate
    uint64_t star_flat_bytes = 0;
    uint64_t link_shuffle = 0;  // shuffle bytes of the inter-star join
    uint64_t groups = 0;        // factorized groups across the pipeline
    uint64_t flat_rows = 0;
  };

  Rows SortedRows(RelationalOps* ops, const TableRef& t) {
    auto table = ops->ReadTable(t);
    EXPECT_TRUE(table.ok()) << table.status();
    Rows rows = table->rows();
    std::sort(rows.begin(), rows.end());
    return rows;
  }

  /// Star join -> inter-star join on the multi-valued x -> GroupBy (key in
  /// base, then key in a factor) -> DISTINCT projection.
  PipelineResult RunPipeline(int exec_threads, bool factorize, bool map_joins,
                             bool partial_agg, bool vectorized,
                             const std::string& ns) {
    mr::ClusterConfig cfg;
    cfg.exec_threads = exec_threads;
    cfg.exec_split_bytes = 64;  // several map tasks even on tiny files
    mr::Cluster cluster(cfg, &dataset_.dfs());
    EngineOptions opt;
    opt.enable_map_joins = map_joins;
    opt.map_join_threshold_bytes = 1 << 20;
    opt.partial_aggregation = partial_agg;
    opt.vectorized_kernels = vectorized;
    opt.factorized_intermediates = factorize;
    RelationalOps ops(&cluster, &dataset_, opt, "tmp:" + ns);

    PipelineResult out;
    auto star = ops.Join("star",
                         {VpInput("vp:a", "s", "x"), VpInput("vp:b", "s", "y"),
                          VpInput("vp:c", "s", "z", /*outer=*/true)},
                         nullptr, factorize);
    EXPECT_TRUE(star.ok()) << star.status();
    EXPECT_EQ(star->factorized(), factorize);
    out.star = SortedRows(&ops, *star);
    out.star_stored = dataset_.VpFileBytes(star->file);
    auto fsb = ops.FlatStoredBytes(*star);
    EXPECT_TRUE(fsb.ok());
    out.star_flat_bytes = *fsb;

    JoinInput star_in;
    star_in.file = star->file;
    star_in.columns = star->columns;
    star_in.join_column = "x";
    star_in.factor = star->factor;
    star_in.flat_bytes = star->flat_bytes;
    auto linked =
        ops.Join("link", {star_in, VpInput("vp:d", "x", "w")}, nullptr,
                 factorize);
    EXPECT_TRUE(linked.ok()) << linked.status();
    out.linked = SortedRows(&ops, *linked);
    for (const auto& j : cluster.history()) {
      if (j.name.rfind("link", 0) == 0) out.link_shuffle = j.shuffle_bytes;
    }

    std::vector<RelationalOps::AggColumn> aggs = {
        {sparql::AggFunc::kCount, "", true, "cnt", " "},
        {sparql::AggFunc::kMin, "w", false, "minw", " "},
        {sparql::AggFunc::kMax, "y", false, "maxy", " "},
        {sparql::AggFunc::kSample, "x", false, "sx", " "}};
    auto by_s = ops.GroupBy("by_s", *linked, {"s"}, aggs);
    EXPECT_TRUE(by_s.ok()) << by_s.status();
    out.by_s = SortedRows(&ops, *by_s);

    // Key inside a factor: the group-by must enumerate that factor only.
    std::vector<RelationalOps::AggColumn> aggs2 = {
        {sparql::AggFunc::kCount, "", true, "cnt", " "},
        {sparql::AggFunc::kMin, "x", false, "minx", " "}};
    auto by_y = ops.GroupBy("by_y", *linked, {"y"}, aggs2);
    EXPECT_TRUE(by_y.ok()) << by_y.status();
    out.by_y = SortedRows(&ops, *by_y);

    auto dp = ops.DistinctProject("dp", *star, {"s", "y"}, nullptr);
    EXPECT_TRUE(dp.ok()) << dp.status();
    out.distinct = SortedRows(&ops, *dp);

    for (const auto& j : cluster.history()) {
      out.groups += j.factorized_groups;
      out.flat_rows += j.factorized_flat_rows;
    }
    return out;
  }

  Dataset dataset_;
};

TEST_F(FactorizeTest, ByteIdentityMatrix) {
  PipelineResult flat = RunPipeline(1, false, false, true, true, "flat");
  ASSERT_FALSE(flat.star.empty());
  ASSERT_FALSE(flat.linked.empty());
  EXPECT_EQ(flat.groups, 0u);

  int run = 0;
  for (int threads : {1, 8}) {
    for (bool map_joins : {false, true}) {
      for (bool partial : {false, true}) {
        for (bool vect : {false, true}) {
          PipelineResult fact =
              RunPipeline(threads, true, map_joins, partial, vect,
                          "f" + std::to_string(run++));
          std::string label = "threads=" + std::to_string(threads) +
                              " mapjoin=" + std::to_string(map_joins) +
                              " partial=" + std::to_string(partial) +
                              " vect=" + std::to_string(vect);
          EXPECT_EQ(fact.star, flat.star) << label;
          EXPECT_EQ(fact.linked, flat.linked) << label;
          EXPECT_EQ(fact.by_s, flat.by_s) << label;
          EXPECT_EQ(fact.by_y, flat.by_y) << label;
          EXPECT_EQ(fact.distinct, flat.distinct) << label;
          // The d-representation must genuinely compress: fewer stored
          // bytes than the flat star, whose exact size FlatStoredBytes
          // reconstructs arithmetically.
          EXPECT_LT(fact.star_stored, flat.star_stored) << label;
          EXPECT_EQ(fact.star_flat_bytes, flat.star_stored) << label;
          EXPECT_GT(fact.groups, 0u) << label;
          EXPECT_GT(fact.flat_rows, fact.groups) << label;
          // Partial decompression keeps the non-join factors compressed
          // across the inter-star shuffle.
          EXPECT_LT(fact.link_shuffle, flat.link_shuffle) << label;
        }
      }
    }
  }
}

TEST_F(FactorizeTest, StarJoinDecompressesInExactFlatOrder) {
  mr::ClusterConfig cfg;
  cfg.exec_threads = 1;
  mr::Cluster cluster(cfg, &dataset_.dfs());
  EngineOptions opt;
  opt.enable_map_joins = false;
  RelationalOps ops(&cluster, &dataset_, opt, "tmp:order");
  std::vector<JoinInput> inputs = {VpInput("vp:a", "s", "x"),
                                   VpInput("vp:b", "s", "y")};
  auto flat = ops.Join("s1", inputs, nullptr, false);
  auto fact = ops.Join("s2", inputs, nullptr, true);
  ASSERT_TRUE(flat.ok() && fact.ok());
  ASSERT_TRUE(fact->factorized());
  auto ft = ops.ReadTable(*flat);
  auto kt = ops.ReadTable(*fact);
  ASSERT_TRUE(ft.ok() && kt.ok());
  EXPECT_EQ(ft->rows(), kt->rows());  // unsorted: exact enumeration order
}

TEST_F(FactorizeTest, UnionAllDecompressesFactorizedBranches) {
  mr::ClusterConfig cfg;
  mr::Cluster cluster(cfg, &dataset_.dfs());
  EngineOptions opt;
  RelationalOps ops(&cluster, &dataset_, opt, "tmp:u");
  std::vector<JoinInput> inputs = {VpInput("vp:a", "s", "x"),
                                   VpInput("vp:b", "s", "y")};
  auto flat = ops.Join("s1", inputs, nullptr, false);
  auto fact = ops.Join("s2", inputs, nullptr, true);
  ASSERT_TRUE(flat.ok() && fact.ok());
  mr::RecordBatch extra;
  extra.Add("", EncodeRow({I(42), I(43)}));
  ASSERT_TRUE(dataset_.dfs().Write("t:extra", std::move(extra)).ok());
  TableRef other{"t:extra", {"s", "q"}, nullptr, 0};
  auto u_flat = ops.UnionAll("u1", {*flat, other});
  auto u_fact = ops.UnionAll("u2", {*fact, other});
  ASSERT_TRUE(u_flat.ok() && u_fact.ok());
  auto r1 = ops.ReadTable(*u_flat);
  auto r2 = ops.ReadTable(*u_fact);
  ASSERT_TRUE(r1.ok() && r2.ok());
  Rows a = r1->rows(), b = r2->rows();
  std::sort(a.begin(), a.end());
  std::sort(b.begin(), b.end());
  EXPECT_EQ(a, b);
}

TEST_F(FactorizeTest, SumKeepsOutputFlatButCorrect) {
  // SUM is order-sensitive in float: the factorized GroupBy must fall back
  // to stream decompression and still match the flat result exactly
  // (integer-valued sums are exact either way).
  mr::ClusterConfig cfg;
  mr::Cluster cluster(cfg, &dataset_.dfs());
  EngineOptions opt;
  opt.enable_map_joins = false;
  RelationalOps ops(&cluster, &dataset_, opt, "tmp:sum");
  std::vector<JoinInput> inputs = {VpInput("vp:a", "s", "x"),
                                   VpInput("vp:b", "s", "y")};
  auto flat = ops.Join("s1", inputs, nullptr, false);
  auto fact = ops.Join("s2", inputs, nullptr, true);
  ASSERT_TRUE(flat.ok() && fact.ok());
  std::vector<RelationalOps::AggColumn> aggs = {
      {sparql::AggFunc::kSum, "y", false, "sy", " "}};
  auto g1 = ops.GroupBy("g1", *flat, {"s"}, aggs);
  auto g2 = ops.GroupBy("g2", *fact, {"s"}, aggs);
  ASSERT_TRUE(g1.ok() && g2.ok());
  auto r1 = ops.ReadTable(*g1);
  auto r2 = ops.ReadTable(*g2);
  ASSERT_TRUE(r1.ok() && r2.ok());
  Rows a = r1->rows(), b = r2->rows();
  std::sort(a.begin(), a.end());
  std::sort(b.begin(), b.end());
  EXPECT_EQ(a, b);
}

// ---------------------------------------------------------------------------
// MG13F end-to-end fixture: the Table 4 footnote, converted to a pass
// ---------------------------------------------------------------------------

/// One engine run over the MG13F dataset with byte accounting.
struct Mg13Run {
  std::vector<std::string> rows;
  uint64_t materialized = 0;  // Dfs lifetime-write delta (intermediates only)
  uint64_t shuffled = 0;      // map->reduce bytes across the workflow
  uint64_t peak = 0;          // Dfs stored-bytes high-water mark
};

class Mg13FixtureTest : public ::testing::Test {
 protected:
  /// Fanouts above the catalog test defaults so the flat star join's
  /// cross product (mesh x chemical x author ~ 60 rows/publication)
  /// dominates every byte metric, as in the paper's 190 GB MG13 run.
  static Dataset* SharedDataset() {
    static Dataset* ds = [] {
      workload::PubmedConfig cfg;
      cfg.num_publications = 120;
      cfg.mesh_per_publication = 10.0;
      cfg.chemicals_per_publication = 10.0;
      cfg.authors_per_publication = 4.0;
      auto* d = new Dataset(workload::GeneratePubmed(cfg));
      // Base tables up front so per-run deltas measure intermediates only.
      EXPECT_TRUE(d->EnsureVpTables().ok());
      EXPECT_TRUE(d->EnsureTripleGroups().ok());
      return d;
    }();
    return ds;
  }

  static const analytics::AnalyticalQuery& Query() {
    static const analytics::AnalyticalQuery* q = [] {
      auto cq = workload::FindQuery("MG13F");
      EXPECT_TRUE(cq.ok());
      auto parsed = sparql::ParseQuery((*cq)->sparql);
      EXPECT_TRUE(parsed.ok());
      auto analyzed = analytics::AnalyzeQuery(**parsed);
      EXPECT_TRUE(analyzed.ok());
      return new analytics::AnalyticalQuery(std::move(analyzed).value());
    }();
    return *q;
  }

  static const std::vector<std::string>& ExpectedRows() {
    static const std::vector<std::string>* rows = [] {
      Dataset* ds = SharedDataset();
      auto cq = workload::FindQuery("MG13F");
      auto parsed = sparql::ParseQuery((*cq)->sparql);
      analytics::ReferenceEvaluator ref(&ds->graph());
      auto expected = ref.Evaluate(**parsed);
      EXPECT_TRUE(expected.ok());
      return new std::vector<std::string>(
          expected->ToSortedStrings(ds->dict()));
    }();
    return *rows;
  }

  StatusOr<Mg13Run> RunEngine(Engine* eng, int threads, int shards) {
    Dataset* ds = SharedDataset();
    mr::ClusterConfig cfg;
    cfg.exec_threads = threads;
    cfg.num_shards = shards;
    mr::Cluster cluster(cfg, &ds->dfs());
    uint64_t written_before = ds->dfs().LifetimeBytesWritten();
    ds->dfs().ResetPeak();
    ExecStats stats;
    auto result = eng->Execute(Query(), ds, &cluster, &stats);
    RAPIDA_RETURN_IF_ERROR(result.status());
    Mg13Run run;
    run.rows = result->ToSortedStrings(ds->dict());
    run.materialized = ds->dfs().LifetimeBytesWritten() - written_before;
    run.peak = ds->dfs().PeakStoredBytes();
    for (const auto& j : stats.workflow.jobs) run.shuffled += j.shuffle_bytes;
    return run;
  }

  StatusOr<Mg13Run> RunHive(bool factorize, int threads = 1, int shards = 0) {
    EngineOptions o;
    o.factorized_intermediates = factorize;
    o.num_shards = shards;
    // Repartition joins, the paper's naive-Hive shape: the star join both
    // shuffles and materializes its cross product, so the byte gates
    // below measure the d-representation on both axes. (Map-join FactJoin
    // coverage comes from the all-engines matrix, which keeps defaults.)
    o.enable_map_joins = false;
    HiveNaiveEngine eng(o);
    return RunEngine(&eng, threads, shards);
  }
};

TEST_F(Mg13FixtureTest, FactorizedCutsBytesFiveFold) {
  ASSERT_FALSE(ExpectedRows().empty());
  auto flat = RunHive(false);
  auto fact = RunHive(true);
  ASSERT_TRUE(flat.ok()) << flat.status();
  ASSERT_TRUE(fact.ok()) << fact.status();
  EXPECT_EQ(flat->rows, ExpectedRows());
  EXPECT_EQ(fact->rows, ExpectedRows());
  // The acceptance bar: d-representation cuts both the materialization
  // volume and the shuffle volume of the multi-valued star by >= 5x.
  EXPECT_GE(flat->materialized, 5 * fact->materialized)
      << "flat=" << flat->materialized << " fact=" << fact->materialized;
  EXPECT_GE(flat->shuffled, 5 * fact->shuffled)
      << "flat=" << flat->shuffled << " fact=" << fact->shuffled;
}

TEST_F(Mg13FixtureTest, ByteIdenticalOnAllEnginesAcrossThreadsAndShards) {
  const std::vector<std::string>& expected = ExpectedRows();
  ASSERT_FALSE(expected.empty());
  EngineOptions o;
  o.factorized_intermediates = true;
  for (int threads : {1, 8}) {
    for (int shards : {0, 4}) {
      o.num_shards = shards;
      for (const auto& eng : MakeAllEngines(o)) {
        auto run = RunEngine(eng.get(), threads, shards);
        ASSERT_TRUE(run.ok()) << eng->name() << ": " << run.status();
        EXPECT_EQ(run->rows, expected)
            << eng->name() << " threads=" << threads << " shards=" << shards;
      }
    }
  }
}

TEST_F(Mg13FixtureTest, SurvivesCapacityLimitThatKillsFlat) {
  // Pin the Table 4 footnote conversion: under a Dfs capacity limit sized
  // between the two peaks, the flat run dies with ResourceExhausted (the
  // paper's "insufficient HDFS disk space") and the factorized run of the
  // SAME query completes with the same rows.
  auto flat = RunHive(false);
  auto fact = RunHive(true);
  ASSERT_TRUE(flat.ok() && fact.ok());
  ASSERT_LT(fact->peak, flat->peak);
  uint64_t limit = fact->peak + (flat->peak - fact->peak) / 2;
  Dataset* ds = SharedDataset();
  ds->dfs().SetCapacityLimit(limit);
  auto flat_capped = RunHive(false);
  EXPECT_FALSE(flat_capped.ok());
  if (!flat_capped.ok()) {
    EXPECT_EQ(flat_capped.status().code(), Code::kResourceExhausted)
        << flat_capped.status();
  }
  auto fact_capped = RunHive(true);
  ASSERT_TRUE(fact_capped.ok()) << fact_capped.status();
  EXPECT_EQ(fact_capped->rows, ExpectedRows());
  ds->dfs().SetCapacityLimit(0);
}

}  // namespace
}  // namespace rapida::engine
