#include "service/query_service.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <future>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "analytics/analytical_query.h"
#include "engines/rapid_analytics.h"
#include "service/cache.h"
#include "service/scheduler.h"
#include "sparql/parser.h"
#include "workload/bsbm.h"
#include "workload/catalog.h"
#include "workload/chem2bio.h"
#include "workload/pubmed.h"

namespace rapida::service {
namespace {

/// The engines_test mini-graph, trimmed: typed products with features,
/// offers with prices.
rdf::Graph BuildMiniGraph() {
  rdf::Graph g;
  const char* products[] = {"p1", "p2", "p3"};
  for (const char* p : products) {
    g.AddIri(p, rdf::kRdfType, "PT1");
    g.AddLit(p, "label", std::string("label-") + p);
  }
  g.AddIri("p1", "feature", "f1");
  g.AddIri("p2", "feature", "f1");
  g.AddIri("p3", "feature", "f2");
  struct Offer {
    const char* id;
    const char* product;
    int price;
  };
  for (const Offer& o : std::initializer_list<Offer>{
           {"o1", "p1", 100}, {"o2", "p2", 80}, {"o3", "p3", 300}}) {
    g.AddIri(o.id, "product", o.product);
    g.AddInt(o.id, "price", o.price);
  }
  return g;
}

constexpr char kSumByFeature[] = R"(
  SELECT ?f (SUM(?pr) AS ?total) (COUNT(?pr) AS ?cnt) {
    ?p a <PT1> . ?p <feature> ?f .
    ?off <product> ?p . ?off <price> ?pr .
  } GROUP BY ?f
)";

/// Same query, different spelling — must share one fingerprint.
constexpr char kSumByFeatureReformatted[] =
    "SELECT ?f (SUM(?pr) AS ?total)   (COUNT(?pr) AS ?cnt)\n"
    "WHERE { ?p a <PT1> . ?p <feature> ?f .\n"
    "        ?off <product> ?p . ?off <price> ?pr . }\n"
    "GROUP BY ?f";

std::vector<std::string> DirectResult(const std::string& sparql,
                                      engine::Dataset* dataset) {
  auto parsed = sparql::ParseQuery(sparql);
  EXPECT_TRUE(parsed.ok()) << parsed.status();
  auto query = analytics::AnalyzeQuery(**parsed);
  EXPECT_TRUE(query.ok()) << query.status();
  mr::Cluster cluster(mr::ClusterConfig{}, &dataset->dfs());
  engine::RapidAnalyticsEngine engine;
  auto result = engine.Execute(*query, dataset, &cluster, nullptr);
  EXPECT_TRUE(result.ok()) << result.status();
  return result->ToSortedStrings(dataset->dict());
}

ServiceOptions SmallOptions() {
  ServiceOptions opts;
  opts.workers = 2;
  return opts;
}

TEST(CanonicalFingerprintTest, NormalizesFormattingOnly) {
  auto a = CanonicalFingerprint(kSumByFeature);
  auto b = CanonicalFingerprint(kSumByFeatureReformatted);
  ASSERT_TRUE(a.ok()) << a.status();
  ASSERT_TRUE(b.ok()) << b.status();
  EXPECT_EQ(*a, *b);

  auto c = CanonicalFingerprint(
      "SELECT ?f (SUM(?pr) AS ?total) { ?p a <PT1> . ?p <feature> ?f . "
      "?off <product> ?p . ?off <price> ?pr . } GROUP BY ?f");
  ASSERT_TRUE(c.ok()) << c.status();
  EXPECT_NE(*a, *c);  // different query, different fingerprint

  EXPECT_FALSE(CanonicalFingerprint("SELECT WHERE {").ok());
}

TEST(ServiceTest, ServesQueryAndHitsCachesWhenHot) {
  engine::Dataset dataset(BuildMiniGraph());
  std::vector<std::string> expected = DirectResult(kSumByFeature, &dataset);

  QueryService svc(SmallOptions());
  svc.RegisterDataset("mini", &dataset);
  int session = svc.OpenSession("t");

  Response cold = svc.Execute(session, QuerySpec{kSumByFeature, "mini"});
  ASSERT_TRUE(cold.result.ok()) << cold.result.status();
  EXPECT_EQ(cold.result->ToSortedStrings(dataset.dict()), expected);
  EXPECT_FALSE(cold.result_cache_hit);
  EXPECT_GT(cold.sim_seconds, 0);

  // Different spelling of the same query: plan-cache hit (shared
  // fingerprint), result-cache hit, identical rows.
  Response hot =
      svc.Execute(session, QuerySpec{kSumByFeatureReformatted, "mini"});
  ASSERT_TRUE(hot.result.ok()) << hot.result.status();
  EXPECT_TRUE(hot.result_cache_hit);
  EXPECT_EQ(hot.result->ToSortedStrings(dataset.dict()), expected);
  EXPECT_EQ(hot.fingerprint, cold.fingerprint);
  EXPECT_GE(svc.plan_cache().hits(), 1u);
  EXPECT_GE(svc.result_cache().hits(), 1u);
}

TEST(ServiceTest, TypedAdmissionRejections) {
  engine::Dataset dataset(BuildMiniGraph());
  ServiceOptions opts = SmallOptions();
  opts.max_queue_depth = 0;  // reject everything: pure backpressure path
  QueryService svc(opts);
  svc.RegisterDataset("mini", &dataset);
  int session = svc.OpenSession("t");

  auto full = svc.Submit(session, QuerySpec{kSumByFeature, "mini"});
  ASSERT_FALSE(full.ok());
  EXPECT_EQ(full.status().code(), Code::kResourceExhausted);

  auto bad_session = svc.Submit(99, QuerySpec{kSumByFeature, "mini"});
  ASSERT_FALSE(bad_session.ok());
  EXPECT_EQ(bad_session.status().code(), Code::kInvalidArgument);

  auto bad_dataset = svc.Submit(session, QuerySpec{kSumByFeature, "nope"});
  ASSERT_FALSE(bad_dataset.ok());
  EXPECT_EQ(bad_dataset.status().code(), Code::kNotFound);

  auto bad_query = svc.Submit(session, QuerySpec{"SELECT WHERE {", "mini"});
  ASSERT_FALSE(bad_query.ok());

  svc.Shutdown();
  auto after_shutdown = svc.Submit(session, QuerySpec{kSumByFeature, "mini"});
  ASSERT_FALSE(after_shutdown.ok());
  EXPECT_EQ(after_shutdown.status().code(), Code::kUnavailable);

  EXPECT_GE(svc.metrics().rejected(), 3u);
}

TEST(ServiceTest, ResultCacheInvalidatedByMutation) {
  engine::Dataset dataset(BuildMiniGraph());
  QueryService svc(SmallOptions());
  svc.RegisterDataset("mini", &dataset);
  int session = svc.OpenSession("t");

  Response before = svc.Execute(session, QuerySpec{kSumByFeature, "mini"});
  ASSERT_TRUE(before.result.ok()) << before.result.status();
  Response hit = svc.Execute(session, QuerySpec{kSumByFeature, "mini"});
  EXPECT_TRUE(hit.result_cache_hit);

  // A new offer on p1 changes f1's SUM and COUNT.
  uint64_t version_before = dataset.version();
  ASSERT_TRUE(svc.Mutate("mini", {{rdf::Term::Iri("o9"),
                                   rdf::Term::Iri("product"),
                                   rdf::Term::Iri("p1")},
                                  {rdf::Term::Iri("o9"),
                                   rdf::Term::Iri("price"),
                                   rdf::Term::Literal("1000",
                                                      rdf::kXsdInteger)}})
                  .ok());
  EXPECT_GT(dataset.version(), version_before);

  Response after = svc.Execute(session, QuerySpec{kSumByFeature, "mini"});
  ASSERT_TRUE(after.result.ok()) << after.result.status();
  EXPECT_FALSE(after.result_cache_hit);  // stale entry unreachable
  EXPECT_NE(after.result->ToSortedStrings(dataset.dict()),
            before.result->ToSortedStrings(dataset.dict()));
  // The mutated dataset answers match a fresh direct execution.
  EXPECT_EQ(after.result->ToSortedStrings(dataset.dict()),
            DirectResult(kSumByFeature, &dataset));

  // Unknown dataset: typed error.
  EXPECT_EQ(svc.Mutate("nope", {}).code(), Code::kNotFound);
}

analytics::BindingTable MakeTable(int rows) {
  analytics::BindingTable t({"a", "b"});
  for (int i = 0; i < rows; ++i) {
    t.AddRow({static_cast<rdf::TermId>(i + 1), static_cast<rdf::TermId>(i + 2)});
  }
  return t;
}

/// Measures one MakeTable(rows) entry's charged bytes via a throwaway
/// unlimited cache (TableBytes is an implementation detail).
uint64_t OneEntryBytes(int rows) {
  ResultCache probe(/*byte_budget=*/1ull << 30);
  probe.Put("probe", MakeTable(rows));
  return probe.bytes_used();
}

TEST(ResultCacheTest, EntryLargerThanBudgetIsNotCached) {
  uint64_t one = OneEntryBytes(64);
  ResultCache cache(one / 2);
  cache.Put("big", MakeTable(64));
  EXPECT_EQ(cache.Get("big"), nullptr);
  EXPECT_EQ(cache.bytes_used(), 0u);
  // Rejecting an oversized entry is not an eviction — nothing was evicted.
  EXPECT_EQ(cache.evictions(), 0u);

  // A smaller entry still fits afterwards: the oversize Put left no debris.
  ResultCache probe(1ull << 30);
  probe.Put("p", MakeTable(1));
  if (probe.bytes_used() <= one / 2) {
    cache.Put("small", MakeTable(1));
    EXPECT_NE(cache.Get("small"), nullptr);
  }
}

TEST(ResultCacheTest, ZeroBudgetCachesNothing) {
  ResultCache cache(0);
  cache.Put("k", MakeTable(1));
  EXPECT_EQ(cache.Get("k"), nullptr);
  EXPECT_EQ(cache.bytes_used(), 0u);
}

TEST(ResultCacheTest, LruEvictionOrderAcrossMixedVersions) {
  // Same fingerprint cached under two dataset versions plus a second
  // fingerprint — three equal-size entries, budget for two.
  uint64_t one = OneEntryBytes(8);
  ResultCache cache(2 * one + one / 2);
  std::string a = ResultCache::Key("fp1", "ds", 0);
  std::string b = ResultCache::Key("fp1", "ds", 1);
  std::string c = ResultCache::Key("fp2", "ds", 1);
  cache.Put(a, MakeTable(8));
  cache.Put(b, MakeTable(8));
  EXPECT_EQ(cache.evictions(), 0u);

  // Touch `a`: it becomes MRU, so the stale-version entry `b` is the
  // LRU victim when `c` arrives.
  EXPECT_NE(cache.Get(a), nullptr);
  cache.Put(c, MakeTable(8));
  EXPECT_EQ(cache.evictions(), 1u);
  EXPECT_EQ(cache.Get(b), nullptr);
  EXPECT_NE(cache.Get(a), nullptr);
  EXPECT_NE(cache.Get(c), nullptr);
  EXPECT_LE(cache.bytes_used(), cache.byte_budget());
}

TEST(ResultCacheTest, InvalidateDatasetReportsWhatItDropped) {
  ResultCache cache(1ull << 30);
  cache.Put(ResultCache::Key("fp1", "ds", 0), MakeTable(4));
  cache.Put(ResultCache::Key("fp1", "ds", 1), MakeTable(4));
  cache.Put(ResultCache::Key("fp1", "other", 0), MakeTable(4));
  uint64_t before = cache.bytes_used();

  ResultCache::Invalidated dropped = cache.InvalidateDataset("ds");
  EXPECT_EQ(dropped.entries, 2u);
  EXPECT_GT(dropped.bytes, 0u);
  EXPECT_EQ(cache.bytes_used(), before - dropped.bytes);
  EXPECT_EQ(cache.Get(ResultCache::Key("fp1", "ds", 0)), nullptr);
  EXPECT_NE(cache.Get(ResultCache::Key("fp1", "other", 0)), nullptr);

  ResultCache::Invalidated none = cache.InvalidateDataset("ds");
  EXPECT_EQ(none.entries, 0u);
  EXPECT_EQ(none.bytes, 0u);
}

TEST(ServiceTest, MutationMetricsCountInvalidations) {
  engine::Dataset dataset(BuildMiniGraph());
  QueryService svc(SmallOptions());
  svc.RegisterDataset("mini", &dataset);
  int session = svc.OpenSession("t");

  ASSERT_TRUE(
      svc.Execute(session, QuerySpec{kSumByFeature, "mini"}).result.ok());
  ASSERT_TRUE(svc.Mutate("mini", {{rdf::Term::Iri("o9"),
                                   rdf::Term::Iri("product"),
                                   rdf::Term::Iri("p1")}})
                  .ok());
  EXPECT_EQ(svc.metrics().invalidations(), 1u);
  EXPECT_GE(svc.metrics().invalidated_entries(), 1u);
  EXPECT_GT(svc.metrics().invalidated_bytes(), 0u);
  EXPECT_NE(svc.MetricsJson().find("\"invalidated_entries\""),
            std::string::npos);
}

std::string StoreDir(const std::string& name) {
  std::string dir = ::testing::TempDir() + "rapida_service_store_" + name;
  std::error_code ec;
  std::filesystem::remove_all(dir, ec);
  return dir;
}

TEST(ServiceTest, StoreServesAcrossServiceInstances) {
  ServiceOptions opts = SmallOptions();
  opts.store_dir = StoreDir("restart");

  std::vector<std::string> expected;
  {
    engine::Dataset dataset(BuildMiniGraph());
    QueryService svc(opts);
    svc.RegisterDataset("mini", &dataset);
    int session = svc.OpenSession("t");
    Response cold = svc.Execute(session, QuerySpec{kSumByFeature, "mini"});
    ASSERT_TRUE(cold.result.ok()) << cold.result.status();
    EXPECT_FALSE(cold.store_hit);
    expected = cold.result->ToSortedStrings(dataset.dict());
    ASSERT_NE(svc.store(), nullptr);
    EXPECT_GE(svc.store()->stats().puts, 1u);
  }

  // A new service over a *fresh* dataset built from the same triples: the
  // content hash matches, so the artifact serves with zero MapReduce jobs.
  engine::Dataset dataset(BuildMiniGraph());
  QueryService svc(opts);
  svc.RegisterDataset("mini", &dataset);
  int session = svc.OpenSession("t");
  Response warm = svc.Execute(session, QuerySpec{kSumByFeature, "mini"});
  ASSERT_TRUE(warm.result.ok()) << warm.result.status();
  EXPECT_TRUE(warm.store_hit);
  EXPECT_EQ(warm.sim_seconds, 0);
  EXPECT_EQ(warm.result->ToSortedStrings(dataset.dict()), expected);
  EXPECT_GE(svc.metrics().store_hits(), 1u);
}

TEST(ServiceTest, MutateMaintainsStoreArtifactsIncrementally) {
  ServiceOptions opts = SmallOptions();
  opts.store_dir = StoreDir("ivm");

  std::vector<engine::Dataset::TripleUpdate> delta = {
      {rdf::Term::Iri("o9"), rdf::Term::Iri("product"), rdf::Term::Iri("p1")},
      {rdf::Term::Iri("o9"), rdf::Term::Iri("price"),
       rdf::Term::Literal("1000", rdf::kXsdInteger)}};

  {
    engine::Dataset dataset(BuildMiniGraph());
    QueryService svc(opts);
    svc.RegisterDataset("mini", &dataset);
    int session = svc.OpenSession("t");
    ASSERT_TRUE(
        svc.Execute(session, QuerySpec{kSumByFeature, "mini"}).result.ok());

    // The mutation patches the group-aggregate artifact in place (COUNT and
    // SUM merge) instead of recomputing, and the patched rows answer the
    // next execution without a cluster.
    ASSERT_TRUE(svc.Mutate("mini", delta).ok());
    EXPECT_GE(svc.metrics().store_patched(), 1u);
    Response after = svc.Execute(session, QuerySpec{kSumByFeature, "mini"});
    ASSERT_TRUE(after.result.ok()) << after.result.status();
    EXPECT_TRUE(after.result_cache_hit || after.store_hit);
    EXPECT_EQ(after.result->ToSortedStrings(dataset.dict()),
              DirectResult(kSumByFeature, &dataset));
  }

  // Cross-restart: a fresh dataset with the delta already applied lands on
  // the *patched* artifact's content hash and serves from the store.
  rdf::Graph mutated = BuildMiniGraph();
  mutated.AddIri("o9", "product", "p1");
  mutated.AddInt("o9", "price", 1000);
  engine::Dataset dataset(std::move(mutated));
  QueryService svc(opts);
  svc.RegisterDataset("mini", &dataset);
  int session = svc.OpenSession("t");
  Response warm = svc.Execute(session, QuerySpec{kSumByFeature, "mini"});
  ASSERT_TRUE(warm.result.ok()) << warm.result.status();
  EXPECT_TRUE(warm.store_hit);
  EXPECT_EQ(warm.result->ToSortedStrings(dataset.dict()),
            DirectResult(kSumByFeature, &dataset));
}

TEST(ServiceTest, DeadlineExceededCancelsMidJob) {
  engine::Dataset dataset(BuildMiniGraph());
  QueryService svc(SmallOptions());
  svc.RegisterDataset("mini", &dataset);
  int session = svc.OpenSession("t");

  QuerySpec spec{kSumByFeature, "mini"};
  spec.deadline_s = 1e-9;  // expires before the first job phase
  Response r = svc.Execute(session, spec);
  ASSERT_FALSE(r.result.ok());
  EXPECT_EQ(r.result.status().code(), Code::kDeadlineExceeded);
  // Cancellation comes from inside the running workflow (a job phase), not
  // from a pre-execution queue check.
  EXPECT_NE(r.result.status().message().find("phase"), std::string::npos)
      << r.result.status();
  EXPECT_EQ(svc.metrics().deadline_exceeded(), 1u);

  // The same query without a deadline still completes.
  Response ok = svc.Execute(session, QuerySpec{kSumByFeature, "mini"});
  EXPECT_TRUE(ok.result.ok()) << ok.result.status();
}

TEST(SchedulerTest, LightSessionIsNotStarvedByHeavyOne) {
  JobScheduler sched((mr::ClusterConfig()));
  int heavy = sched.OpenSession("heavy");
  int light = sched.OpenSession("light");

  // Heavy session owns the cluster first: a 100-simulated-second job.
  mr::JobStats big;
  big.sim_seconds = 100;
  sched.Account(heavy, &big);
  EXPECT_DOUBLE_EQ(big.sched_sim_seconds, 100);  // no contention yet
  EXPECT_DOUBLE_EQ(big.sched_stretch, 1.0);

  // A 1-second query arriving under contention is stretched by its share
  // (2 sessions, equal weight -> 2x), NOT queued behind the heavy query
  // (FIFO would charge it 100 + 1 seconds).
  mr::JobStats small;
  small.sim_seconds = 1;
  sched.Account(light, &small);
  EXPECT_DOUBLE_EQ(small.sched_sim_seconds, 2);
  EXPECT_DOUBLE_EQ(small.sched_stretch, 2.0);

  // Neither starves: both sessions' work completes.
  EXPECT_DOUBLE_EQ(sched.Stats(heavy).busy_until_sim_s, 100);
  EXPECT_DOUBLE_EQ(sched.Stats(light).busy_until_sim_s, 2);
  EXPECT_DOUBLE_EQ(sched.MakespanSimSeconds(), 100);
  EXPECT_DOUBLE_EQ(sched.TotalDemandSimSeconds(), 101);
}

TEST(SchedulerTest, WeightsSkewTheShare) {
  JobScheduler sched((mr::ClusterConfig()));
  int heavy = sched.OpenSession("heavy", 1.0);
  int vip = sched.OpenSession("vip", 3.0);

  mr::JobStats big;
  big.sim_seconds = 100;
  sched.Account(heavy, &big);

  // Weight 3 against weight 1: the vip runs at 3/4 of the cluster, so a
  // 3-second demand takes 4 scheduled seconds.
  mr::JobStats job;
  job.sim_seconds = 3;
  sched.Account(vip, &job);
  EXPECT_DOUBLE_EQ(job.sched_sim_seconds, 4);
}

TEST(SchedulerTest, IntegratesAcrossBusyBoundaries) {
  JobScheduler sched((mr::ClusterConfig()));
  int a = sched.OpenSession("a");
  int b = sched.OpenSession("b");

  mr::JobStats ja;
  ja.sim_seconds = 10;
  sched.Account(a, &ja);  // a busy on [0, 10]

  // b demands 20: shares the cluster on [0, 10] at rate 1/2 (progress 5),
  // then runs alone for the remaining 15 -> finishes at 25.
  mr::JobStats jb;
  jb.sim_seconds = 20;
  sched.Account(b, &jb);
  EXPECT_DOUBLE_EQ(jb.sched_sim_seconds, 25);
  EXPECT_DOUBLE_EQ(sched.Stats(b).busy_until_sim_s, 25);
}

TEST(ServiceTest, BatchingSharesWorkAcrossSessions) {
  engine::Dataset solo_dataset(BuildMiniGraph());
  // Solo baseline demand.
  double solo_demand = 0;
  {
    QueryService svc(SmallOptions());
    svc.RegisterDataset("mini", &solo_dataset);
    Response r = svc.Execute(svc.OpenSession("solo"),
                             QuerySpec{kSumByFeature, "mini"});
    ASSERT_TRUE(r.result.ok()) << r.result.status();
    solo_demand = r.sim_seconds;
    ASSERT_GT(solo_demand, 0);
  }

  // Two sessions fire the same query concurrently with caching off: the
  // batch dedups to one execution whose cost is split between them.
  engine::Dataset dataset(BuildMiniGraph());
  std::vector<std::string> expected = DirectResult(kSumByFeature, &dataset);
  ServiceOptions opts = SmallOptions();
  opts.workers = 1;
  opts.enable_result_cache = false;
  opts.batch_window_ms = 100;  // generous window: no submission race
  QueryService svc(opts);
  svc.RegisterDataset("mini", &dataset);
  int s1 = svc.OpenSession("s1");
  int s2 = svc.OpenSession("s2");

  auto f1 = svc.Submit(s1, QuerySpec{kSumByFeature, "mini"});
  auto f2 = svc.Submit(s2, QuerySpec{kSumByFeatureReformatted, "mini"});
  ASSERT_TRUE(f1.ok()) << f1.status();
  ASSERT_TRUE(f2.ok()) << f2.status();
  Response r1 = f1->get();
  Response r2 = f2->get();
  ASSERT_TRUE(r1.result.ok()) << r1.result.status();
  ASSERT_TRUE(r2.result.ok()) << r2.result.status();
  EXPECT_EQ(r1.result->ToSortedStrings(dataset.dict()), expected);
  EXPECT_EQ(r2.result->ToSortedStrings(dataset.dict()), expected);

  // Both served from one batch; total demand ~ one solo execution, not
  // two.
  EXPECT_EQ(r1.batch_size, 2u);
  EXPECT_EQ(r2.batch_size, 2u);
  double total_demand = svc.scheduler().TotalDemandSimSeconds();
  EXPECT_LT(total_demand, 1.5 * solo_demand);
  EXPECT_GE(svc.metrics().batches(), 1u);
}

TEST(ServiceTest, CatalogMatchesDirectExecution) {
  std::map<std::string, std::unique_ptr<engine::Dataset>> datasets;
  datasets["bsbm"] = std::make_unique<engine::Dataset>(
      workload::GenerateBsbm(workload::BsbmConfig{}));
  datasets["chem"] = std::make_unique<engine::Dataset>(
      workload::GenerateChem2Bio(workload::ChemConfig{}));
  datasets["pubmed"] = std::make_unique<engine::Dataset>(
      workload::GeneratePubmed(workload::PubmedConfig{}));

  std::map<std::string, std::vector<std::string>> expected;
  for (const auto& q : workload::Catalog()) {
    expected[q.id] = DirectResult(q.sparql, datasets[q.dataset].get());
  }

  ServiceOptions opts;
  opts.workers = 4;
  QueryService svc(opts);
  for (auto& [name, ds] : datasets) svc.RegisterDataset(name, ds.get());
  int session = svc.OpenSession("catalog");

  for (const auto& q : workload::Catalog()) {
    Response cold = svc.Execute(session, QuerySpec{q.sparql, q.dataset});
    ASSERT_TRUE(cold.result.ok()) << q.id << ": " << cold.result.status();
    EXPECT_EQ(cold.result->ToSortedStrings(datasets[q.dataset]->dict()),
              expected[q.id])
        << q.id << " (cold)";
    Response hot = svc.Execute(session, QuerySpec{q.sparql, q.dataset});
    ASSERT_TRUE(hot.result.ok()) << q.id << ": " << hot.result.status();
    EXPECT_TRUE(hot.result_cache_hit) << q.id;
    EXPECT_EQ(hot.result->ToSortedStrings(datasets[q.dataset]->dict()),
              expected[q.id])
        << q.id << " (hot)";
  }

  // Every catalog query ran twice (cold + hot).
  std::string json = svc.MetricsJson();
  std::string want =
      "\"completed\":" + std::to_string(2 * workload::Catalog().size());
  EXPECT_NE(json.find(want), std::string::npos) << json;
}

}  // namespace
}  // namespace rapida::service
