#include "util/status.h"

#include <gtest/gtest.h>

#include "util/statusor.h"

namespace rapida {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), Code::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("bad input");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), Code::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad input");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad input");
}

TEST(StatusTest, AllFactoryCodes) {
  EXPECT_EQ(Status::NotFound("x").code(), Code::kNotFound);
  EXPECT_EQ(Status::AlreadyExists("x").code(), Code::kAlreadyExists);
  EXPECT_EQ(Status::OutOfRange("x").code(), Code::kOutOfRange);
  EXPECT_EQ(Status::Unimplemented("x").code(), Code::kUnimplemented);
  EXPECT_EQ(Status::Internal("x").code(), Code::kInternal);
  EXPECT_EQ(Status::ResourceExhausted("x").code(), Code::kResourceExhausted);
  EXPECT_EQ(Status::ParseError("x").code(), Code::kParseError);
  EXPECT_EQ(Status::DeadlineExceeded("x").code(), Code::kDeadlineExceeded);
  EXPECT_EQ(Status::Unavailable("x").code(), Code::kUnavailable);
  EXPECT_EQ(Status::DataLoss("x").code(), Code::kDataLoss);
  EXPECT_EQ(Status::DataLoss("bits rotted").ToString(),
            "DataLoss: bits rotted");
}

TEST(StatusTest, Equality) {
  EXPECT_EQ(Status::OK(), Status());
  EXPECT_EQ(Status::NotFound("a"), Status::NotFound("a"));
  EXPECT_FALSE(Status::NotFound("a") == Status::NotFound("b"));
  EXPECT_FALSE(Status::NotFound("a") == Status::Internal("a"));
}

Status Fails() { return Status::Internal("boom"); }
Status Succeeds() { return Status::OK(); }

Status UseReturnIfError(bool fail) {
  RAPIDA_RETURN_IF_ERROR(fail ? Fails() : Succeeds());
  return Status::OK();
}

TEST(StatusTest, ReturnIfErrorMacro) {
  EXPECT_TRUE(UseReturnIfError(false).ok());
  EXPECT_EQ(UseReturnIfError(true).code(), Code::kInternal);
}

StatusOr<int> MaybeInt(bool fail) {
  if (fail) return Status::NotFound("no int");
  return 42;
}

TEST(StatusOrTest, HoldsValue) {
  StatusOr<int> v = MaybeInt(false);
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, 42);
}

TEST(StatusOrTest, HoldsError) {
  StatusOr<int> v = MaybeInt(true);
  ASSERT_FALSE(v.ok());
  EXPECT_EQ(v.status().code(), Code::kNotFound);
}

StatusOr<int> UseAssignOrReturn(bool fail) {
  RAPIDA_ASSIGN_OR_RETURN(int x, MaybeInt(fail));
  return x + 1;
}

TEST(StatusOrTest, AssignOrReturnMacro) {
  StatusOr<int> ok = UseAssignOrReturn(false);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(*ok, 43);
  EXPECT_FALSE(UseAssignOrReturn(true).ok());
}

TEST(StatusOrTest, MoveOnlyValue) {
  StatusOr<std::unique_ptr<int>> v(std::make_unique<int>(7));
  ASSERT_TRUE(v.ok());
  std::unique_ptr<int> p = std::move(v).value();
  EXPECT_EQ(*p, 7);
}

}  // namespace
}  // namespace rapida
