// OPTIONAL / UNION end-to-end coverage: left star-join and union-arm
// semantics proven byte-identical across all four engines and the
// reference evaluator over the exec_threads x combine x kernels matrix,
// the analyzer's typed rejections for every out-of-scope shape, the
// printer round-trip the shrinker depends on, the normalizer's
// unbound-vs-empty-literal distinction, and a biased differential fuzz
// smoke pass (`--grammar=opt-union` in miniature).
#include <gtest/gtest.h>

#include <map>
#include <string>
#include <vector>

#include "analytics/analytical_query.h"
#include "analytics/reference_evaluator.h"
#include "engines/engines.h"
#include "plan/planner.h"
#include "sparql/parser.h"
#include "testing/differential.h"
#include "testing/normalize.h"
#include "testing/query_gen.h"
#include "util/random.h"

namespace rapida {
namespace {

using difftest::CompareNormalized;
using difftest::GenOptions;
using difftest::Normalize;
using difftest::NormalizedCell;
using difftest::NormalizedTable;

// ---------------------------------------------------------------------------
// Shared fixture graph. p5 has no feature and o3/o7 have prices below 100,
// so OPTIONAL tails genuinely leave cells unbound (the whole point).

rdf::Graph BuildGraph() {
  rdf::Graph g;
  const char* products[] = {"p1", "p2", "p3", "p4", "p5"};
  const char* types[] = {"PT1", "PT1", "PT1", "PT2", "PT2"};
  for (int i = 0; i < 5; ++i) {
    g.AddIri(products[i], rdf::kRdfType, types[i]);
    g.AddLit(products[i], "label", std::string("label") + products[i]);
  }
  g.AddIri("p1", "feature", "f1");
  g.AddIri("p1", "feature", "f2");
  g.AddIri("p2", "feature", "f1");
  g.AddIri("p3", "feature", "f3");
  g.AddIri("p4", "feature", "f2");
  // p5 has no feature.
  struct Offer {
    const char* id;
    const char* product;
    int price;
    const char* vendor;
  };
  Offer offers[] = {
      {"o1", "p1", 100, "v1"}, {"o2", "p1", 250, "v2"},
      {"o3", "p2", 80, "v1"},  {"o4", "p3", 300, "v3"},
      {"o5", "p4", 120, "v2"}, {"o6", "p5", 500, "v3"},
      {"o7", "p2", 90, "v2"},
  };
  for (const Offer& o : offers) {
    g.AddIri(o.id, "product", o.product);
    g.AddInt(o.id, "price", o.price);
    g.AddIri(o.id, "vendor", o.vendor);
  }
  g.AddIri("v1", "country", "DE");
  g.AddIri("v2", "country", "US");
  g.AddIri("v3", "country", "DE");
  return g;
}

// GROUP BY over an optionally-bound variable: p5's offers land in the
// unbound-feature group, so the result carries an UNBOUND group key.
constexpr char kOptGroupKey[] = R"(
  SELECT ?f (COUNT(?o) AS ?cnt) (SUM(?pr) AS ?total) {
    ?o <product> ?p . ?o <price> ?pr .
    OPTIONAL { ?p <feature> ?f }
  } GROUP BY ?f
)";

// Optional-local filter plus a post-filter over the optional variable:
// offers under 100 keep ?pr2 unbound, and the post-filter then drops them
// (comparison against unbound is an error, i.e. effective-false).
constexpr char kOptPostFilter[] = R"(
  SELECT ?p (COUNT(?o) AS ?cnt) {
    ?o <product> ?p . ?o <vendor> ?v .
    OPTIONAL { ?o <price> ?pr2 . FILTER(?pr2 >= 100) }
    FILTER(?pr2 <= 300)
  } GROUP BY ?p
)";

// Two OPTIONAL tails off different stars of the required pattern.
constexpr char kOptTwoTails[] = R"(
  SELECT ?v (COUNT(?o) AS ?cnt) (MIN(?pr) AS ?mn) {
    ?o <product> ?p . ?o <price> ?pr . ?o <vendor> ?v .
    OPTIONAL { ?p <feature> ?f }
    OPTIONAL { ?v <country> ?c }
  } GROUP BY ?v
)";

// Two constant-pinned union arms over the same star.
constexpr char kUnionTwoArms[] = R"(
  SELECT ?p (COUNT(?o) AS ?cnt) (SUM(?pr) AS ?total) {
    ?o <product> ?p . ?o <price> ?pr .
    { ?o <vendor> <v1> } UNION { ?o <vendor> <v2> }
  } GROUP BY ?p
)";

// Three arms: a fresh-variable arm, a star-extending arm with its own
// filter, and a constant-object arm; plus a group OPTIONAL that join
// distribution must replicate into every branch.
constexpr char kUnionThreeArms[] = R"(
  SELECT ?v (COUNT(?o) AS ?cnt) {
    ?o <product> ?p . ?o <vendor> ?v .
    OPTIONAL { ?p <feature> ?f }
    { ?p <label> ?l }
    UNION { ?o <price> ?pr . FILTER(?pr >= 100) }
    UNION { ?p <feature> <f1> }
  } GROUP BY ?v
)";

const char* AllQueries[] = {kOptGroupKey, kOptPostFilter, kOptTwoTails,
                            kUnionTwoArms, kUnionThreeArms};

NormalizedTable ReferenceResult(const std::string& query_text,
                                rdf::Graph* graph) {
  auto parsed = sparql::ParseQuery(query_text);
  EXPECT_TRUE(parsed.ok()) << parsed.status();
  analytics::ReferenceEvaluator ref(graph);
  auto expected = ref.Evaluate(**parsed);
  EXPECT_TRUE(expected.ok()) << expected.status();
  return Normalize(*expected, graph->dict());
}

// ---------------------------------------------------------------------------
// Semantics matrix: every engine must reproduce the reference multiset for
// every query at threads {1,4,8} x combine on/off x kernels on/off.

TEST(OptionalUnionMatrixTest, AllEnginesMatchReferenceAcrossMatrix) {
  rdf::Graph ref_graph = BuildGraph();
  for (const char* query_text : AllQueries) {
    NormalizedTable expected = ReferenceResult(query_text, &ref_graph);
    ASSERT_FALSE(expected.rows.empty()) << query_text;

    auto parsed = sparql::ParseQuery(query_text);
    ASSERT_TRUE(parsed.ok()) << parsed.status();
    auto analyzed = analytics::AnalyzeQuery(**parsed);
    ASSERT_TRUE(analyzed.ok()) << analyzed.status();

    for (bool kernels : {true, false}) {
      for (bool combine : {true, false}) {
        engine::EngineOptions options;
        options.vectorized_kernels = kernels;
        options.partial_aggregation = combine;
        for (int threads : {1, 4, 8}) {
          engine::Dataset dataset(BuildGraph());
          mr::ClusterConfig config;
          config.exec_threads = threads;
          config.exec_split_bytes = 4 * 1024;
          mr::Cluster cluster(config, &dataset.dfs());
          for (const auto& eng : engine::MakeAllEngines(options)) {
            engine::ExecStats stats;
            auto result =
                eng->Execute(*analyzed, &dataset, &cluster, &stats);
            std::string label = eng->name() +
                                " threads=" + std::to_string(threads) +
                                " combine=" + (combine ? "on" : "off") +
                                " kernels=" + (kernels ? "on" : "off");
            ASSERT_TRUE(result.ok()) << label << ": " << result.status();
            std::string diff = CompareNormalized(
                expected, Normalize(*result, dataset.dict()));
            EXPECT_EQ(diff, "") << label << " on:\n" << query_text;
          }
        }
      }
    }
  }
}

// The plan IR must promise exactly the cycles the engine then spends, on
// the new left-join / union node shapes too.
TEST(OptionalUnionMatrixTest, PlanCyclesEstimatedEqualsExecuted) {
  for (const char* query_text : AllQueries) {
    auto parsed = sparql::ParseQuery(query_text);
    ASSERT_TRUE(parsed.ok()) << parsed.status();
    auto analyzed = analytics::AnalyzeQuery(**parsed);
    ASSERT_TRUE(analyzed.ok()) << analyzed.status();
    for (int threads : {1, 8}) {
      engine::Dataset dataset(BuildGraph());
      mr::ClusterConfig config;
      config.exec_threads = threads;
      mr::Cluster cluster(config, &dataset.dfs());
      engine::EngineOptions options;
      for (const auto& eng : engine::MakeAllEngines(options)) {
        engine::ExecStats stats;
        auto result = eng->Execute(*analyzed, &dataset, &cluster, &stats);
        ASSERT_TRUE(result.ok()) << eng->name() << ": " << result.status();
        auto physical = plan::PlanForEngine(eng->name(), *analyzed,
                                            &dataset, options);
        ASSERT_TRUE(physical.ok()) << eng->name() << ": "
                                   << physical.status();
        EXPECT_EQ(physical->EstimatedCycles(), stats.workflow.NumCycles())
            << eng->name() << " threads=" << threads << " on:\n"
            << query_text;
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Analyzer rejections: every out-of-scope OPTIONAL/UNION shape must fail
// with a Status naming the construct (satellite: typed rejection tests).

void ExpectReject(const std::string& query_text,
                  const std::string& substring) {
  auto parsed = sparql::ParseQuery(query_text);
  ASSERT_TRUE(parsed.ok()) << parsed.status() << "\n" << query_text;
  auto analyzed = analytics::AnalyzeQuery(**parsed);
  ASSERT_FALSE(analyzed.ok()) << "analyzer accepted:\n" << query_text;
  EXPECT_NE(analyzed.status().ToString().find(substring), std::string::npos)
      << "status was: " << analyzed.status().ToString()
      << "\nexpected to mention: " << substring;
}

TEST(OptionalUnionRejectTest, OptionalInsideOptional) {
  ExpectReject(R"(
    SELECT ?p (COUNT(?o) AS ?c) {
      ?o <product> ?p .
      OPTIONAL { ?p <feature> ?f . OPTIONAL { ?p <label> ?l } }
    } GROUP BY ?p
  )", "OPTIONAL nested inside OPTIONAL is outside the analytical subset");
}

TEST(OptionalUnionRejectTest, UnionInsideOptional) {
  ExpectReject(R"(
    SELECT ?p (COUNT(?o) AS ?c) {
      ?o <product> ?p .
      OPTIONAL { ?p <feature> ?f .
                 { ?p <label> ?l } UNION { ?p a ?t } }
    } GROUP BY ?p
  )", "UNION nested inside OPTIONAL is outside the analytical subset");
}

TEST(OptionalUnionRejectTest, SubqueryInsideOptional) {
  ExpectReject(R"(
    SELECT ?p (COUNT(?o) AS ?c) {
      ?o <product> ?p .
      OPTIONAL { { SELECT ?x (COUNT(?y) AS ?cy) { ?x <feature> ?y }
                   GROUP BY ?x } }
    } GROUP BY ?p
  )", "subqueries inside OPTIONAL are outside the analytical subset");
}

TEST(OptionalUnionRejectTest, EmptyOptional) {
  ExpectReject(R"(
    SELECT ?p (COUNT(?o) AS ?c) {
      ?o <product> ?p .
      OPTIONAL { }
    } GROUP BY ?p
  )", "an OPTIONAL block needs at least one triple pattern");
}

TEST(OptionalUnionRejectTest, OptionalMustBeSingleStar) {
  ExpectReject(R"(
    SELECT ?p (COUNT(?o) AS ?c) {
      ?o <product> ?p .
      OPTIONAL { ?p <feature> ?f . ?f <label> ?fl }
    } GROUP BY ?p
  )", "an OPTIONAL block must be a single subject-rooted star");
}

TEST(OptionalUnionRejectTest, OptionalSubjectMustBeBound) {
  ExpectReject(R"(
    SELECT ?p (COUNT(?o) AS ?c) {
      ?o <product> ?p .
      OPTIONAL { ?z <feature> ?f }
    } GROUP BY ?p
  )", "OPTIONAL subject ?z must be bound by the required graph pattern");
}

TEST(OptionalUnionRejectTest, OptionalObjectVarsMustBeFresh) {
  ExpectReject(R"(
    SELECT ?p (COUNT(?o) AS ?c) {
      ?o <product> ?p . ?p <feature> ?f .
      OPTIONAL { ?p <label> ?f }
    } GROUP BY ?p
  )", "OPTIONAL variable ?f is already bound outside its OPTIONAL block");
}

TEST(OptionalUnionRejectTest, OptionalFilterMustBeLocal) {
  ExpectReject(R"(
    SELECT ?p (COUNT(?o) AS ?c) {
      ?o <product> ?p . ?o <price> ?pr .
      OPTIONAL { ?p <feature> ?f . FILTER(?pr >= 100) }
    } GROUP BY ?p
  )", "OPTIONAL FILTER variable ?pr is not bound inside the OPTIONAL block");
}

TEST(OptionalUnionRejectTest, EmptyUnionArm) {
  ExpectReject(R"(
    SELECT (COUNT(?x) AS ?c) {
      { } UNION { ?a <feature> ?x }
    }
  )", "a UNION arm (together with the required pattern) needs at least "
      "one triple pattern");
}

TEST(OptionalUnionRejectTest, SingleArmUnionAst) {
  // The parser can never produce a 1-arm union; build one by mutating a
  // parsed AST to prove the analyzer still guards the invariant.
  auto parsed = sparql::ParseQuery(R"(
    SELECT (COUNT(?x) AS ?c) {
      ?a <label> ?l .
      { ?a <feature> ?x } UNION { ?a a ?x }
    }
  )");
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  (*parsed)->where.unions.pop_back();
  auto analyzed = analytics::AnalyzeQuery(**parsed);
  ASSERT_FALSE(analyzed.ok());
  EXPECT_NE(analyzed.status().ToString().find(
                "a UNION needs at least two arms"),
            std::string::npos)
      << analyzed.status().ToString();
}

TEST(OptionalUnionRejectTest, UnionInsideUnionArm) {
  ExpectReject(R"(
    SELECT (COUNT(?x) AS ?c) {
      ?a <label> ?l .
      { { ?a <feature> ?x } UNION { ?a a ?x } } UNION { ?a <vendor> ?x }
    }
  )", "UNION nested inside a UNION arm is outside the analytical subset");
}

TEST(OptionalUnionRejectTest, SubqueryInsideUnionArm) {
  ExpectReject(R"(
    SELECT (COUNT(?x) AS ?c) {
      ?a <label> ?x .
      { { SELECT ?b (COUNT(?y) AS ?cy) { ?b <feature> ?y } GROUP BY ?b } }
      UNION { ?a a ?t }
    }
  )", "subqueries inside UNION arms are outside the analytical subset");
}

TEST(OptionalUnionRejectTest, AggregateArgBoundInEveryArm) {
  ExpectReject(R"(
    SELECT (SUM(?pr) AS ?s) {
      ?o <product> ?p .
      { ?o <price> ?pr } UNION { ?o <vendor> ?v }
    }
  )", "aggregate argument ?pr is not bound in every UNION arm");
}

TEST(OptionalUnionRejectTest, GroupKeyBoundInEveryArm) {
  ExpectReject(R"(
    SELECT ?v (COUNT(?o) AS ?c) {
      ?o <product> ?p .
      { ?o <vendor> ?v } UNION { ?o <price> ?pr }
    } GROUP BY ?v
  )", "GROUP BY variable ?v is not bound in every UNION arm");
}

TEST(OptionalUnionRejectTest, VariableTypeObject) {
  // Type objects live inside the triple-group property key, so `a ?t`
  // has no key to match — the engines would silently return nothing
  // while the reference evaluator answers. Reject at analysis instead.
  ExpectReject(R"(
    SELECT ?t (COUNT(?p) AS ?c) {
      ?p a ?t . ?p <label> ?l .
    } GROUP BY ?t
  )", "rdf:type with a variable object is outside the analytical subset");
}

TEST(OptionalUnionRejectTest, TopLevelOptionalBesideSubselects) {
  ExpectReject(R"(
    SELECT ?x ?c {
      { SELECT ?x (COUNT(?y) AS ?c) { ?x <feature> ?y } GROUP BY ?x }
      OPTIONAL { ?x <label> ?l }
    }
  )", "multi-grouping analytical queries must contain only sub-SELECTs");
}

TEST(OptionalUnionRejectTest, SecondUnionChainIsAParseError) {
  auto parsed = sparql::ParseQuery(R"(
    SELECT (COUNT(?x) AS ?c) {
      { ?a <p> ?x } UNION { ?a <q> ?x } .
      { ?a <r> ?x } UNION { ?a <s> ?x }
    }
  )");
  ASSERT_FALSE(parsed.ok());
  EXPECT_NE(parsed.status().ToString().find(
                "only one UNION group per graph pattern"),
            std::string::npos)
      << parsed.status().ToString();
}

// ---------------------------------------------------------------------------
// Printer round-trip: the shrinker clones queries through
// ToString/ParseQuery, so both constructs must survive the loop exactly.

TEST(OptionalUnionPrinterTest, HandwrittenQueriesRoundTrip) {
  for (const char* query_text : AllQueries) {
    auto parsed = sparql::ParseQuery(query_text);
    ASSERT_TRUE(parsed.ok()) << parsed.status();
    std::string printed = (*parsed)->ToString();
    auto reparsed = sparql::ParseQuery(printed);
    ASSERT_TRUE(reparsed.ok()) << reparsed.status() << "\n" << printed;
    EXPECT_EQ((*reparsed)->ToString(), printed);
  }
}

TEST(OptionalUnionPrinterTest, GeneratedOptUnionQueriesRoundTrip) {
  GenOptions gen;
  gen.optional_bias = 1.0;
  gen.union_bias = 1.0;
  for (uint64_t seed = 1; seed <= 25; ++seed) {
    difftest::FuzzCase c = difftest::MakeFuzzCase(seed, gen);
    std::string printed = c.query->ToString();
    auto reparsed = sparql::ParseQuery(printed);
    ASSERT_TRUE(reparsed.ok())
        << "seed " << seed << ": " << reparsed.status() << "\n" << printed;
    EXPECT_EQ((*reparsed)->ToString(), printed) << "seed " << seed;
  }
}

// ---------------------------------------------------------------------------
// Normalizer: unbound is a structural state, not the string "UNBOUND" or
// the empty literal (satellite: NULL-aware multiset compare).

TEST(UnboundNormalizeTest, UnboundDistinctFromEmptyLiteral) {
  rdf::Graph g;
  g.AddLit("s", "p", "");
  rdf::TermId empty_lit = g.triples()[0].o;
  ASSERT_NE(empty_lit, rdf::kInvalidTermId);

  analytics::BindingTable unbound_table({"x"});
  unbound_table.AddRow({rdf::kInvalidTermId});
  analytics::BindingTable empty_table({"x"});
  empty_table.AddRow({empty_lit});

  NormalizedTable nu = Normalize(unbound_table, g.dict());
  NormalizedTable ne = Normalize(empty_table, g.dict());
  ASSERT_EQ(nu.rows.size(), 1u);
  EXPECT_TRUE(nu.rows[0][0].is_unbound);
  EXPECT_FALSE(ne.rows[0][0].is_unbound);
  EXPECT_NE(CompareNormalized(nu, ne), "");
  EXPECT_NE(CompareNormalized(ne, nu), "");
  EXPECT_EQ(CompareNormalized(nu, nu), "");
}

TEST(UnboundNormalizeTest, UnboundDistinctFromUnboundStringLiteral) {
  // A literal whose text is "UNBOUND" must not collide with a real
  // unbound cell (the old normalizer represented unbound by that string).
  rdf::Graph g;
  g.AddLit("s", "p", "UNBOUND");
  rdf::TermId lit = g.triples()[0].o;

  analytics::BindingTable a({"x"});
  a.AddRow({rdf::kInvalidTermId});
  analytics::BindingTable b({"x"});
  b.AddRow({lit});
  EXPECT_NE(CompareNormalized(Normalize(a, g.dict()),
                              Normalize(b, g.dict())), "");
}

TEST(UnboundNormalizeTest, UnboundSortsFirstAndSerializesAsU) {
  rdf::Graph g;
  g.AddLit("s", "p", "zzz");
  g.AddInt("s", "q", 7);
  rdf::TermId text = g.triples()[0].o;
  rdf::TermId num = g.triples()[1].o;

  analytics::BindingTable t({"x"});
  t.AddRow({text});
  t.AddRow({num});
  t.AddRow({rdf::kInvalidTermId});
  NormalizedTable n = Normalize(t, g.dict());
  ASSERT_EQ(n.rows.size(), 3u);
  EXPECT_TRUE(n.rows[0][0].is_unbound);
  EXPECT_TRUE(n.rows[1][0].is_number);
  EXPECT_FALSE(n.rows[2][0].is_number);

  std::string serialized = difftest::SerializeNormalized(n);
  EXPECT_NE(serialized.find("\tU\n"), std::string::npos) << serialized;
  NormalizedTable back;
  ASSERT_TRUE(difftest::ParseNormalized(serialized, &back));
  EXPECT_EQ(CompareNormalized(n, back), "");
}

// ---------------------------------------------------------------------------
// Fuzz smoke: the biased grammar actually produces both constructs, and a
// slice of the opt-union corpus passes the full differential check (the
// 100-seed run lives in scripts/check.sh; this keeps a canary in ctest).

TEST(OptUnionFuzzSmokeTest, BiasedGrammarGeneratesBothConstructs) {
  GenOptions gen;
  gen.optional_bias = 1.0;
  gen.union_bias = 1.0;
  int with_optional = 0;
  int with_union = 0;
  for (uint64_t seed = 1; seed <= 30; ++seed) {
    difftest::FuzzCase c = difftest::MakeFuzzCase(seed, gen);
    std::string text = c.query->ToString();
    if (text.find("OPTIONAL") != std::string::npos) ++with_optional;
    if (text.find("UNION") != std::string::npos) ++with_union;
  }
  EXPECT_GE(with_optional, 10);
  EXPECT_GE(with_union, 10);
}

TEST(OptUnionFuzzSmokeTest, GrammarKnobsLeaveDataStreamUnchanged) {
  // The dataset and triples for a seed must not depend on grammar knobs,
  // or `--grammar=opt-union --seed=N` repro lines would lie.
  GenOptions biased;
  biased.optional_bias = 1.0;
  biased.union_bias = 1.0;
  for (uint64_t seed = 1; seed <= 5; ++seed) {
    difftest::FuzzCase a = difftest::MakeFuzzCase(seed);
    difftest::FuzzCase b = difftest::MakeFuzzCase(seed, biased);
    EXPECT_EQ(a.dataset, b.dataset) << seed;
    EXPECT_EQ(a.triples, b.triples) << seed;
  }
}

TEST(OptUnionFuzzSmokeTest, OptUnionCorpusSliceIsGreen) {
  GenOptions gen;
  gen.optional_bias = 0.70;
  gen.union_bias = 0.50;
  difftest::DiffOptions opts;
  for (uint64_t seed = 1; seed <= 8; ++seed) {
    difftest::FuzzCase c = difftest::MakeFuzzCase(seed, gen);
    difftest::DiffFailure f = difftest::RunDifferential(c, opts);
    EXPECT_FALSE(f.failed) << "seed " << seed << ": " << f.ToString()
                           << "\n" << c.query->ToString();
  }
}

}  // namespace
}  // namespace rapida
