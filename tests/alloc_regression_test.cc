// Allocation regression gate for the MapReduce hot path: a representative
// shuffle+reduce job must stay far below one heap allocation per record.
// The columnar-store record representation makes the emit/shuffle/sort/
// reduce loops allocation-free per record (buffer growth, task vectors and
// thread bookkeeping amortize away), so the whole job costs O(tasks + keys)
// allocations, not O(records). The std::string-backed representation this
// replaced paid 2+ allocations per record at emit alone once payloads
// exceed the small-string buffer — an order of magnitude over this budget.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <new>
#include <string>
#include <vector>

#include "mapreduce/cluster.h"
#include "mapreduce/dfs.h"
#include "util/string_util.h"

namespace {

std::atomic<size_t> g_allocations{0};
std::atomic<bool> g_counting{false};

void* CountedAlloc(size_t n) {
  if (g_counting.load(std::memory_order_relaxed)) {
    g_allocations.fetch_add(1, std::memory_order_relaxed);
  }
  void* p = std::malloc(n == 0 ? 1 : n);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

}  // namespace

void* operator new(size_t n) { return CountedAlloc(n); }
void* operator new[](size_t n) { return CountedAlloc(n); }
void* operator new(size_t n, const std::nothrow_t&) noexcept {
  return std::malloc(n == 0 ? 1 : n);
}
void* operator new[](size_t n, const std::nothrow_t&) noexcept {
  return std::malloc(n == 0 ? 1 : n);
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, size_t) noexcept { std::free(p); }
void operator delete[](void* p, size_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}
void operator delete[](void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}

namespace rapida::mr {
namespace {

TEST(AllocRegressionTest, ReduceJobStaysUnderPerRecordBudget) {
  constexpr int kRecords = 20000;
  constexpr int kDistinctKeys = 100;

  Dfs dfs;
  RecordBatch input;
  for (int i = 0; i < kRecords; ++i) {
    // Keys and values longer than any small-string buffer, so a
    // string-per-record representation could not hide behind SSO.
    input.Add("key-" + std::to_string(i % kDistinctKeys) +
                  "-padded-well-beyond-sso",
              "value-payload-padded-well-beyond-sso-" + std::to_string(i));
  }
  ASSERT_TRUE(dfs.Write("input", std::move(input)).ok());

  Cluster cluster(ClusterConfig{}, &dfs);
  JobConfig job;
  job.name = "alloc-regression";
  job.inputs = {"input"};
  job.output = "out";
  job.map = [](const Record& r, int, MapContext* ctx) {
    ctx->Emit(r.key, r.value);
  };
  job.reduce = [](std::string_view key, const ValueSpan& values,
                  ReduceContext* ctx) {
    ctx->Emit(key, std::to_string(values.size()));
  };

  g_allocations.store(0, std::memory_order_relaxed);
  g_counting.store(true, std::memory_order_seq_cst);
  auto stats = cluster.Run(job);
  g_counting.store(false, std::memory_order_seq_cst);
  ASSERT_TRUE(stats.ok()) << stats.status();
  EXPECT_EQ(stats->input_records, static_cast<uint64_t>(kRecords));
  EXPECT_EQ(stats->output_records, static_cast<uint64_t>(kDistinctKeys));

  size_t allocations = g_allocations.load(std::memory_order_relaxed);
  // Generous pinned budget: well under one allocation per two records,
  // while leaving lots of headroom for task/thread/closure bookkeeping.
  // The per-record-string representation costs several times kRecords.
  EXPECT_LT(allocations, static_cast<size_t>(kRecords) / 2)
      << "hot path regressed to per-record heap allocation ("
      << allocations << " allocations for " << kRecords << " records)";
}

// Same gate for a join-shaped job: two tagged inputs, batch map emitting
// tag-prefixed values through reused buffers, and a cross-product reduce
// whose side pools live in reduce TaskState so they warm up once per task
// instead of reallocating per key group. This mirrors the shape of the
// repartition-join batch kernel in RelationalOps::Join.
TEST(AllocRegressionTest, JoinShapedBatchJobStaysUnderPerRecordBudget) {
  constexpr int kRowsPerSide = 10000;
  constexpr int kDistinctKeys = 2000;  // 5 rows per key per side.

  Dfs dfs;
  for (int side = 0; side < 2; ++side) {
    RecordBatch input;
    for (int i = 0; i < kRowsPerSide; ++i) {
      // Comma-encoded rows whose first field is the join key; padded with
      // wide constants so emitted values never fit a small-string buffer.
      input.Add("", std::to_string(i % kDistinctKeys) + ",900000000" +
                        std::to_string(side) + ",910000000,920000000," +
                        std::to_string(i));
    }
    ASSERT_TRUE(
        dfs.Write(side == 0 ? "left" : "right", std::move(input)).ok());
  }

  Cluster cluster(ClusterConfig{}, &dfs);
  JobConfig job;
  job.name = "alloc-regression-join";
  job.inputs = {"left", "right"};
  job.output = "out";
  job.map_batch = [](const TaggedRecord* records, size_t count,
                     MapContext* ctx) {
    std::string val_buf;
    for (size_t i = 0; i < count; ++i) {
      std::string_view value = records[i].record->value;
      std::string_view key = value.substr(0, value.find(','));
      val_buf.assign(records[i].tag == 0 ? "L|" : "R|");
      val_buf.append(value);
      ctx->Emit(key, val_buf);
    }
  };
  job.reduce = [](std::string_view key, const ValueSpan& values,
                  ReduceContext* ctx) {
    // Flat side pools: contiguous bytes plus end offsets, like the batch
    // join kernel's CSR side buffers.
    struct JoinScratch {
      std::string left_bytes, right_bytes;
      std::vector<uint32_t> left_end, right_end;
      std::string out_buf;
    };
    auto* s = ctx->TaskState<JoinScratch>();
    s->left_bytes.clear();
    s->right_bytes.clear();
    s->left_end.clear();
    s->right_end.clear();
    for (const auto& v : values) {
      if (v.size() < 2) continue;
      const bool left = v[0] == 'L';
      std::string& bytes = left ? s->left_bytes : s->right_bytes;
      bytes.append(v.substr(2));
      (left ? s->left_end : s->right_end)
          .push_back(static_cast<uint32_t>(bytes.size()));
    }
    for (size_t li = 0; li < s->left_end.size(); ++li) {
      const uint32_t lb = li == 0 ? 0 : s->left_end[li - 1];
      for (size_t ri = 0; ri < s->right_end.size(); ++ri) {
        const uint32_t rb = ri == 0 ? 0 : s->right_end[ri - 1];
        s->out_buf.assign(s->left_bytes, lb, s->left_end[li] - lb);
        s->out_buf += '|';
        s->out_buf.append(s->right_bytes, rb, s->right_end[ri] - rb);
        ctx->Emit(key, s->out_buf);
      }
    }
  };
  job.reduce_parallel_safe = true;

  g_allocations.store(0, std::memory_order_relaxed);
  g_counting.store(true, std::memory_order_seq_cst);
  auto stats = cluster.Run(job);
  g_counting.store(false, std::memory_order_seq_cst);
  ASSERT_TRUE(stats.ok()) << stats.status();
  constexpr uint64_t kInputRecords = 2 * kRowsPerSide;
  EXPECT_EQ(stats->input_records, kInputRecords);
  // 5x5 cross product per key.
  EXPECT_EQ(stats->output_records, static_cast<uint64_t>(kDistinctKeys) * 25);

  size_t allocations = g_allocations.load(std::memory_order_relaxed);
  // The batch map reuses one value buffer and the reduce reuses per-task
  // scratch, so the whole join costs O(tasks + buffer growth) allocations.
  EXPECT_LT(allocations, static_cast<size_t>(kInputRecords) / 2)
      << "join hot path regressed to per-record heap allocation ("
      << allocations << " allocations for " << kInputRecords << " records)";
}

}  // namespace
}  // namespace rapida::mr
