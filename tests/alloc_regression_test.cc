// Allocation regression gate for the MapReduce hot path: a representative
// shuffle+reduce job must stay far below one heap allocation per record.
// The arena-backed record representation makes the emit/shuffle/sort/reduce
// loops allocation-free per record (arena block growth, task vectors and
// thread bookkeeping amortize away), so the whole job costs O(tasks + keys)
// allocations, not O(records). The std::string-backed representation this
// replaced paid 2+ allocations per record at emit alone once payloads
// exceed the small-string buffer — an order of magnitude over this budget.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <new>
#include <string>

#include "mapreduce/cluster.h"
#include "mapreduce/dfs.h"
#include "util/string_util.h"

namespace {

std::atomic<size_t> g_allocations{0};
std::atomic<bool> g_counting{false};

void* CountedAlloc(size_t n) {
  if (g_counting.load(std::memory_order_relaxed)) {
    g_allocations.fetch_add(1, std::memory_order_relaxed);
  }
  void* p = std::malloc(n == 0 ? 1 : n);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

}  // namespace

void* operator new(size_t n) { return CountedAlloc(n); }
void* operator new[](size_t n) { return CountedAlloc(n); }
void* operator new(size_t n, const std::nothrow_t&) noexcept {
  return std::malloc(n == 0 ? 1 : n);
}
void* operator new[](size_t n, const std::nothrow_t&) noexcept {
  return std::malloc(n == 0 ? 1 : n);
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, size_t) noexcept { std::free(p); }
void operator delete[](void* p, size_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}
void operator delete[](void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}

namespace rapida::mr {
namespace {

TEST(AllocRegressionTest, ReduceJobStaysUnderPerRecordBudget) {
  constexpr int kRecords = 20000;
  constexpr int kDistinctKeys = 100;

  Dfs dfs;
  RecordBatch input;
  for (int i = 0; i < kRecords; ++i) {
    // Keys and values longer than any small-string buffer, so a
    // string-per-record representation could not hide behind SSO.
    input.Add("key-" + std::to_string(i % kDistinctKeys) +
                  "-padded-well-beyond-sso",
              "value-payload-padded-well-beyond-sso-" + std::to_string(i));
  }
  ASSERT_TRUE(dfs.Write("input", std::move(input)).ok());

  Cluster cluster(ClusterConfig{}, &dfs);
  JobConfig job;
  job.name = "alloc-regression";
  job.inputs = {"input"};
  job.output = "out";
  job.map = [](const Record& r, int, MapContext* ctx) {
    ctx->Emit(r.key, r.value);
  };
  job.reduce = [](std::string_view key, const ValueSpan& values,
                  ReduceContext* ctx) {
    ctx->Emit(key, std::to_string(values.size()));
  };

  g_allocations.store(0, std::memory_order_relaxed);
  g_counting.store(true, std::memory_order_seq_cst);
  auto stats = cluster.Run(job);
  g_counting.store(false, std::memory_order_seq_cst);
  ASSERT_TRUE(stats.ok()) << stats.status();
  EXPECT_EQ(stats->input_records, static_cast<uint64_t>(kRecords));
  EXPECT_EQ(stats->output_records, static_cast<uint64_t>(kDistinctKeys));

  size_t allocations = g_allocations.load(std::memory_order_relaxed);
  // Generous pinned budget: well under one allocation per two records,
  // while leaving lots of headroom for task/thread/closure bookkeeping.
  // The per-record-string representation costs several times kRecords.
  EXPECT_LT(allocations, static_cast<size_t>(kRecords) / 2)
      << "hot path regressed to per-record heap allocation ("
      << allocations << " allocations for " << kRecords << " records)";
}

}  // namespace
}  // namespace rapida::mr
