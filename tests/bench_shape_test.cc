// Regression guard for the paper's headline *shapes*: the relative
// ordering of the four systems (simulated time and cycle counts) on the
// key query classes must hold at test scale. If a cost-model or planner
// change breaks who-beats-whom, this fails before the benches do.
#include <gtest/gtest.h>

#include "analytics/analytical_query.h"
#include "engines/engines.h"
#include "sparql/parser.h"
#include "workload/bsbm.h"
#include "workload/catalog.h"
#include "workload/pubmed.h"

namespace rapida {
namespace {

struct EngineRun {
  double sim_seconds = 0;
  int cycles = 0;
  uint64_t peak_dfs = 0;
};

std::map<std::string, EngineRun> RunAll(engine::Dataset* dataset,
                                        const std::string& query_id,
                                        int nodes) {
  std::map<std::string, EngineRun> out;
  auto cq = workload::FindQuery(query_id);
  EXPECT_TRUE(cq.ok());
  auto parsed = sparql::ParseQuery((*cq)->sparql);
  EXPECT_TRUE(parsed.ok());
  auto query = analytics::AnalyzeQuery(**parsed);
  EXPECT_TRUE(query.ok());
  mr::ClusterConfig cfg;
  cfg.num_nodes = nodes;
  // Scale bytes so data costs matter relative to per-cycle overhead, as
  // in the benches.
  cfg.bytes_scale = 10000.0;
  for (const auto& eng : engine::MakeAllEngines()) {
    mr::Cluster cluster(cfg, &dataset->dfs());
    dataset->dfs().ResetPeak();
    engine::ExecStats stats;
    auto result = eng->Execute(*query, dataset, &cluster, &stats);
    EXPECT_TRUE(result.ok()) << eng->name() << ": " << result.status();
    out[eng->name()] = EngineRun{stats.workflow.TotalSimSeconds(),
                                 stats.workflow.NumCycles(),
                                 dataset->dfs().PeakStoredBytes()};
  }
  return out;
}

TEST(BenchShapeTest, Mg1OrderingHoldsEndToEnd) {
  workload::BsbmConfig cfg;
  cfg.num_products = 600;
  engine::Dataset dataset(workload::GenerateBsbm(cfg));
  auto runs = RunAll(&dataset, "MG1", 10);

  // Paper Fig. 8(a): R.A. < RAPID+ < Hive(MQO) < Hive(Naive).
  EXPECT_LT(runs["RAPIDAnalytics"].sim_seconds,
            runs["RAPID+ (Naive)"].sim_seconds);
  EXPECT_LT(runs["RAPID+ (Naive)"].sim_seconds,
            runs["Hive (MQO)"].sim_seconds);
  EXPECT_LT(runs["Hive (MQO)"].sim_seconds,
            runs["Hive (Naive)"].sim_seconds);
  // Cycle counts (§5.2).
  EXPECT_EQ(runs["RAPIDAnalytics"].cycles, 3);
  EXPECT_EQ(runs["RAPID+ (Naive)"].cycles, 5);
  EXPECT_EQ(runs["Hive (Naive)"].cycles, 9);
  // Headline factor: "up to 10X" — at least 3x here.
  EXPECT_GT(runs["Hive (Naive)"].sim_seconds,
            3 * runs["RAPIDAnalytics"].sim_seconds);
}

TEST(BenchShapeTest, Mg13PeakDiskOrderingHolds) {
  // Table 4 footnote: naive Hive's peak DFS demand on the MeSH blowup
  // query exceeds RAPIDAnalytics' by a wide margin.
  workload::PubmedConfig cfg;
  cfg.num_publications = 600;
  engine::Dataset dataset(workload::GeneratePubmed(cfg));
  auto runs = RunAll(&dataset, "MG13", 60);
  EXPECT_GT(runs["Hive (Naive)"].peak_dfs,
            2 * runs["RAPIDAnalytics"].peak_dfs);
}

TEST(BenchShapeTest, LowSelectivityCostsMoreThanHigh) {
  // Table 3: ProductType1 (lo) queries scan and aggregate more than the
  // rare-type (hi) twins on the same engine.
  workload::BsbmConfig cfg;
  cfg.num_products = 800;
  engine::Dataset dataset(workload::GenerateBsbm(cfg));
  auto lo = RunAll(&dataset, "MG1", 10);
  auto hi = RunAll(&dataset, "MG2", 10);
  EXPECT_GE(lo["Hive (Naive)"].sim_seconds,
            hi["Hive (Naive)"].sim_seconds);
  EXPECT_GE(lo["RAPIDAnalytics"].sim_seconds,
            hi["RAPIDAnalytics"].sim_seconds);
}

}  // namespace
}  // namespace rapida
