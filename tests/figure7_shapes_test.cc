// Fidelity check against the paper's Figure 7 ("Evaluated RDF Analytical
// Queries"): the catalog's multi-grouping queries must have the stated
// star structure (number of triple patterns per star, GP1 : GP2) and
// grouping keys. Where our schema adaptation deviates, the deviation is
// asserted explicitly so it is a documented, intentional difference.
#include <gtest/gtest.h>
#include <algorithm>

#include "analytics/analytical_query.h"
#include "sparql/parser.h"
#include "workload/catalog.h"

namespace rapida::workload {
namespace {

struct QueryShape {
  const char* id;
  // Triple patterns per star for each grouping pattern, e.g. {{3,2},{2,2}}.
  std::vector<std::vector<int>> stars;
  // Grouping keys per grouping ({} = ALL).
  std::vector<std::vector<std::string>> group_by;
};

class Figure7ShapeTest : public ::testing::TestWithParam<QueryShape> {};

TEST_P(Figure7ShapeTest, MatchesDeclaredShape) {
  const QueryShape& expect = GetParam();
  auto cq = FindQuery(expect.id);
  ASSERT_TRUE(cq.ok());
  auto parsed = sparql::ParseQuery((*cq)->sparql);
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  auto query = analytics::AnalyzeQuery(**parsed);
  ASSERT_TRUE(query.ok()) << query.status();

  ASSERT_EQ(query->groupings.size(), expect.stars.size()) << expect.id;
  for (size_t g = 0; g < expect.stars.size(); ++g) {
    const auto& pattern = query->groupings[g].pattern;
    std::vector<int> sizes;
    for (const auto& star : pattern.stars) {
      sizes.push_back(static_cast<int>(star.triples.size()));
    }
    // Star order within a pattern is not significant; compare sorted.
    std::vector<int> want = expect.stars[g];
    std::sort(sizes.begin(), sizes.end());
    std::sort(want.begin(), want.end());
    EXPECT_EQ(sizes, want) << expect.id << " GP" << (g + 1);

    std::vector<std::string> keys = query->groupings[g].group_by;
    std::vector<std::string> want_keys = expect.group_by[g];
    std::sort(keys.begin(), keys.end());
    std::sort(want_keys.begin(), want_keys.end());
    EXPECT_EQ(keys, want_keys) << expect.id << " GP" << (g + 1);
  }
}

// Figure 7 rows. Notes on adaptations:
//  * MG1/MG2: paper 3:2 vs 2:2 — exact match.
//  * MG3/MG4: paper 3:3:1 vs 2:3:1 — exact match.
//  * MG6-MG8: paper 4:2:2 — ours adds the interaction star explicitly:
//    4:2:2 per pattern (the DBID target hop), matching.
//  * MG9: paper 2:1 — exact.   * MG10: paper 3:1 vs 2:1 — exact.
//  * MG11: paper 2:2 vs 2:1 — exact.
//  * MG12: paper 2:2 vs 2:1 — exact.
//  * MG13/MG14: paper 3:1 — exact.  * MG15/MG16: 3:1 — exact.
//  * MG17: paper 3:2 vs 3:1 — exact.  * MG18: 3:2 vs 2:2 — exact.
INSTANTIATE_TEST_SUITE_P(
    Figure7, Figure7ShapeTest,
    ::testing::Values(
        QueryShape{"MG1", {{3, 2}, {2, 2}}, {{"f"}, {}}},
        QueryShape{"MG2", {{3, 2}, {2, 2}}, {{"f"}, {}}},
        QueryShape{"MG3", {{3, 3, 1}, {2, 3, 1}}, {{"f", "c"}, {"c"}}},
        QueryShape{"MG4", {{3, 3, 1}, {2, 3, 1}}, {{"f", "c"}, {"c"}}},
        QueryShape{"MG6",
                   {{4, 2, 2}, {4, 2, 2}},
                   {{"cid", "g1"}, {"cid"}}},
        QueryShape{"MG7",
                   {{4, 2, 2}, {4, 2, 2}},
                   {{"cid", "dr1"}, {"cid"}}},
        QueryShape{"MG8", {{4, 2, 2}, {4, 2, 2}}, {{"cid", "g1"}, {}}},
        QueryShape{"MG9", {{2, 1}, {2, 1}}, {{"gs"}, {}}},
        QueryShape{"MG10", {{3, 1}, {2, 1}}, {{"d", "gs"}, {"gs"}}},
        QueryShape{"MG11", {{2, 2}, {2, 1}}, {{"c"}, {}}},
        QueryShape{"MG12", {{2, 2}, {2, 1}}, {{"c", "pt"}, {"c"}}},
        QueryShape{"MG13",
                   {{3, 1}, {3, 1}},
                   {{"a", "pty"}, {"pty"}}},
        QueryShape{"MG14",
                   {{3, 1}, {3, 1}},
                   {{"a", "pty"}, {"pty"}}},
        QueryShape{"MG15", {{3, 1}, {3, 1}}, {{"ln"}, {}}},
        QueryShape{"MG16", {{3, 1}, {3, 1}}, {{"ln"}, {}}},
        QueryShape{"MG17", {{3, 2}, {3, 1}}, {{"c"}, {}}},
        QueryShape{"MG18", {{3, 2}, {2, 2}}, {{"c", "a"}, {"c"}}}),
    [](const ::testing::TestParamInfo<QueryShape>& info) {
      return std::string(info.param.id);
    });

}  // namespace
}  // namespace rapida::workload
