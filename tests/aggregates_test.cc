#include "analytics/aggregates.h"

#include <gtest/gtest.h>

#include "analytics/value.h"

namespace rapida::analytics {
namespace {

using sparql::AggFunc;

class AggregatesTest : public ::testing::Test {
 protected:
  double Num(rdf::TermId id) { return *dict_.AsNumber(id); }
  rdf::Dictionary dict_;
};

TEST_F(AggregatesTest, CountSumAvg) {
  Aggregator count(AggFunc::kCount, false);
  Aggregator sum(AggFunc::kSum, false);
  Aggregator avg(AggFunc::kAvg, false);
  for (int v : {10, 20, 30}) {
    rdf::TermId id = dict_.InternInt(v);
    count.AddTerm(id, dict_);
    sum.AddTerm(id, dict_);
    avg.AddTerm(id, dict_);
  }
  EXPECT_DOUBLE_EQ(Num(count.Finalize(&dict_)), 3);
  EXPECT_DOUBLE_EQ(Num(sum.Finalize(&dict_)), 60);
  EXPECT_DOUBLE_EQ(Num(avg.Finalize(&dict_)), 20);
}

TEST_F(AggregatesTest, MinMaxNumeric) {
  Aggregator mn(AggFunc::kMin, false);
  Aggregator mx(AggFunc::kMax, false);
  for (int v : {7, 2, 9, 4}) {
    mn.AddTerm(dict_.InternInt(v), dict_);
    mx.AddTerm(dict_.InternInt(v), dict_);
  }
  EXPECT_DOUBLE_EQ(Num(mn.Finalize(&dict_)), 2);
  EXPECT_DOUBLE_EQ(Num(mx.Finalize(&dict_)), 9);
}

TEST_F(AggregatesTest, MinMaxLexicalForStrings) {
  Aggregator mn(AggFunc::kMin, false);
  for (const char* s : {"banana", "apple", "cherry"}) {
    mn.AddTerm(dict_.InternLiteral(s), dict_);
  }
  EXPECT_EQ(dict_.Get(mn.Finalize(&dict_)).text, "apple");
}

TEST_F(AggregatesTest, UnboundTermsSkipped) {
  Aggregator count(AggFunc::kCount, false);
  count.AddTerm(rdf::kInvalidTermId, dict_);
  count.AddTerm(dict_.InternInt(1), dict_);
  EXPECT_DOUBLE_EQ(Num(count.Finalize(&dict_)), 1);
}

TEST_F(AggregatesTest, EmptyGroupSemantics) {
  EXPECT_DOUBLE_EQ(Num(Aggregator(AggFunc::kCount, false).Finalize(&dict_)),
                   0);
  EXPECT_DOUBLE_EQ(Num(Aggregator(AggFunc::kSum, false).Finalize(&dict_)), 0);
  EXPECT_DOUBLE_EQ(Num(Aggregator(AggFunc::kAvg, false).Finalize(&dict_)), 0);
  EXPECT_EQ(Aggregator(AggFunc::kMin, false).Finalize(&dict_),
            rdf::kInvalidTermId);
}

TEST_F(AggregatesTest, Distinct) {
  Aggregator count(AggFunc::kCount, true);
  Aggregator sum(AggFunc::kSum, true);
  rdf::TermId five = dict_.InternInt(5);
  rdf::TermId six = dict_.InternInt(6);
  for (rdf::TermId id : {five, five, six, five}) {
    count.AddTerm(id, dict_);
    sum.AddTerm(id, dict_);
  }
  EXPECT_DOUBLE_EQ(Num(count.Finalize(&dict_)), 2);
  EXPECT_DOUBLE_EQ(Num(sum.Finalize(&dict_)), 11);
}

TEST_F(AggregatesTest, CountStarRows) {
  Aggregator count(AggFunc::kCount, false);
  count.AddRow();
  count.AddRow();
  EXPECT_DOUBLE_EQ(Num(count.Finalize(&dict_)), 2);
}

TEST_F(AggregatesTest, MergeEqualsSingleAccumulation) {
  // Algebraic property behind map-side pre-aggregation (paper Alg. 3):
  // splitting the input across partial aggregators and merging must give
  // the same result as one aggregator.
  std::vector<int> values = {5, 1, 9, 3, 7, 7, 2};
  for (AggFunc f : {AggFunc::kCount, AggFunc::kSum, AggFunc::kAvg,
                    AggFunc::kMin, AggFunc::kMax}) {
    Aggregator whole(f, false);
    Aggregator part1(f, false), part2(f, false);
    for (size_t i = 0; i < values.size(); ++i) {
      rdf::TermId id = dict_.InternInt(values[i]);
      whole.AddTerm(id, dict_);
      (i % 2 == 0 ? part1 : part2).AddTerm(id, dict_);
    }
    part1.Merge(part2, dict_);
    EXPECT_EQ(whole.Finalize(&dict_), part1.Finalize(&dict_))
        << "func " << static_cast<int>(f);
  }
}

TEST_F(AggregatesTest, SerializePartialRoundTrip) {
  Aggregator agg(AggFunc::kSum, false);
  agg.AddTerm(dict_.InternInt(4), dict_);
  agg.AddTerm(dict_.InternInt(8), dict_);
  std::string data = agg.SerializePartial();
  auto restored = Aggregator::DeserializePartial(AggFunc::kSum, data);
  ASSERT_TRUE(restored.ok());
  EXPECT_EQ(restored->count(), 2u);
  EXPECT_DOUBLE_EQ(restored->sum(), 12.0);
  EXPECT_EQ(restored->Finalize(&dict_), agg.Finalize(&dict_));
}

TEST_F(AggregatesTest, DeserializeRejectsGarbage) {
  EXPECT_FALSE(Aggregator::DeserializePartial(AggFunc::kSum, "junk").ok());
  EXPECT_FALSE(Aggregator::DeserializePartial(AggFunc::kSum, "1,2").ok());
  EXPECT_FALSE(
      Aggregator::DeserializePartial(AggFunc::kSum, "a,b,c,d,e").ok());
}

TEST_F(AggregatesTest, InternNumberCanonicalization) {
  // Integral doubles intern as integers; equal values intern identically.
  EXPECT_EQ(InternNumber(&dict_, 5.0), InternNumber(&dict_, 5.0));
  EXPECT_EQ(dict_.Get(InternNumber(&dict_, 5.0)).text, "5");
  EXPECT_EQ(dict_.Get(InternNumber(&dict_, 2.5)).text, "2.5");
}

TEST_F(AggregatesTest, CompareTermsNumericAware) {
  rdf::TermId five_int = dict_.InternInt(5);
  rdf::TermId five_plain = dict_.InternLiteral("5.0");
  rdf::TermId six = dict_.InternInt(6);
  EXPECT_EQ(CompareTerms(dict_, five_int, five_plain), 0);
  EXPECT_LT(CompareTerms(dict_, five_int, six), 0);
  EXPECT_GT(CompareTerms(dict_, six, five_plain), 0);
}

}  // namespace
}  // namespace rapida::analytics
