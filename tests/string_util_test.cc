#include "util/string_util.h"

#include <gtest/gtest.h>

namespace rapida {
namespace {

TEST(SplitStringTest, Basic) {
  EXPECT_EQ(SplitString("a,b,c", ','),
            (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(SplitString("", ','), (std::vector<std::string>{""}));
  EXPECT_EQ(SplitString("a,,c", ','), (std::vector<std::string>{"a", "", "c"}));
  EXPECT_EQ(SplitString(",", ','), (std::vector<std::string>{"", ""}));
}

TEST(JoinStringsTest, Basic) {
  EXPECT_EQ(JoinStrings({"a", "b"}, ", "), "a, b");
  EXPECT_EQ(JoinStrings({}, ","), "");
  EXPECT_EQ(JoinStrings({"solo"}, ","), "solo");
}

TEST(TrimStringTest, Basic) {
  EXPECT_EQ(TrimString("  x  "), "x");
  EXPECT_EQ(TrimString("\t\r\n"), "");
  EXPECT_EQ(TrimString("a b"), "a b");
  EXPECT_EQ(TrimString(""), "");
}

TEST(StartsEndsWithTest, Basic) {
  EXPECT_TRUE(StartsWith("hello", "he"));
  EXPECT_FALSE(StartsWith("hello", "lo"));
  EXPECT_TRUE(EndsWith("hello", "lo"));
  EXPECT_FALSE(EndsWith("he", "hello"));
  EXPECT_TRUE(StartsWith("x", ""));
  EXPECT_TRUE(EndsWith("x", ""));
}

TEST(ContainsIgnoreCaseTest, Basic) {
  EXPECT_TRUE(ContainsIgnoreCase("MAPK signaling pathway", "mapk"));
  EXPECT_TRUE(ContainsIgnoreCase("hepatomegaly", "HEPATO"));
  EXPECT_FALSE(ContainsIgnoreCase("abc", "abcd"));
  EXPECT_TRUE(ContainsIgnoreCase("anything", ""));
}

TEST(ParseInt64Test, Basic) {
  int64_t v = 0;
  EXPECT_TRUE(ParseInt64("123", &v));
  EXPECT_EQ(v, 123);
  EXPECT_TRUE(ParseInt64("-7", &v));
  EXPECT_EQ(v, -7);
  EXPECT_FALSE(ParseInt64("12x", &v));
  EXPECT_FALSE(ParseInt64("", &v));
  EXPECT_FALSE(ParseInt64("1.5", &v));
}

TEST(ParseDoubleTest, Basic) {
  double v = 0;
  EXPECT_TRUE(ParseDouble("1.5", &v));
  EXPECT_DOUBLE_EQ(v, 1.5);
  EXPECT_TRUE(ParseDouble("-2e3", &v));
  EXPECT_DOUBLE_EQ(v, -2000);
  EXPECT_TRUE(ParseDouble("42", &v));
  EXPECT_DOUBLE_EQ(v, 42);
  EXPECT_FALSE(ParseDouble("abc", &v));
  EXPECT_FALSE(ParseDouble("1.5z", &v));
}

TEST(FormatBytesTest, Basic) {
  EXPECT_EQ(FormatBytes(512), "512 B");
  EXPECT_EQ(FormatBytes(1536), "1.5 KB");
  EXPECT_EQ(FormatBytes(3 * 1024ull * 1024), "3.0 MB");
}

}  // namespace
}  // namespace rapida
