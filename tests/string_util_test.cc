#include "util/string_util.h"

#include <gtest/gtest.h>

namespace rapida {
namespace {

TEST(SplitStringTest, Basic) {
  EXPECT_EQ(SplitString("a,b,c", ','),
            (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(SplitString("", ','), (std::vector<std::string>{""}));
  EXPECT_EQ(SplitString("a,,c", ','), (std::vector<std::string>{"a", "", "c"}));
  EXPECT_EQ(SplitString(",", ','), (std::vector<std::string>{"", ""}));
}

// Collects every field FieldTokenizer yields, for comparison against
// SplitString (the two must agree on all inputs).
std::vector<std::string> TokenizeAll(std::string_view input, char sep) {
  FieldTokenizer tok(input, sep);
  std::vector<std::string> out;
  std::string_view field;
  while (tok.Next(&field)) out.emplace_back(field);
  return out;
}

TEST(FieldTokenizerTest, SingleField) {
  EXPECT_EQ(TokenizeAll("solo", ','), (std::vector<std::string>{"solo"}));
}

TEST(FieldTokenizerTest, EmptyInputYieldsOneEmptyField) {
  EXPECT_EQ(TokenizeAll("", ','), (std::vector<std::string>{""}));
}

TEST(FieldTokenizerTest, EmptyFieldsKept) {
  EXPECT_EQ(TokenizeAll("a,,c", ','),
            (std::vector<std::string>{"a", "", "c"}));
  EXPECT_EQ(TokenizeAll(",", ','), (std::vector<std::string>{"", ""}));
}

TEST(FieldTokenizerTest, TrailingSeparatorYieldsTrailingEmptyField) {
  EXPECT_EQ(TokenizeAll("a,b,", ','),
            (std::vector<std::string>{"a", "b", ""}));
}

TEST(FieldTokenizerTest, NextReturnsFalseAfterExhaustion) {
  FieldTokenizer tok("a", ',');
  std::string_view field;
  ASSERT_TRUE(tok.Next(&field));
  EXPECT_FALSE(tok.Next(&field));
  EXPECT_FALSE(tok.Next(&field));  // stays exhausted
}

TEST(FieldTokenizerTest, MatchesSplitStringOnAllShapes) {
  for (const char* input :
       {"", "a", ",", "a,b,c", "a,,c", ",,", "x,", ",x", "a,b,c,"}) {
    EXPECT_EQ(TokenizeAll(input, ','), SplitString(input, ','))
        << "input: '" << input << "'";
  }
}

TEST(FieldTokenizerTest, FieldsAreViewsIntoInput) {
  std::string input = "ab|cd";
  FieldTokenizer tok(input, '|');
  std::string_view field;
  ASSERT_TRUE(tok.Next(&field));
  EXPECT_EQ(static_cast<const void*>(field.data()),
            static_cast<const void*>(input.data()));
}

TEST(JoinStringsTest, Basic) {
  EXPECT_EQ(JoinStrings({"a", "b"}, ", "), "a, b");
  EXPECT_EQ(JoinStrings({}, ","), "");
  EXPECT_EQ(JoinStrings({"solo"}, ","), "solo");
}

TEST(TrimStringTest, Basic) {
  EXPECT_EQ(TrimString("  x  "), "x");
  EXPECT_EQ(TrimString("\t\r\n"), "");
  EXPECT_EQ(TrimString("a b"), "a b");
  EXPECT_EQ(TrimString(""), "");
}

TEST(StartsEndsWithTest, Basic) {
  EXPECT_TRUE(StartsWith("hello", "he"));
  EXPECT_FALSE(StartsWith("hello", "lo"));
  EXPECT_TRUE(EndsWith("hello", "lo"));
  EXPECT_FALSE(EndsWith("he", "hello"));
  EXPECT_TRUE(StartsWith("x", ""));
  EXPECT_TRUE(EndsWith("x", ""));
}

TEST(ContainsIgnoreCaseTest, Basic) {
  EXPECT_TRUE(ContainsIgnoreCase("MAPK signaling pathway", "mapk"));
  EXPECT_TRUE(ContainsIgnoreCase("hepatomegaly", "HEPATO"));
  EXPECT_FALSE(ContainsIgnoreCase("abc", "abcd"));
  EXPECT_TRUE(ContainsIgnoreCase("anything", ""));
}

TEST(ParseInt64Test, Basic) {
  int64_t v = 0;
  EXPECT_TRUE(ParseInt64("123", &v));
  EXPECT_EQ(v, 123);
  EXPECT_TRUE(ParseInt64("-7", &v));
  EXPECT_EQ(v, -7);
  EXPECT_FALSE(ParseInt64("12x", &v));
  EXPECT_FALSE(ParseInt64("", &v));
  EXPECT_FALSE(ParseInt64("1.5", &v));
}

TEST(ParseDoubleTest, Basic) {
  double v = 0;
  EXPECT_TRUE(ParseDouble("1.5", &v));
  EXPECT_DOUBLE_EQ(v, 1.5);
  EXPECT_TRUE(ParseDouble("-2e3", &v));
  EXPECT_DOUBLE_EQ(v, -2000);
  EXPECT_TRUE(ParseDouble("42", &v));
  EXPECT_DOUBLE_EQ(v, 42);
  EXPECT_FALSE(ParseDouble("abc", &v));
  EXPECT_FALSE(ParseDouble("1.5z", &v));
}

TEST(FormatBytesTest, Basic) {
  EXPECT_EQ(FormatBytes(512), "512 B");
  EXPECT_EQ(FormatBytes(1536), "1.5 KB");
  EXPECT_EQ(FormatBytes(3 * 1024ull * 1024), "3.0 MB");
}

}  // namespace
}  // namespace rapida
