// PlanPreview must agree with the engines' actual compiled plans: for
// EVERY catalog query and EVERY engine, preview cycle count == executed
// cycle count. This welds the documentation/preview layer to the planner.
#include "engines/plan_preview.h"

#include <gtest/gtest.h>

#include "engines/engines.h"
#include "sparql/parser.h"
#include "workload/bsbm.h"
#include "workload/catalog.h"
#include "workload/chem2bio.h"
#include "workload/pubmed.h"

namespace rapida::engine {
namespace {

Dataset* DatasetFor(const std::string& name) {
  static auto* cache = new std::map<std::string, std::unique_ptr<Dataset>>();
  auto it = cache->find(name);
  if (it != cache->end()) return it->second.get();
  rdf::Graph g;
  if (name == "bsbm") {
    workload::BsbmConfig cfg;
    cfg.num_products = 200;
    g = workload::GenerateBsbm(cfg);
  } else if (name == "chem") {
    workload::ChemConfig cfg;
    cfg.num_assays = 300;
    cfg.num_publications = 800;
    g = workload::GenerateChem2Bio(cfg);
  } else {
    workload::PubmedConfig cfg;
    cfg.num_publications = 300;
    g = workload::GeneratePubmed(cfg);
  }
  return cache->emplace(name, std::make_unique<Dataset>(std::move(g)))
      .first->second.get();
}

class PlanPreviewMatchesExecution
    : public ::testing::TestWithParam<std::string> {};

TEST_P(PlanPreviewMatchesExecution, CyclesAgree) {
  auto cq = workload::FindQuery(GetParam());
  ASSERT_TRUE(cq.ok());
  auto parsed = sparql::ParseQuery((*cq)->sparql);
  ASSERT_TRUE(parsed.ok());
  auto query = analytics::AnalyzeQuery(**parsed);
  ASSERT_TRUE(query.ok());
  Dataset* dataset = DatasetFor((*cq)->dataset);
  mr::Cluster cluster(mr::ClusterConfig{}, &dataset->dfs());

  for (const auto& eng : MakeAllEngines()) {
    PlanPreview preview = PreviewPlan(eng->name(), *query);
    ExecStats stats;
    auto result = eng->Execute(*query, dataset, &cluster, &stats);
    ASSERT_TRUE(result.ok()) << eng->name() << ": " << result.status();
    EXPECT_EQ(preview.cycles, stats.workflow.NumCycles())
        << GetParam() << " on " << eng->name() << "\npreview:\n"
        << preview.ToString();
  }
}

std::vector<std::string> AllIds() {
  std::vector<std::string> out;
  for (const auto& q : workload::Catalog()) out.push_back(q.id);
  return out;
}

INSTANTIATE_TEST_SUITE_P(Catalog, PlanPreviewMatchesExecution,
                         ::testing::ValuesIn(AllIds()),
                         [](const ::testing::TestParamInfo<std::string>& i) {
                           // Test names must be identifiers: MG-OPT -> MG_OPT.
                           std::string name = i.param;
                           for (char& c : name) {
                             if (c == '-') c = '_';
                           }
                           return name;
                         });

TEST(PlanPreviewTest, ToStringListsSteps) {
  auto cq = workload::FindQuery("MG1");
  auto parsed = sparql::ParseQuery((*cq)->sparql);
  auto query = analytics::AnalyzeQuery(**parsed);
  ASSERT_TRUE(query.ok());
  PlanPreview p = PreviewPlan("RAPIDAnalytics", *query);
  EXPECT_EQ(p.cycles, 3);
  std::string s = p.ToString();
  EXPECT_NE(s.find("MR1"), std::string::npos);
  EXPECT_NE(s.find("parallel TG Agg-Join"), std::string::npos);
  EXPECT_NE(s.find("2 grouping-aggregations"), std::string::npos);
}

TEST(PlanPreviewTest, PreviewAllCoversFourEngines) {
  auto cq = workload::FindQuery("MG3");
  auto parsed = sparql::ParseQuery((*cq)->sparql);
  auto query = analytics::AnalyzeQuery(**parsed);
  ASSERT_TRUE(query.ok());
  auto all = PreviewAllPlans(*query);
  ASSERT_EQ(all.size(), 4u);
  EXPECT_EQ(all[0].cycles, 11);  // Hive (Naive)
  EXPECT_EQ(all[2].cycles, 7);   // RAPID+
  EXPECT_EQ(all[3].cycles, 4);   // RAPIDAnalytics
}

}  // namespace
}  // namespace rapida::engine
