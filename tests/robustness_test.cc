// Fuzz-ish robustness: serialization parsers and the SPARQL front end must
// reject (not crash on) arbitrary byte soup; log plumbing and counter
// rendering behave.
#include <gtest/gtest.h>

#include "analytics/reference_evaluator.h"

#include <string>

#include "engines/relational_ops.h"
#include "mapreduce/counters.h"
#include "ntga/triplegroup.h"
#include "sparql/parser.h"
#include "testing/query_gen.h"
#include "util/logging.h"
#include "util/random.h"

namespace rapida {
namespace {

std::string RandomBytes(Random* rng, size_t max_len) {
  size_t len = rng->Uniform(max_len);
  std::string out;
  out.reserve(len);
  for (size_t i = 0; i < len; ++i) {
    // Printable-ish range plus separators the codecs care about.
    const char* alphabet = "0123456789;,#:|abcXYZ \t{}()?<>\".";
    out += alphabet[rng->Uniform(33)];
  }
  return out;
}

TEST(RobustnessTest, TriplegroupParsersNeverCrash) {
  Random rng(424242);
  int parsed_ok = 0;
  for (int i = 0; i < 2000; ++i) {
    std::string input = RandomBytes(&rng, 60);
    auto tg = ntga::ParseTripleGroup(input);
    if (tg.ok()) ++parsed_ok;
    auto nested = ntga::ParseNested(input, 3);
    (void)nested;
    std::vector<rdf::TermId> row = engine::DecodeRow(input);
    (void)row;
  }
  // Some random inputs happen to be valid — that's fine; the point is no
  // crash and no false hard failure.
  EXPECT_GE(parsed_ok, 0);
}

TEST(RobustnessTest, SparqlParserNeverCrashesOnGarbage) {
  Random rng(777);
  for (int i = 0; i < 1000; ++i) {
    std::string input = "SELECT " + RandomBytes(&rng, 80);
    auto q = sparql::ParseQuery(input);
    (void)q;  // ok or ParseError, never a crash
    if (!q.ok()) {
      EXPECT_EQ(q.status().code(), Code::kParseError);
    }
  }
}

TEST(RobustnessTest, SerializationRoundTripUnderRandomIds) {
  Random rng(99);
  for (int i = 0; i < 200; ++i) {
    ntga::TripleGroup tg;
    tg.subject = static_cast<rdf::TermId>(1 + rng.Uniform(1u << 30));
    int n = static_cast<int>(rng.Uniform(8));
    for (int t = 0; t < n; ++t) {
      tg.triples.push_back(rdf::Triple{
          tg.subject, static_cast<rdf::TermId>(1 + rng.Uniform(1u << 30)),
          static_cast<rdf::TermId>(1 + rng.Uniform(1u << 30))});
    }
    auto parsed = ntga::ParseTripleGroup(ntga::SerializeTripleGroup(tg));
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(*parsed, tg);
  }
}

TEST(RobustnessTest, GeneratedQueriesRoundTripThroughPrinter) {
  // Property: for every query the fuzzer can generate, printing it and
  // re-parsing the text yields a structurally identical AST, and printing
  // is a fixed point (print(parse(print(q))) == print(q)). This pins the
  // printer/parser pair the shrinker relies on (it clones via re-parse).
  for (uint64_t seed = 1; seed <= 150; ++seed) {
    Random rng(seed);
    std::string dataset;
    auto query = difftest::GenerateAnyQuery(&rng, &dataset);
    std::string text = query->ToString();
    auto reparsed = sparql::ParseQuery(text);
    ASSERT_TRUE(reparsed.ok())
        << "seed " << seed << ": " << reparsed.status() << "\n" << text;
    EXPECT_TRUE(sparql::Equals(*query, **reparsed))
        << "seed " << seed << " round-trip changed the AST:\n" << text
        << "\nreprinted:\n" << (*reparsed)->ToString();
    EXPECT_EQ(text, (*reparsed)->ToString()) << "seed " << seed;
  }
}

TEST(RobustnessTest, UnaryMinusInExpressions) {
  rdf::Graph g;
  g.AddInt("s1", "v", -5);
  g.AddInt("s2", "v", 5);
  auto q = sparql::ParseQuery("SELECT ?s { ?s <v> ?x . FILTER(?x < -1) }");
  ASSERT_TRUE(q.ok()) << q.status();
  analytics::ReferenceEvaluator ref(&g);
  auto r = ref.Evaluate(**q);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->NumRows(), 1u);

  auto q2 = sparql::ParseQuery(
      "SELECT ?s { ?s <v> ?x . FILTER(-?x = 5) }");
  ASSERT_TRUE(q2.ok()) << q2.status();
  auto r2 = ref.Evaluate(**q2);
  ASSERT_TRUE(r2.ok());
  ASSERT_EQ(r2->NumRows(), 1u);
  EXPECT_EQ(g.dict().Get(r2->rows()[0][0]).text, "s1");
}

TEST(RobustnessTest, WorkflowStatsToStringRenders) {
  mr::WorkflowStats stats;
  mr::JobStats j;
  j.name = "join0";
  j.input_bytes = 1024;
  j.shuffle_bytes = 2048;
  j.output_bytes = 512;
  j.sim_seconds = 12.5;
  stats.jobs.push_back(j);
  j.name = "agg";
  j.map_only = true;
  stats.jobs.push_back(j);
  std::string s = stats.ToString();
  EXPECT_NE(s.find("2 cycles"), std::string::npos);
  EXPECT_NE(s.find("join0"), std::string::npos);
  EXPECT_NE(s.find("[map]"), std::string::npos);
  EXPECT_NE(s.find("[map+red]"), std::string::npos);
}

TEST(RobustnessTest, LogLevelGating) {
  LogLevel old = GetLogLevel();
  SetLogLevel(LogLevel::kError);
  EXPECT_EQ(GetLogLevel(), LogLevel::kError);
  RAPIDA_LOG(Info) << "suppressed";
  RAPIDA_LOG(Warning) << "suppressed";
  SetLogLevel(old);
}

}  // namespace
}  // namespace rapida
