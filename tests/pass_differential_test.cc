// Pass on/off divergence gate: flipping any optimizer pass toggle must
// change the plan shape at most — never the results. Every configuration
// runs all four engines over a catalog cross-section and compares against
// the reference evaluator byte-for-byte.
#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "analytics/reference_evaluator.h"
#include "engines/engines.h"
#include "sparql/parser.h"
#include "workload/bsbm.h"
#include "workload/catalog.h"
#include "workload/chem2bio.h"
#include "workload/pubmed.h"

namespace rapida::engine {
namespace {

rdf::Graph SmallGraphFor(const std::string& dataset) {
  if (dataset == "bsbm") {
    workload::BsbmConfig cfg;
    cfg.num_products = 300;
    cfg.offers_per_product = 2.5;
    return workload::GenerateBsbm(cfg);
  }
  if (dataset == "chem") {
    workload::ChemConfig cfg;
    cfg.num_assays = 500;
    cfg.num_publications = 1200;
    return workload::GenerateChem2Bio(cfg);
  }
  workload::PubmedConfig cfg;
  cfg.num_publications = 500;
  cfg.mesh_per_publication = 3.0;
  cfg.chemicals_per_publication = 2.0;
  return workload::GeneratePubmed(cfg);
}

Dataset* DatasetFor(const std::string& name) {
  static auto* cache = new std::map<std::string, std::unique_ptr<Dataset>>();
  auto it = cache->find(name);
  if (it == cache->end()) {
    it = cache->emplace(name,
                        std::make_unique<Dataset>(SmallGraphFor(name)))
             .first;
  }
  return it->second.get();
}

struct PassConfig {
  std::string name;
  EngineOptions options;
};

std::vector<PassConfig> AllConfigs() {
  std::vector<PassConfig> configs;
  configs.push_back({"default", EngineOptions()});
  {
    EngineOptions o;
    o.enable_map_joins = false;
    configs.push_back({"no_map_joins", o});
  }
  {
    EngineOptions o;
    o.partial_aggregation = false;
    configs.push_back({"no_partial_agg", o});
  }
  {
    EngineOptions o;
    o.parallel_agg_join = false;
    configs.push_back({"no_parallel_agg_join", o});
  }
  {
    EngineOptions o;
    o.greedy_join_order = true;
    configs.push_back({"greedy_join_order", o});
  }
  {
    EngineOptions o;
    o.vectorized_kernels = false;
    configs.push_back({"no_vectorized_kernels", o});
  }
  {
    EngineOptions o;
    o.factorized_intermediates = false;
    configs.push_back({"no_factorize", o});
  }
  return configs;
}

/// Cross-section: single-grouping, multi-grouping on every dataset, the
/// analytical join, and both relational-operator queries.
const std::string kQueryIds[] = {"G1", "G3", "MG1", "MG3", "MG9",
                                 "AQ1", "R1", "R2"};

class PassDifferentialTest : public ::testing::TestWithParam<std::string> {};

TEST_P(PassDifferentialTest, AllTogglesPreserveResults) {
  auto cq = workload::FindQuery(GetParam());
  ASSERT_TRUE(cq.ok()) << cq.status();
  Dataset* dataset = DatasetFor((*cq)->dataset);

  auto parsed = sparql::ParseQuery((*cq)->sparql);
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  auto query = analytics::AnalyzeQuery(**parsed);
  ASSERT_TRUE(query.ok()) << query.status();

  analytics::ReferenceEvaluator ref(&dataset->graph());
  auto expected = ref.Evaluate(**parsed);
  ASSERT_TRUE(expected.ok()) << expected.status();
  std::vector<std::string> expected_rows =
      expected->ToSortedStrings(dataset->dict());
  ASSERT_GT(expected_rows.size(), 0u) << GetParam();

  mr::Cluster cluster(mr::ClusterConfig{}, &dataset->dfs());
  for (const PassConfig& cfg : AllConfigs()) {
    for (const auto& eng : MakeAllEngines(cfg.options)) {
      ExecStats stats;
      auto result = eng->Execute(*query, dataset, &cluster, &stats);
      if (!result.ok()) {
        ADD_FAILURE() << GetParam() << " [" << cfg.name << "] on "
                      << eng->name() << ": " << result.status();
        continue;
      }
      EXPECT_EQ(result->ToSortedStrings(dataset->dict()), expected_rows)
          << GetParam() << " diverged on " << eng->name()
          << " with passes=" << cfg.name;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(CrossSection, PassDifferentialTest,
                         ::testing::ValuesIn(kQueryIds),
                         [](const ::testing::TestParamInfo<std::string>& i) {
                           return i.param;
                         });

}  // namespace
}  // namespace rapida::engine
