#include "analytics/reference_evaluator.h"

#include <gtest/gtest.h>

#include "sparql/parser.h"

namespace rapida::analytics {
namespace {

/// Small hand-built BSBM-flavoured graph used throughout.
///   products p1,p2 of type PT1; p3 of type PT2
///   p1 has features f1,f2; p2 has f1; p3 has f2
///   offers o1..o4 with prices, vendors v1 (DE), v2 (US)
class ReferenceEvaluatorTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto add = [this](const char* s, const char* p, const char* o) {
      g_.AddIri(s, p, o);
    };
    add("p1", rdf::kRdfType, "PT1");
    add("p2", rdf::kRdfType, "PT1");
    add("p3", rdf::kRdfType, "PT2");
    add("p1", "feature", "f1");
    add("p1", "feature", "f2");
    add("p2", "feature", "f1");
    add("p3", "feature", "f2");
    add("o1", "product", "p1");
    add("o2", "product", "p1");
    add("o3", "product", "p2");
    add("o4", "product", "p3");
    g_.AddInt("o1", "price", 100);
    g_.AddInt("o2", "price", 200);
    g_.AddInt("o3", "price", 50);
    g_.AddInt("o4", "price", 400);
    add("o1", "vendor", "v1");
    add("o2", "vendor", "v2");
    add("o3", "vendor", "v1");
    add("o4", "vendor", "v2");
    add("v1", "country", "DE");
    add("v2", "country", "US");
    g_.AddLit("p1", "label", "alpha");
    g_.AddLit("p2", "label", "beta");
  }

  BindingTable Run(const std::string& query_text) {
    auto query = sparql::ParseQuery(query_text);
    EXPECT_TRUE(query.ok()) << query.status();
    ReferenceEvaluator eval(&g_);
    auto result = eval.Evaluate(**query);
    EXPECT_TRUE(result.ok()) << result.status();
    return result.ok() ? *result : BindingTable{};
  }

  rdf::Graph g_;
};

TEST_F(ReferenceEvaluatorTest, SingleTriplePattern) {
  BindingTable t = Run("SELECT ?s { ?s a <PT1> . }");
  EXPECT_EQ(t.NumRows(), 2u);
}

TEST_F(ReferenceEvaluatorTest, StarJoin) {
  BindingTable t = Run(
      "SELECT ?o ?pr ?v { ?o <product> ?p ; <price> ?pr ; <vendor> ?v . }");
  EXPECT_EQ(t.NumRows(), 4u);
}

TEST_F(ReferenceEvaluatorTest, PathJoinAcrossStars) {
  BindingTable t = Run(
      "SELECT ?p ?c { ?p a <PT1> . ?o <product> ?p ; <vendor> ?v . "
      "?v <country> ?c . }");
  // p1 via o1 (DE), o2 (US); p2 via o3 (DE).
  EXPECT_EQ(t.NumRows(), 3u);
}

TEST_F(ReferenceEvaluatorTest, NoMatchesForUnknownConstant) {
  BindingTable t = Run("SELECT ?s { ?s a <NoSuchType> . }");
  EXPECT_EQ(t.NumRows(), 0u);
}

TEST_F(ReferenceEvaluatorTest, FilterOnPrice) {
  BindingTable t = Run(
      "SELECT ?o { ?o <price> ?pr . FILTER(?pr > 150) }");
  EXPECT_EQ(t.NumRows(), 2u);  // o2 (200), o4 (400)
}

TEST_F(ReferenceEvaluatorTest, OptionalKeepsUnmatched) {
  BindingTable t = Run(
      "SELECT ?p ?l { ?p <feature> ?f . OPTIONAL { ?p <label> ?l . } }");
  // p1 has 2 features, p2 and p3 one each -> 4 rows; p3 has no label.
  ASSERT_EQ(t.NumRows(), 4u);
  int unbound = 0;
  int li = t.VarIndex("l");
  for (const auto& row : t.rows()) {
    if (row[li] == rdf::kInvalidTermId) ++unbound;
  }
  EXPECT_EQ(unbound, 1);
}

TEST_F(ReferenceEvaluatorTest, GroupByWithCountAndSum) {
  BindingTable t = Run(
      "SELECT ?p (COUNT(?pr) AS ?cnt) (SUM(?pr) AS ?sum) "
      "{ ?o <product> ?p ; <price> ?pr . } GROUP BY ?p");
  ASSERT_EQ(t.NumRows(), 3u);
  const rdf::Dictionary& d = g_.dict();
  int pi = t.VarIndex("p"), ci = t.VarIndex("cnt"), si = t.VarIndex("sum");
  for (const auto& row : t.rows()) {
    std::string p = d.Get(row[pi]).text;
    double cnt = *d.AsNumber(row[ci]);
    double sum = *d.AsNumber(row[si]);
    if (p == "p1") {
      EXPECT_DOUBLE_EQ(cnt, 2);
      EXPECT_DOUBLE_EQ(sum, 300);
    } else if (p == "p2") {
      EXPECT_DOUBLE_EQ(cnt, 1);
      EXPECT_DOUBLE_EQ(sum, 50);
    } else {
      EXPECT_EQ(p, "p3");
      EXPECT_DOUBLE_EQ(sum, 400);
    }
  }
}

TEST_F(ReferenceEvaluatorTest, GroupByAllProducesOneRow) {
  BindingTable t = Run(
      "SELECT (COUNT(?pr) AS ?cnt) (AVG(?pr) AS ?avg) "
      "{ ?o <price> ?pr . }");
  ASSERT_EQ(t.NumRows(), 1u);
  EXPECT_DOUBLE_EQ(*g_.dict().AsNumber(t.rows()[0][0]), 4);
  EXPECT_DOUBLE_EQ(*g_.dict().AsNumber(t.rows()[0][1]), 187.5);
}

TEST_F(ReferenceEvaluatorTest, GroupByAllOverEmptyInputCountsZero) {
  BindingTable t = Run(
      "SELECT (COUNT(?pr) AS ?cnt) { ?o <nonexistent> ?pr . }");
  ASSERT_EQ(t.NumRows(), 1u);
  EXPECT_DOUBLE_EQ(*g_.dict().AsNumber(t.rows()[0][0]), 0);
}

TEST_F(ReferenceEvaluatorTest, MinMax) {
  BindingTable t = Run(
      "SELECT (MIN(?pr) AS ?mn) (MAX(?pr) AS ?mx) { ?o <price> ?pr . }");
  ASSERT_EQ(t.NumRows(), 1u);
  EXPECT_DOUBLE_EQ(*g_.dict().AsNumber(t.rows()[0][0]), 50);
  EXPECT_DOUBLE_EQ(*g_.dict().AsNumber(t.rows()[0][1]), 400);
}

TEST_F(ReferenceEvaluatorTest, MultiValuedPropertyMultipliesSolutions) {
  // p1 has two features: each (offer, feature) combination is a solution —
  // the duplicity semantics the paper's n-split must preserve.
  BindingTable t = Run(
      "SELECT ?f (SUM(?pr) AS ?sum) "
      "{ ?p a <PT1> ; <feature> ?f . ?o <product> ?p ; <price> ?pr . } "
      "GROUP BY ?f");
  ASSERT_EQ(t.NumRows(), 2u);
  const rdf::Dictionary& d = g_.dict();
  for (const auto& row : t.rows()) {
    std::string f = d.Get(row[0]).text;
    double sum = *d.AsNumber(row[1]);
    if (f == "f1") {
      EXPECT_DOUBLE_EQ(sum, 350);  // o1+o2 (p1) + o3 (p2)
    } else {
      EXPECT_DOUBLE_EQ(sum, 300);  // o1+o2 via p1's f2
    }
  }
}

TEST_F(ReferenceEvaluatorTest, SubqueriesJoinOnSharedVars) {
  // MG-style query: per-feature sums joined with overall sum.
  BindingTable t = Run(
      "SELECT ?f ?sumF ?sumT { "
      " { SELECT ?f (SUM(?pr) AS ?sumF) "
      "   { ?p a <PT1> ; <feature> ?f . ?o <product> ?p ; <price> ?pr . } "
      "   GROUP BY ?f } "
      " { SELECT (SUM(?pr2) AS ?sumT) "
      "   { ?p2 a <PT1> . ?o2 <product> ?p2 ; <price> ?pr2 . } } "
      "}");
  ASSERT_EQ(t.NumRows(), 2u);
  int ti = t.VarIndex("sumT");
  for (const auto& row : t.rows()) {
    EXPECT_DOUBLE_EQ(*g_.dict().AsNumber(row[ti]), 350);  // 100+200+50
  }
}

TEST_F(ReferenceEvaluatorTest, TopLevelArithmetic) {
  BindingTable t = Run(
      "SELECT ((?sumF / ?cntF) AS ?avgF) { "
      " { SELECT ?f (SUM(?pr) AS ?sumF) (COUNT(?pr) AS ?cntF) "
      "   { ?p <feature> ?f . ?o <product> ?p ; <price> ?pr . } "
      "   GROUP BY ?f } }");
  ASSERT_EQ(t.NumRows(), 2u);
  for (const auto& row : t.rows()) {
    EXPECT_TRUE(g_.dict().AsNumber(row[0]).has_value());
  }
}

TEST_F(ReferenceEvaluatorTest, DistinctProjection) {
  BindingTable t = Run("SELECT DISTINCT ?v { ?o <vendor> ?v . }");
  EXPECT_EQ(t.NumRows(), 2u);
}

TEST_F(ReferenceEvaluatorTest, SelectStar) {
  BindingTable t = Run("SELECT * { ?v <country> ?c . }");
  EXPECT_EQ(t.NumCols(), 2u);
  EXPECT_EQ(t.NumRows(), 2u);
}

TEST_F(ReferenceEvaluatorTest, CountDistinct) {
  BindingTable t = Run(
      "SELECT (COUNT(DISTINCT ?p) AS ?n) { ?o <product> ?p . }");
  EXPECT_DOUBLE_EQ(*g_.dict().AsNumber(t.rows()[0][0]), 3);
}

TEST_F(ReferenceEvaluatorTest, ProjectingNonGroupedVarFails) {
  auto query = sparql::ParseQuery(
      "SELECT ?o (COUNT(?pr) AS ?c) { ?o <price> ?pr . } GROUP BY ?v");
  // GROUP BY ?v is unbound -> error surfaces as InvalidArgument.
  ASSERT_TRUE(query.ok());
  ReferenceEvaluator eval(&g_);
  auto result = eval.Evaluate(**query);
  EXPECT_FALSE(result.ok());
}

TEST_F(ReferenceEvaluatorTest, RegexFilter) {
  BindingTable t = Run(
      "SELECT ?p { ?p <label> ?l . FILTER regex(?l, \"ALPHA\", \"i\") }");
  ASSERT_EQ(t.NumRows(), 1u);
  EXPECT_EQ(g_.dict().Get(t.rows()[0][0]).text, "p1");
}

TEST_F(ReferenceEvaluatorTest, SameVariableTwiceInPattern) {
  rdf::Graph g;
  g.AddIri("n1", "knows", "n1");
  g.AddIri("n1", "knows", "n2");
  auto query = sparql::ParseQuery("SELECT ?x { ?x <knows> ?x . }");
  ASSERT_TRUE(query.ok());
  ReferenceEvaluator eval(&g);
  auto result = eval.Evaluate(**query);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->NumRows(), 1u);
}

TEST_F(ReferenceEvaluatorTest, UnboundPropertyPattern) {
  BindingTable t = Run("SELECT ?pp { <o1> ?pp <p1> . }");
  ASSERT_EQ(t.NumRows(), 1u);
  EXPECT_EQ(g_.dict().Get(t.rows()[0][0]).text, "product");
}

}  // namespace
}  // namespace rapida::analytics
