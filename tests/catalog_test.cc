#include "workload/catalog.h"

#include <gtest/gtest.h>

#include "analytics/reference_evaluator.h"
#include "engines/engines.h"
#include "sparql/parser.h"
#include "workload/bsbm.h"
#include "workload/chem2bio.h"
#include "workload/pubmed.h"

namespace rapida::workload {
namespace {

using engine::Dataset;
using engine::ExecStats;

rdf::Graph SmallGraphFor(const std::string& dataset) {
  if (dataset == "bsbm") {
    BsbmConfig cfg;
    cfg.num_products = 300;
    cfg.offers_per_product = 2.5;
    return GenerateBsbm(cfg);
  }
  if (dataset == "chem") {
    ChemConfig cfg;
    cfg.num_assays = 500;
    cfg.num_publications = 1200;
    return GenerateChem2Bio(cfg);
  }
  PubmedConfig cfg;
  cfg.num_publications = 500;
  cfg.mesh_per_publication = 3.0;
  cfg.chemicals_per_publication = 2.0;
  return GeneratePubmed(cfg);
}

/// Shared dataset per workload (built once; the graph dictionary grows as
/// engines intern computed values, which is fine).
Dataset* DatasetFor(const std::string& name) {
  static auto* cache = new std::map<std::string, std::unique_ptr<Dataset>>();
  auto it = cache->find(name);
  if (it == cache->end()) {
    it = cache->emplace(name,
                        std::make_unique<Dataset>(SmallGraphFor(name)))
             .first;
  }
  return it->second.get();
}

class CatalogQueryTest : public ::testing::TestWithParam<std::string> {};

TEST_P(CatalogQueryTest, AllEnginesMatchReference) {
  auto cq = FindQuery(GetParam());
  ASSERT_TRUE(cq.ok()) << cq.status();
  Dataset* dataset = DatasetFor((*cq)->dataset);

  auto parsed = sparql::ParseQuery((*cq)->sparql);
  ASSERT_TRUE(parsed.ok()) << (*cq)->id << ": " << parsed.status();
  auto query = analytics::AnalyzeQuery(**parsed);
  ASSERT_TRUE(query.ok()) << (*cq)->id << ": " << query.status();

  analytics::ReferenceEvaluator ref(&dataset->graph());
  auto expected = ref.Evaluate(**parsed);
  ASSERT_TRUE(expected.ok()) << expected.status();
  std::vector<std::string> expected_rows =
      expected->ToSortedStrings(dataset->dict());
  // The data must actually exercise the query.
  EXPECT_GT(expected_rows.size(), 0u)
      << (*cq)->id << " returns no rows — generator/query mismatch";

  mr::Cluster cluster(mr::ClusterConfig{}, &dataset->dfs());
  for (const auto& eng : engine::MakeAllEngines()) {
    ExecStats stats;
    auto result = eng->Execute(*query, dataset, &cluster, &stats);
    if (!result.ok()) {
      ADD_FAILURE() << (*cq)->id << " on " << eng->name() << ": "
                    << result.status();
      continue;
    }
    EXPECT_EQ(result->ToSortedStrings(dataset->dict()), expected_rows)
        << (*cq)->id << " mismatch on " << eng->name();
    EXPECT_GE(stats.workflow.NumCycles(), 1) << eng->name();
  }
}

std::vector<std::string> AllQueryIds() {
  std::vector<std::string> ids;
  for (const CatalogQuery& q : Catalog()) ids.push_back(q.id);
  return ids;
}

INSTANTIATE_TEST_SUITE_P(AllQueries, CatalogQueryTest,
                         ::testing::ValuesIn(AllQueryIds()),
                         [](const ::testing::TestParamInfo<std::string>& i) {
                           // Test names must be identifiers: MG-OPT -> MG_OPT.
                           std::string name = i.param;
                           for (char& c : name) {
                             if (c == '-') c = '_';
                           }
                           return name;
                         });

TEST(CatalogTest, LookupAndListing) {
  EXPECT_TRUE(FindQuery("G1").ok());
  EXPECT_TRUE(FindQuery("MG18").ok());
  EXPECT_FALSE(FindQuery("G99").ok());
  // G1-4, MG1-4, MG-OPT, MG-UNION, AQ1, R1
  EXPECT_EQ(QueriesForDataset("bsbm").size(), 12u);
  EXPECT_EQ(QueriesForDataset("chem").size(), 10u);  // G5-9, MG6-10
  EXPECT_EQ(QueriesForDataset("pubmed").size(), 10u);  // MG11-18, MG13F, R2
}

TEST(CatalogTest, AllQueriesParseAndAnalyze) {
  for (const CatalogQuery& q : Catalog()) {
    auto parsed = sparql::ParseQuery(q.sparql);
    ASSERT_TRUE(parsed.ok()) << q.id << ": " << parsed.status();
    auto analyzed = analytics::AnalyzeQuery(**parsed);
    EXPECT_TRUE(analyzed.ok()) << q.id << ": " << analyzed.status();
  }
}

TEST(CatalogTest, MultiGroupingQueriesOverlap) {
  // Every MG query is built from two overlapping patterns — the premise
  // of the composite rewriting. (Verifies the catalog exercises the
  // optimization rather than the fallback path.)
  for (const CatalogQuery& q : Catalog()) {
    if (q.id[0] != 'M' && q.id != "AQ1") continue;
    // MG-OPT / MG-UNION exercise the OPTIONAL/UNION fallback path by
    // design — composite star rewriting covers conjunctive patterns only.
    if (q.id == "MG-OPT" || q.id == "MG-UNION") continue;
    auto parsed = sparql::ParseQuery(q.sparql);
    ASSERT_TRUE(parsed.ok());
    auto analyzed = analytics::AnalyzeQuery(**parsed);
    ASSERT_TRUE(analyzed.ok()) << q.id;
    ASSERT_EQ(analyzed->groupings.size(), 2u) << q.id;
    ntga::OverlapResult r = ntga::FindOverlap(analyzed->groupings[0].pattern,
                                              analyzed->groupings[1].pattern);
    EXPECT_TRUE(r.overlaps) << q.id << ": " << r.explanation;
  }
}

}  // namespace
}  // namespace rapida::workload
