#include "storage/artifact_store.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "analytics/analytical_query.h"
#include "analytics/reference_evaluator.h"
#include "engines/dataset.h"
#include "engines/engines.h"
#include "mapreduce/cluster.h"
#include "mapreduce/record_io.h"
#include "rdf/graph.h"
#include "rdf/graph_index.h"
#include "sparql/parser.h"
#include "storage/ivm.h"
#include "workload/catalog.h"

namespace rapida::storage {
namespace {

namespace fs = std::filesystem;

std::string TempDir(const std::string& name) {
  std::string dir = ::testing::TempDir() + "rapida_storage_" + name;
  std::error_code ec;
  fs::remove_all(dir, ec);
  return dir;
}

// ---------------------------------------------------------------------------
// Record I/O payload format.

TEST(RecordIoTest, ColumnarRoundTrip) {
  mr::ColumnarRecords records;
  records.Append("k1", "value one");
  records.Append("", "empty key");
  records.Append("k3", "");
  records.Append(std::string("\x00\x01\xff", 3), std::string("\xfe\x00", 2));

  std::string bytes;
  mr::AppendColumnarRecords(records, &bytes);

  mr::ColumnarRecords decoded;
  ASSERT_TRUE(mr::ParseColumnarRecords(bytes, &decoded).ok());
  ASSERT_EQ(decoded.size(), records.size());
  for (size_t i = 0; i < records.size(); ++i) {
    EXPECT_EQ(decoded.key(i), records.key(i));
    EXPECT_EQ(decoded.value(i), records.value(i));
    // Derived columns are re-stamped, not stored.
    EXPECT_EQ(decoded.key_prefix(i), records.key_prefix(i));
    EXPECT_EQ(decoded.key_hash(i), records.key_hash(i));
  }
}

TEST(RecordIoTest, EveryTruncationIsTypedDataLoss) {
  mr::ColumnarRecords records;
  records.Append("alpha", "12345");
  records.Append("beta", "67");
  std::string bytes;
  mr::AppendColumnarRecords(records, &bytes);

  for (size_t cut = 0; cut < bytes.size(); ++cut) {
    mr::ColumnarRecords decoded;
    Status st =
        mr::ParseColumnarRecords(std::string_view(bytes).substr(0, cut),
                                 &decoded);
    EXPECT_EQ(st.code(), Code::kDataLoss) << "prefix of " << cut << " bytes";
  }
  // Trailing garbage is corruption too, not silently ignored.
  mr::ColumnarRecords decoded;
  EXPECT_EQ(mr::ParseColumnarRecords(bytes + "x", &decoded).code(),
            Code::kDataLoss);
}

TEST(RecordIoTest, RecordBatchRoundTrip) {
  mr::RecordBatch batch;
  batch.Add("a", "1");
  batch.Add("b", "2");
  std::string bytes;
  mr::AppendRecordBatch(batch, &bytes);

  mr::RecordBatch decoded;
  ASSERT_TRUE(mr::ParseRecordBatch(bytes, &decoded).ok());
  ASSERT_EQ(decoded.columns.size(), 1u);
  ASSERT_EQ(decoded.columns[0]->size(), 2u);
  EXPECT_EQ(decoded.columns[0]->key(0), "a");
  EXPECT_EQ(decoded.columns[0]->value(1), "2");
}

// ---------------------------------------------------------------------------
// Table (de)serialization: TermId-free, restart-safe.

TEST(SerializeTableTest, RoundTripsAcrossDictionaries) {
  rdf::Dictionary dict;
  analytics::BindingTable table({"s", "v", "n"});
  table.AddRow({dict.InternIri("http://x/a"),
                dict.Intern(rdf::Term::Literal("plain")),
                dict.InternInt(42)});
  table.AddRow({dict.Intern(rdf::Term::Blank("b0")), rdf::kInvalidTermId,
                dict.Intern(rdf::Term::Literal(
                    "3.5", "http://www.w3.org/2001/XMLSchema#double"))});

  mr::RecordBatch rows = SerializeTable(table, dict);

  // A fresh dictionary: no TermId from the writer survives.
  rdf::Dictionary fresh;
  fresh.InternIri("http://unrelated/padding");  // skew the id space
  auto decoded = DeserializeTable(rows, {"s", "v", "n"}, &fresh);
  ASSERT_TRUE(decoded.ok()) << decoded.status();
  EXPECT_EQ(decoded->ToSortedStrings(fresh), table.ToSortedStrings(dict));
  // The unbound cell survived as unbound.
  EXPECT_EQ(decoded->rows()[1][1], rdf::kInvalidTermId);
}

TEST(SerializeTableTest, MalformedCellsAreDataLoss) {
  mr::RecordBatch rows;
  rows.Add("", "\x09garbage");  // unknown cell kind tag
  rdf::Dictionary dict;
  EXPECT_EQ(DeserializeTable(rows, {"a"}, &dict).status().code(),
            Code::kDataLoss);

  mr::RecordBatch wrong_arity;
  wrong_arity.Add("", std::string(1, '\x00'));  // one cell, two columns
  EXPECT_EQ(DeserializeTable(wrong_arity, {"a", "b"}, &dict).status().code(),
            Code::kDataLoss);
}

// ---------------------------------------------------------------------------
// Factorized (d-representation) artifact rows.

/// subjects x (mesh cross chemical): the decompressed star-join shape
/// FactorizeTable is built to recognize. 4 x 5 x 6 = 120 flat rows become
/// 4 groups of 1 + 5 + 6 records.
analytics::BindingTable CrossProductTable(rdf::Dictionary* dict) {
  analytics::BindingTable table({"p", "mesh", "chem"});
  for (int s = 0; s < 4; ++s) {
    rdf::TermId subj = dict->InternIri("http://x/pub" + std::to_string(s));
    std::vector<rdf::TermId> mesh, chem;
    for (int m = 0; m < 5; ++m) {
      mesh.push_back(dict->InternIri("http://x/mesh" + std::to_string(s) +
                                     "_" + std::to_string(m)));
    }
    for (int c = 0; c < 6; ++c) {
      chem.push_back(dict->InternIri("http://x/chem" + std::to_string(s) +
                                     "_" + std::to_string(c)));
    }
    for (rdf::TermId m : mesh) {
      for (rdf::TermId c : chem) table.AddRow({subj, m, c});
    }
  }
  return table;
}

TEST(FactorizeTableTest, CrossProductRoundTripsSmaller) {
  rdf::Dictionary dict;
  analytics::BindingTable table = CrossProductTable(&dict);

  Artifact art;
  art.meta.columns = {"p", "mesh", "chem"};
  ASSERT_TRUE(FactorizeTable(table, dict, &art.rows, &art.meta.factorization));
  EXPECT_EQ(art.meta.factorization, "b:0|f:1|f:2");

  // 4 groups x (1 base + 5 + 6 factor records) instead of 120 rows.
  size_t records = 0;
  for (const auto& store : art.rows.columns) records += store->size();
  EXPECT_EQ(records, 4u * 12u);

  uint64_t fact_bytes = 0, flat_bytes = 0;
  for (const auto& store : art.rows.columns) {
    fact_bytes += store->LogicalBytes();
  }
  for (const auto& store : SerializeTable(table, dict).columns) {
    flat_bytes += store->LogicalBytes();
  }
  EXPECT_LT(fact_bytes * 5, flat_bytes);  // >= 5x smaller at this fanout

  rdf::Dictionary fresh;
  auto decoded = DeserializeArtifact(art, &fresh);
  ASSERT_TRUE(decoded.ok()) << decoded.status();
  ASSERT_EQ(decoded->NumRows(), table.NumRows());
  // Byte-identical including row order, not just as a multiset.
  for (size_t r = 0; r < table.NumRows(); ++r) {
    for (size_t c = 0; c < 3; ++c) {
      EXPECT_EQ(fresh.Get(decoded->rows()[r][c]).text,
                dict.Get(table.rows()[r][c]).text)
          << "row " << r << " col " << c;
    }
  }
}

TEST(FactorizeTableTest, NonProductTablesStayFlat) {
  rdf::Dictionary dict;
  // A ragged run: subject a has pairs (m0,c0) and (m1,c1) — two distinct
  // values per column but only 2 rows, not the 4 a cross product needs.
  analytics::BindingTable ragged({"p", "m", "c"});
  rdf::TermId a = dict.InternIri("http://x/a");
  ragged.AddRow({a, dict.InternIri("http://x/m0"), dict.InternIri("http://x/c0")});
  ragged.AddRow({a, dict.InternIri("http://x/m1"), dict.InternIri("http://x/c1")});
  mr::RecordBatch rows;
  std::string spec;
  EXPECT_FALSE(FactorizeTable(ragged, dict, &rows, &spec));

  // A group-of-1 aggregate result factorizes trivially but saves nothing —
  // the size guard keeps it flat.
  analytics::BindingTable aggregates({"k", "n"});
  for (int i = 0; i < 8; ++i) {
    aggregates.AddRow({dict.InternIri("http://x/k" + std::to_string(i)),
                       dict.InternInt(i)});
  }
  EXPECT_FALSE(FactorizeTable(aggregates, dict, &rows, &spec));

  // Single-column tables have nothing to factor.
  analytics::BindingTable narrow({"k"});
  narrow.AddRow({dict.InternIri("http://x/k")});
  EXPECT_FALSE(FactorizeTable(narrow, dict, &rows, &spec));
}

TEST(FactorizeTableTest, MalformedFactorizedArtifactsAreDataLoss) {
  rdf::Dictionary dict;
  Artifact art;
  art.meta.columns = {"p", "m"};
  art.meta.factorization = "b:0|f:1";

  // A factor record before any group base.
  art.rows = mr::RecordBatch();
  {
    std::string cell;
    cell.push_back('\x01');  // IRI
    cell += std::string(4, '\x00');  // empty text
    art.rows.Add("f0", cell);
  }
  EXPECT_EQ(DeserializeArtifact(art, &dict).status().code(), Code::kDataLoss);

  // A factor index outside the spec.
  art.rows = mr::RecordBatch();
  {
    std::string cell;
    cell.push_back('\x01');
    cell += std::string(4, '\x00');
    art.rows.Add("g", cell);
    art.rows.Add("f7", cell);
  }
  EXPECT_EQ(DeserializeArtifact(art, &dict).status().code(), Code::kDataLoss);

  // A spec that misses a column entirely.
  Artifact bad_spec;
  bad_spec.meta.columns = {"p", "m", "c"};
  bad_spec.meta.factorization = "b:0|f:1";
  EXPECT_EQ(DeserializeArtifact(bad_spec, &dict).status().code(),
            Code::kDataLoss);
}

// ---------------------------------------------------------------------------
// Artifact store: cold write / warm read, corruption, skew, eviction.

Artifact MakeArtifact(const std::string& fp, uint64_t hash,
                      const std::string& dataset, int rows = 3) {
  rdf::Dictionary dict;
  analytics::BindingTable table({"x", "y"});
  for (int i = 0; i < rows; ++i) {
    table.AddRow({dict.InternIri("http://x/r" + std::to_string(i)),
                  dict.InternInt(i)});
  }
  Artifact a;
  a.meta.plan_fingerprint = fp;
  a.meta.content_hash = hash;
  a.meta.dataset = dataset;
  a.meta.canonical_query = "SELECT ?x ?y { ?x <p> ?y . }";
  a.meta.ivm_class = IvmClassName(IvmClass::kAppend);
  a.meta.columns = {"x", "y"};
  a.rows = SerializeTable(table, dict);
  return a;
}

TEST(ArtifactStoreTest, FactorizedArtifactsPersistAndCountInStats) {
  rdf::Dictionary dict;
  analytics::BindingTable table = CrossProductTable(&dict);
  Artifact art = MakeArtifact("fact", 7, "pubmed");
  art.meta.columns = {"p", "mesh", "chem"};
  ASSERT_TRUE(FactorizeTable(table, dict, &art.rows, &art.meta.factorization));

  ArtifactStore::Options opts;
  opts.dir = TempDir("fact");
  {
    auto store = ArtifactStore::Open(opts);
    ASSERT_TRUE(store.ok());
    ASSERT_TRUE((*store)->Put(art).ok());
    ASSERT_TRUE((*store)->Put(MakeArtifact("flat", 7, "pubmed")).ok());
    EXPECT_EQ((*store)->stats().artifacts, 2u);
    EXPECT_EQ((*store)->stats().factorized, 1u);
    EXPECT_NE((*store)->StatsJson().find("\"factorized_artifacts\":1"),
              std::string::npos);
  }
  // The spec (and the counter) survive a restart.
  auto store = ArtifactStore::Open(opts);
  ASSERT_TRUE(store.ok());
  EXPECT_EQ((*store)->stats().factorized, 1u);
  auto got = (*store)->Get("fact", 7);
  ASSERT_TRUE(got.ok()) << got.status();
  EXPECT_EQ(got->meta.factorization, "b:0|f:1|f:2");
  rdf::Dictionary fresh;
  auto decoded = DeserializeArtifact(*got, &fresh);
  ASSERT_TRUE(decoded.ok()) << decoded.status();
  EXPECT_EQ(decoded->NumRows(), 120u);
  // The factorized file on disk is charged at its (small) serialized
  // size: well under what 120 flat rows of IRIs would cost.
  EXPECT_LT((*store)->stats().bytes_used, 4096u);
}

TEST(ArtifactStoreTest, ColdWriteWarmReadAcrossOpens) {
  ArtifactStore::Options opts;
  opts.dir = TempDir("warm");
  {
    auto store = ArtifactStore::Open(opts);
    ASSERT_TRUE(store.ok()) << store.status();
    ASSERT_TRUE((*store)->Put(MakeArtifact("fp1", 7, "ds")).ok());
    EXPECT_EQ((*store)->stats().puts, 1u);
    EXPECT_EQ((*store)->stats().artifacts, 1u);
  }
  // A second open over the same directory — the restart path.
  auto store = ArtifactStore::Open(opts);
  ASSERT_TRUE(store.ok()) << store.status();
  EXPECT_EQ((*store)->stats().artifacts, 1u);

  auto art = (*store)->Get("fp1", 7);
  ASSERT_TRUE(art.ok()) << art.status();
  EXPECT_EQ(art->meta.plan_fingerprint, "fp1");
  EXPECT_EQ(art->meta.content_hash, 7u);
  EXPECT_EQ(art->meta.dataset, "ds");
  EXPECT_EQ(art->meta.ivm_class, "append");
  ASSERT_EQ(art->meta.columns.size(), 2u);

  rdf::Dictionary dict;
  auto table = DeserializeTable(art->rows, art->meta.columns, &dict);
  ASSERT_TRUE(table.ok()) << table.status();
  EXPECT_EQ(table->NumRows(), 3u);

  EXPECT_EQ((*store)->Get("fp1", 8).status().code(), Code::kNotFound);
  EXPECT_EQ((*store)->Get("other", 7).status().code(), Code::kNotFound);
}

TEST(ArtifactStoreTest, ListForDatasetFiltersByKey) {
  ArtifactStore::Options opts;
  opts.dir = TempDir("list");
  auto store = ArtifactStore::Open(opts);
  ASSERT_TRUE(store.ok());
  ASSERT_TRUE((*store)->Put(MakeArtifact("fp1", 7, "ds")).ok());
  ASSERT_TRUE((*store)->Put(MakeArtifact("fp2", 7, "ds")).ok());
  ASSERT_TRUE((*store)->Put(MakeArtifact("fp3", 8, "ds")).ok());   // old hash
  ASSERT_TRUE((*store)->Put(MakeArtifact("fp4", 7, "other")).ok());
  EXPECT_EQ((*store)->ListForDataset("ds", 7).size(), 2u);
  EXPECT_EQ((*store)->ListForDataset("ds", 8).size(), 1u);
  EXPECT_EQ((*store)->ListForDataset("nope", 7).size(), 0u);
}

TEST(ArtifactStoreTest, TruncationIsDataLossAndQuarantines) {
  ArtifactStore::Options opts;
  opts.dir = TempDir("trunc");
  auto store = ArtifactStore::Open(opts);
  ASSERT_TRUE(store.ok());
  ASSERT_TRUE((*store)->Put(MakeArtifact("fp1", 7, "ds")).ok());

  std::string path =
      opts.dir + "/" + ArtifactStore::ArtifactName("fp1", 7);
  uint64_t full = fs::file_size(path);
  fs::resize_file(path, full / 2);

  EXPECT_EQ((*store)->Get("fp1", 7).status().code(), Code::kDataLoss);
  EXPECT_EQ((*store)->stats().corrupt, 1u);
  // Quarantined: the artifact stops being offered, the bytes remain for
  // forensics under a .quarantine name.
  EXPECT_EQ((*store)->Get("fp1", 7).status().code(), Code::kNotFound);
  EXPECT_FALSE(fs::exists(path));
}

TEST(ArtifactStoreTest, BitFlipsAreDataLossNeverACrash) {
  // Flip one byte at a sweep of offsets; every position must produce a
  // typed error (or, for bytes past the checked payload, a clean read) —
  // never a crash or a malformed decode.
  ArtifactStore::Options opts;
  opts.dir = TempDir("flip");
  auto store = ArtifactStore::Open(opts);
  ASSERT_TRUE(store.ok());
  Artifact clean = MakeArtifact("fp1", 7, "ds");

  std::string path = opts.dir + "/" + ArtifactStore::ArtifactName("fp1", 7);
  ASSERT_TRUE((*store)->Put(clean).ok());
  std::ifstream in(path, std::ios::binary);
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  in.close();

  for (size_t i = 0; i < bytes.size(); i += 7) {
    std::string corrupted = bytes;
    corrupted[i] = static_cast<char>(corrupted[i] ^ 0x20);
    {
      std::ofstream out(path, std::ios::binary | std::ios::trunc);
      out.write(corrupted.data(),
                static_cast<std::streamsize>(corrupted.size()));
    }
    auto got = (*store)->Get("fp1", 7);
    if (!got.ok()) {
      EXPECT_TRUE(got.status().code() == Code::kDataLoss ||
                  got.status().code() == Code::kUnimplemented)
          << "flip at " << i << ": " << got.status().ToString();
      // Re-publish (the flip may have quarantined the file).
      ASSERT_TRUE((*store)->Put(clean).ok());
    }
  }
}

TEST(ArtifactStoreTest, FutureFormatIsUnimplementedAndLeftAlone) {
  ArtifactStore::Options opts;
  opts.dir = TempDir("skew");
  auto store = ArtifactStore::Open(opts);
  ASSERT_TRUE(store.ok());
  ASSERT_TRUE((*store)->Put(MakeArtifact("fp1", 7, "ds")).ok());

  std::string path = opts.dir + "/" + ArtifactStore::ArtifactName("fp1", 7);
  std::fstream f(path, std::ios::binary | std::ios::in | std::ios::out);
  f.seekp(7);  // the trailing container-version digit of "RAPSTOR1"
  f.put('2');
  f.close();

  EXPECT_EQ((*store)->Get("fp1", 7).status().code(), Code::kUnimplemented);
  // Not quarantined — a newer writer owns this file.
  EXPECT_TRUE(fs::exists(path));
  EXPECT_EQ((*store)->stats().corrupt, 0u);

  // A restart skips (but does not destroy) the future file.
  auto reopened = ArtifactStore::Open(opts);
  ASSERT_TRUE(reopened.ok());
  EXPECT_EQ((*reopened)->stats().artifacts, 0u);
  EXPECT_TRUE(fs::exists(path));
}

TEST(ArtifactStoreTest, LruEvictionUnderByteBudget) {
  Artifact probe = MakeArtifact("probe", 0, "ds");
  ArtifactStore::Options opts;
  opts.dir = TempDir("lru_probe");
  auto probe_store = ArtifactStore::Open(opts);
  ASSERT_TRUE(probe_store.ok());
  ASSERT_TRUE((*probe_store)->Put(probe).ok());
  uint64_t one = (*probe_store)->stats().bytes_used;
  ASSERT_GT(one, 0u);

  ArtifactStore::Options budgeted;
  budgeted.dir = TempDir("lru");
  budgeted.byte_budget = 2 * one + one / 2;  // room for two artifacts
  auto store = ArtifactStore::Open(budgeted);
  ASSERT_TRUE(store.ok());
  ASSERT_TRUE((*store)->Put(MakeArtifact("a", 1, "ds")).ok());
  ASSERT_TRUE((*store)->Put(MakeArtifact("b", 1, "ds")).ok());
  EXPECT_EQ((*store)->stats().evictions, 0u);

  // Touch "a" so "b" is the LRU victim.
  ASSERT_TRUE((*store)->Get("a", 1).ok());
  ASSERT_TRUE((*store)->Put(MakeArtifact("c", 1, "ds")).ok());
  EXPECT_EQ((*store)->stats().evictions, 1u);
  EXPECT_EQ((*store)->Get("b", 1).status().code(), Code::kNotFound);
  EXPECT_TRUE((*store)->Get("a", 1).ok());
  EXPECT_TRUE((*store)->Get("c", 1).ok());
  EXPECT_LE((*store)->stats().bytes_used, budgeted.byte_budget);

  // An artifact bigger than the whole budget must not wedge the store:
  // it becomes the only resident artifact rather than an eviction loop.
  ArtifactStore::Options tiny;
  tiny.dir = TempDir("lru_tiny");
  tiny.byte_budget = one / 2;
  auto small = ArtifactStore::Open(tiny);
  ASSERT_TRUE(small.ok());
  ASSERT_TRUE((*small)->Put(MakeArtifact("big", 1, "ds")).ok());
  EXPECT_TRUE((*small)->Get("big", 1).ok());
}

// ---------------------------------------------------------------------------
// Maintainability classification.

/// Products with features and offers — enough structure for two-star
/// patterns with aggregates.
rdf::Graph BuildMiniGraph() {
  rdf::Graph g;
  for (const char* p : {"p1", "p2", "p3"}) {
    g.AddIri(p, rdf::kRdfType, "PT1");
  }
  g.AddIri("p1", "feature", "f1");
  g.AddIri("p2", "feature", "f1");
  g.AddIri("p3", "feature", "f2");
  struct Offer {
    const char* id;
    const char* product;
    int price;
  };
  for (const Offer& o : std::initializer_list<Offer>{
           {"o1", "p1", 100}, {"o2", "p2", 80}, {"o3", "p3", 300}}) {
    g.AddIri(o.id, "product", o.product);
    g.AddInt(o.id, "price", o.price);
  }
  return g;
}

IvmDecision Classify(const std::string& sparql) {
  auto parsed = sparql::ParseQuery(sparql);
  EXPECT_TRUE(parsed.ok()) << parsed.status();
  auto query = analytics::AnalyzeQuery(**parsed);
  EXPECT_TRUE(query.ok()) << query.status();
  return ClassifyMaintainability(*query);
}

TEST(ClassifyTest, PatchableClasses) {
  EXPECT_EQ(Classify("SELECT ?f (SUM(?pr) AS ?s) (COUNT(?pr) AS ?c) { "
                     "?p <feature> ?f . ?o <product> ?p . ?o <price> ?pr . } "
                     "GROUP BY ?f")
                .cls,
            IvmClass::kGroupAgg);
  EXPECT_EQ(Classify("SELECT ?f (MIN(?pr) AS ?lo) (MAX(?pr) AS ?hi) { "
                     "?o <product> ?f . ?o <price> ?pr . } GROUP BY ?f")
                .cls,
            IvmClass::kGroupAgg);
  // DISTINCT desugars to an aggregate-free grouping on the projected
  // columns — either spelling classifies the same way.
  EXPECT_EQ(Classify("SELECT DISTINCT ?f { ?p <feature> ?f . }").cls,
            IvmClass::kDistinct);
  EXPECT_EQ(Classify("SELECT ?f { ?p <feature> ?f . } GROUP BY ?f").cls,
            IvmClass::kDistinct);
}

TEST(ClassifyTest, AppendClassCoversBareProjectionAlgebra) {
  // Multiplicity-preserving projections are outside the MapReduce engine
  // subset (the analyzer rejects them with guidance) …
  auto parsed = sparql::ParseQuery(
      "SELECT ?p ?pr { ?o <product> ?p . ?o <price> ?pr . }");
  ASSERT_TRUE(parsed.ok());
  auto rejected = analytics::AnalyzeQuery(**parsed);
  ASSERT_FALSE(rejected.ok());
  EXPECT_EQ(rejected.status().code(), Code::kInvalidArgument);

  // … but the patch algebra still covers them: an aggregate-free grouping
  // with no keys (the shape a future projection subset would produce)
  // classifies kAppend.
  auto distinct = sparql::ParseQuery(
      "SELECT DISTINCT ?p ?pr { ?o <product> ?p . ?o <price> ?pr . }");
  ASSERT_TRUE(distinct.ok());
  auto query = analytics::AnalyzeQuery(**distinct);
  ASSERT_TRUE(query.ok()) << query.status();
  query->groupings[0].group_by.clear();
  query->top_distinct = false;
  EXPECT_EQ(ClassifyMaintainability(*query).cls, IvmClass::kAppend);
}

TEST(ClassifyTest, NonPatchableConstructs) {
  // AVG does not merge from partial states we store.
  EXPECT_EQ(Classify("SELECT ?f (AVG(?pr) AS ?a) { ?o <product> ?f . "
                     "?o <price> ?pr . } GROUP BY ?f")
                .cls,
            IvmClass::kNone);
  // HAVING re-filters groups after the merge.
  EXPECT_EQ(Classify("SELECT ?f (SUM(?pr) AS ?s) { ?o <product> ?f . "
                     "?o <price> ?pr . } GROUP BY ?f HAVING (?s > 10)")
                .cls,
            IvmClass::kNone);
  // Solution modifiers reshape the final row set.
  EXPECT_EQ(Classify("SELECT ?f (SUM(?pr) AS ?s) { ?o <product> ?f . "
                     "?o <price> ?pr . } GROUP BY ?f ORDER BY ?s LIMIT 5")
                .cls,
            IvmClass::kNone);
  // OPTIONAL (non-conjunctive) patterns can retract the unbound row.
  EXPECT_EQ(Classify("SELECT ?p (COUNT(?o) AS ?c) { ?o <product> ?p . "
                     "OPTIONAL { ?o <vendor> ?v . } } GROUP BY ?p")
                .cls,
            IvmClass::kNone);
  // Every kNone decision names its blocker for EXPLAIN.
  EXPECT_FALSE(Classify("SELECT DISTINCT ?p { ?o <product> ?p . } LIMIT 1")
                   .detail.empty());
}

TEST(ClassifyTest, DistinctProjectionsExecuteOnEveryEngine) {
  // The DISTINCT desugaring only earns its keep if the zero-aggregate
  // grouping it produces actually runs on the MapReduce engines; every
  // engine must agree with the reference evaluator.
  for (const char* sparql :
       {"SELECT DISTINCT ?f { ?p <feature> ?f . }",
        "SELECT DISTINCT ?f ?pr { ?p <feature> ?f . ?o <product> ?p . "
        "?o <price> ?pr . }",
        "SELECT ?f { ?p a <PT1> . ?p <feature> ?f . } GROUP BY ?f"}) {
    auto parsed = sparql::ParseQuery(sparql);
    ASSERT_TRUE(parsed.ok()) << parsed.status();
    auto query = analytics::AnalyzeQuery(**parsed);
    ASSERT_TRUE(query.ok()) << sparql << "\n" << query.status();

    std::vector<std::string> expected;
    {
      rdf::Graph oracle = BuildMiniGraph();
      analytics::ReferenceEvaluator ref(&oracle);
      auto r = ref.Evaluate(**parsed);
      ASSERT_TRUE(r.ok()) << r.status();
      expected = r->ToSortedStrings(oracle.dict());
    }

    for (auto& engine : engine::MakeAllEngines()) {
      engine::Dataset dataset(BuildMiniGraph());
      mr::Cluster cluster(mr::ClusterConfig{}, &dataset.dfs());
      auto result = engine->Execute(*query, &dataset, &cluster, nullptr);
      ASSERT_TRUE(result.ok()) << engine->name() << ": " << sparql << "\n"
                               << result.status();
      EXPECT_EQ(result->ToSortedStrings(dataset.dict()), expected)
          << engine->name() << ": " << sparql;
    }
  }
}

TEST(ClassifyTest, MultiGroupingCatalogQueriesAreNotPatchable) {
  auto mg1 = workload::FindQuery("MG1");
  ASSERT_TRUE(mg1.ok());
  EXPECT_EQ(Classify((*mg1)->sparql).cls, IvmClass::kNone);
}

TEST(ClassifyTest, ClassNamesRoundTrip) {
  for (IvmClass cls : {IvmClass::kNone, IvmClass::kAppend, IvmClass::kDistinct,
                       IvmClass::kGroupAgg}) {
    EXPECT_EQ(IvmClassFromName(IvmClassName(cls)), cls);
  }
  EXPECT_EQ(IvmClassFromName("garbled"), IvmClass::kNone);
}

// ---------------------------------------------------------------------------
// Incremental patching vs full recompute.

struct Mutation {
  std::string s, p;
  rdf::Term o;
};

/// Applies `adds` to the graph, returning the delta (actually-new triples,
/// dictionary-encoded) the way engine::Dataset::AddTriples reports it.
DeltaPartition ApplyAdds(rdf::Graph* g, const std::vector<Mutation>& adds) {
  std::vector<rdf::Triple> added;
  for (const Mutation& m : adds) {
    size_t before = g->size();
    g->Add(g->dict().InternIri(m.s), g->dict().InternIri(m.p),
           g->dict().Intern(m.o));
    if (g->size() > before) added.push_back(g->triples().back());
  }
  return DeltaPartition::FromAdded(std::move(added));
}

/// Patches the pre-mutation result and checks it equals a full recompute
/// on the post-mutation graph.
void ExpectPatchMatchesRecompute(const std::string& sparql,
                                 const std::vector<Mutation>& adds) {
  auto parsed = sparql::ParseQuery(sparql);
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  auto query = analytics::AnalyzeQuery(**parsed);
  ASSERT_TRUE(query.ok()) << query.status();
  IvmDecision decision = ClassifyMaintainability(*query);
  ASSERT_NE(decision.cls, IvmClass::kNone) << decision.detail;

  rdf::Graph graph = BuildMiniGraph();
  analytics::BindingTable base;
  {
    analytics::ReferenceEvaluator ref(&graph);
    auto r = ref.Evaluate(**parsed);
    ASSERT_TRUE(r.ok()) << r.status();
    base = std::move(*r);
  }

  DeltaPartition delta = ApplyAdds(&graph, adds);
  rdf::GraphIndex index(graph);
  auto patched =
      PatchResult(*query, decision.cls, base, delta, index, &graph.dict());
  ASSERT_TRUE(patched.ok()) << patched.status();

  analytics::ReferenceEvaluator ref(&graph);
  auto recomputed = ref.Evaluate(**parsed);
  ASSERT_TRUE(recomputed.ok()) << recomputed.status();
  EXPECT_EQ(patched->ToSortedStrings(graph.dict()),
            recomputed->ToSortedStrings(graph.dict()))
      << sparql;
}

constexpr char kSumCountByFeature[] =
    "SELECT ?f (SUM(?pr) AS ?total) (COUNT(?pr) AS ?cnt) { "
    "?p a <PT1> . ?p <feature> ?f . ?o <product> ?p . ?o <price> ?pr . } "
    "GROUP BY ?f";

TEST(PatchResultTest, GroupAggUpdatesExistingGroups) {
  // A new offer against an existing product touches only the delta star;
  // the product star binds old-only.
  ExpectPatchMatchesRecompute(
      kSumCountByFeature,
      {{"o4", "product", rdf::Term::Iri("p1")},
       {"o4", "price", rdf::Term::Literal(
                           "7", "http://www.w3.org/2001/XMLSchema#integer")}});
}

TEST(PatchResultTest, GroupAggCreatesNewGroups) {
  // A brand-new typed product with a new feature plus an offer: every star
  // of the match uses delta triples, and a group is born.
  ExpectPatchMatchesRecompute(
      kSumCountByFeature,
      {{"p4", "http://www.w3.org/1999/02/22-rdf-syntax-ns#type",
        rdf::Term::Iri("PT1")},
       {"p4", "feature", rdf::Term::Iri("f9")},
       {"o9", "product", rdf::Term::Iri("p4")},
       {"o9", "price", rdf::Term::Literal(
                           "55",
                           "http://www.w3.org/2001/XMLSchema#integer")}});
}

TEST(PatchResultTest, MinMaxMergeTakesTheBetterBound) {
  // 5 undercuts every existing minimum; 9999 beats every maximum.
  ExpectPatchMatchesRecompute(
      "SELECT ?f (MIN(?pr) AS ?lo) (MAX(?pr) AS ?hi) { "
      "?p <feature> ?f . ?o <product> ?p . ?o <price> ?pr . } GROUP BY ?f",
      {{"o5", "product", rdf::Term::Iri("p1")},
       {"o5", "price", rdf::Term::Literal(
                           "5", "http://www.w3.org/2001/XMLSchema#integer")},
       {"o6", "product", rdf::Term::Iri("p3")},
       {"o6", "price", rdf::Term::Literal(
                           "9999",
                           "http://www.w3.org/2001/XMLSchema#integer")}});
}

TEST(PatchResultTest, DistinctUnionsWithoutDuplicates) {
  // One add duplicates an existing feature (no new row), one is new.
  ExpectPatchMatchesRecompute(
      "SELECT DISTINCT ?f { ?p <feature> ?f . }",
      {{"p3", "feature", rdf::Term::Iri("f1")},
       {"p1", "feature", rdf::Term::Iri("f7")}});
}

TEST(PatchResultTest, AppendKeepsMultiplicity) {
  // The bare projection runs on the reference evaluator (it is outside the
  // MapReduce subset); its analyzed form is the DISTINCT variant with the
  // grouping keys stripped — the kAppend algebra.
  auto plain = sparql::ParseQuery(
      "SELECT ?p ?pr { ?o <product> ?p . ?o <price> ?pr . }");
  ASSERT_TRUE(plain.ok());
  auto distinct = sparql::ParseQuery(
      "SELECT DISTINCT ?p ?pr { ?o <product> ?p . ?o <price> ?pr . }");
  ASSERT_TRUE(distinct.ok());
  auto query = analytics::AnalyzeQuery(**distinct);
  ASSERT_TRUE(query.ok()) << query.status();
  query->groupings[0].group_by.clear();
  query->top_distinct = false;

  rdf::Graph graph = BuildMiniGraph();
  analytics::BindingTable base;
  {
    analytics::ReferenceEvaluator ref(&graph);
    auto r = ref.Evaluate(**plain);
    ASSERT_TRUE(r.ok()) << r.status();
    base = std::move(*r);
  }

  // o7 duplicates o2's (p2, 80) row — the appended match must not dedupe.
  DeltaPartition delta = ApplyAdds(
      &graph,
      {{"o7", "product", rdf::Term::Iri("p2")},
       {"o7", "price", rdf::Term::Literal(
                           "80",
                           "http://www.w3.org/2001/XMLSchema#integer")}});
  rdf::GraphIndex index(graph);
  auto patched = PatchResult(*query, IvmClass::kAppend, base, delta, index,
                             &graph.dict());
  ASSERT_TRUE(patched.ok()) << patched.status();

  analytics::ReferenceEvaluator ref(&graph);
  auto recomputed = ref.Evaluate(**plain);
  ASSERT_TRUE(recomputed.ok()) << recomputed.status();
  EXPECT_EQ(patched->NumRows(), base.NumRows() + 1);
  EXPECT_EQ(patched->ToSortedStrings(graph.dict()),
            recomputed->ToSortedStrings(graph.dict()));
}

TEST(PatchResultTest, IrrelevantDeltaIsIdentity) {
  // The delta touches no pattern property: the patched result must be the
  // base unchanged.
  ExpectPatchMatchesRecompute(
      "SELECT DISTINCT ?f { ?p <feature> ?f . }",
      {{"o8", "unrelated", rdf::Term::Iri("p1")}});
}

TEST(PatchResultTest, EmptyDeltaIsIdentity) {
  ExpectPatchMatchesRecompute(kSumCountByFeature, {});
}

TEST(PatchResultTest, SchemaMismatchIsInternalNotWrongData) {
  auto parsed = sparql::ParseQuery(kSumCountByFeature);
  ASSERT_TRUE(parsed.ok());
  auto query = analytics::AnalyzeQuery(**parsed);
  ASSERT_TRUE(query.ok());

  rdf::Graph graph = BuildMiniGraph();
  analytics::BindingTable wrong_schema({"not", "the", "columns"});
  DeltaPartition delta = ApplyAdds(
      &graph, {{"o4", "product", rdf::Term::Iri("p1")},
               {"o4", "price",
                rdf::Term::Literal(
                    "7", "http://www.w3.org/2001/XMLSchema#integer")}});
  rdf::GraphIndex index(graph);
  auto patched = PatchResult(*query, IvmClass::kGroupAgg, wrong_schema, delta,
                             index, &graph.dict());
  EXPECT_FALSE(patched.ok());
}

}  // namespace
}  // namespace rapida::storage
