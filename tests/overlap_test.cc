#include "ntga/overlap.h"

#include <gtest/gtest.h>

#include "sparql/parser.h"

namespace rapida::ntga {
namespace {

StarGraph Decompose(const std::string& bgp_query) {
  auto q = sparql::ParseQuery(bgp_query);
  EXPECT_TRUE(q.ok()) << q.status();
  auto sg = DecomposeToStars((*q)->where.triples);
  EXPECT_TRUE(sg.ok()) << sg.status();
  return sg.ok() ? *sg : StarGraph{};
}

// --- Figure 3, query AQ2: GP1 overlaps GP2 ---
//
// GP1: ?s1 ty PT18 . ?s2 pr ?s1 ; pc ?o1 ; ve ?o2 .
// GP2: ?s1 ty PT18 ; pf ?o3 . ?s2 pr ?s1 ; pc ?o4 .
StarGraph Aq2Gp1() {
  return Decompose(
      "SELECT ?s1 { ?s1 a <PT18> . ?s2 <pr> ?s1 ; <pc> ?o1 ; <ve> ?o2 . }");
}
StarGraph Aq2Gp2() {
  return Decompose(
      "SELECT ?s1 { ?s1 a <PT18> ; <pf> ?o3 . ?s2 <pr> ?s1 ; <pc> ?o4 . }");
}

TEST(OverlapTest, Fig3Aq2StarsOverlap) {
  StarGraph gp1 = Aq2Gp1();
  StarGraph gp2 = Aq2Gp2();
  // { ty } in overlap of Stp_a and Stp_alpha.
  EXPECT_TRUE(StarsOverlap(gp1.stars[0], gp2.stars[0]));
  // { pr, pc } in overlap of Stp_b and Stp_beta.
  EXPECT_TRUE(StarsOverlap(gp1.stars[1], gp2.stars[1]));
  // Cross pairs share nothing.
  EXPECT_FALSE(StarsOverlap(gp1.stars[0], gp2.stars[1]));
}

TEST(OverlapTest, Fig3Aq2GraphPatternsOverlap) {
  OverlapResult r = FindOverlap(Aq2Gp1(), Aq2Gp2());
  EXPECT_TRUE(r.overlaps) << r.explanation;
  ASSERT_EQ(r.mapping.size(), 2u);
  EXPECT_EQ(r.mapping[0], 0);
  EXPECT_EQ(r.mapping[1], 1);
}

// --- Figure 3, query AQ3: GP1 does NOT overlap GP2 ---
//
// GP1: ?s3 pr ?s1 ; pc ?o5 ; ve ?s4 . ?s4 cn ?o6 .   (object-subject join)
// GP2: ?s3 pr ?s1 ; pc ?o5 ; ve ?o6 . ?s4 cn ?o6 .   (object-object join)
StarGraph Aq3Gp1() {
  return Decompose(
      "SELECT ?s3 { ?s3 <pr> ?s1 ; <pc> ?o5 ; <ve> ?s4 . ?s4 <cn> ?o6 . }");
}
StarGraph Aq3Gp2() {
  return Decompose(
      "SELECT ?s3 { ?s3 <pr> ?s1 ; <pc> ?o5 ; <ve> ?o6 . ?s4 <cn> ?o6 . }");
}

TEST(OverlapTest, Fig3Aq3StarsOverlapButJoinsDiffer) {
  StarGraph gp1 = Aq3Gp1();
  StarGraph gp2 = Aq3Gp2();
  // Both star pairs overlap (props {pr,pc,ve} and {cn})...
  EXPECT_TRUE(StarsOverlap(gp1.stars[0], gp2.stars[0]));
  EXPECT_TRUE(StarsOverlap(gp1.stars[1], gp2.stars[1]));
  // ...but the join roles are not equivalent, so the graphs don't overlap.
  OverlapResult r = FindOverlap(gp1, gp2);
  EXPECT_FALSE(r.overlaps);
  EXPECT_FALSE(r.explanation.empty());
}

TEST(OverlapTest, TypeMismatchBlocksStarOverlap) {
  StarGraph a = Decompose("SELECT ?s { ?s a <PT18> ; <pc> ?x . }");
  StarGraph b = Decompose("SELECT ?s { ?s a <PT9> ; <pc> ?x . }");
  EXPECT_FALSE(StarsOverlap(a.stars[0], b.stars[0]));
}

TEST(OverlapTest, MissingTypeOnOneSideBlocksOverlap) {
  StarGraph a = Decompose("SELECT ?s { ?s a <PT18> ; <pc> ?x . }");
  StarGraph b = Decompose("SELECT ?s { ?s <pc> ?x ; <ve> ?y . }");
  EXPECT_FALSE(StarsOverlap(a.stars[0], b.stars[0]));
}

TEST(OverlapTest, DisjointPropsNoOverlap) {
  StarGraph a = Decompose("SELECT ?s { ?s <a> ?x ; <b> ?y . }");
  StarGraph b = Decompose("SELECT ?s { ?s <c> ?x ; <d> ?y . }");
  EXPECT_FALSE(StarsOverlap(a.stars[0], b.stars[0]));
}

TEST(OverlapTest, ConflictingConstantsBlockOverlap) {
  StarGraph a = Decompose("SELECT ?s { ?s <pub_type> \"News\" ; <au> ?x . }");
  StarGraph b =
      Decompose("SELECT ?s { ?s <pub_type> \"Journal\" ; <au> ?x . }");
  EXPECT_FALSE(StarsOverlap(a.stars[0], b.stars[0]));
  StarGraph c = Decompose("SELECT ?s { ?s <pub_type> \"News\" ; <au> ?y . }");
  EXPECT_TRUE(StarsOverlap(a.stars[0], c.stars[0]));
}

TEST(OverlapTest, DifferentStarCountsDoNotOverlap) {
  StarGraph a = Decompose(
      "SELECT ?s { ?s <pr> ?p . ?p <pc> ?x . ?x <cn> ?y . }");
  StarGraph b = Decompose("SELECT ?s { ?s <pr> ?p . ?p <pc> ?x . }");
  OverlapResult r = FindOverlap(a, b);
  EXPECT_FALSE(r.overlaps);
}

TEST(OverlapTest, MappingFoundForPermutedStars) {
  // GP2 lists its stars in the opposite order; matching must still find
  // the permutation.
  StarGraph gp1 = Decompose(
      "SELECT ?p { ?p a <PT1> . ?o <product> ?p ; <price> ?x . }");
  StarGraph gp2 = Decompose(
      "SELECT ?p { ?o <product> ?p ; <price> ?x ; <vendor> ?v . "
      "?p a <PT1> . }");
  OverlapResult r = FindOverlap(gp1, gp2);
  ASSERT_TRUE(r.overlaps) << r.explanation;
  EXPECT_EQ(r.mapping[0], 1);  // gp1 star0 (product) = gp2 star1
  EXPECT_EQ(r.mapping[1], 0);
}

// --- Composite construction (AQ1/AQ2 style) ---

TEST(OverlapTest, BuildCompositeAq2) {
  StarGraph gp1 = Aq2Gp1();
  StarGraph gp2 = Aq2Gp2();
  OverlapResult r = FindOverlap(gp1, gp2);
  ASSERT_TRUE(r.overlaps);
  auto comp = BuildComposite(gp1, gp2, r);
  ASSERT_TRUE(comp.ok()) << comp.status();

  ASSERT_EQ(comp->stars.size(), 2u);
  // Stp'_a: primary { ty18 }, secondary { pf }.
  EXPECT_EQ(comp->stars[0].primary.size(), 1u);
  EXPECT_EQ(comp->stars[0].secondary.size(), 1u);
  EXPECT_EQ(comp->stars[0].secondary.begin()->property, "pf");
  // Stp'_b: primary { pr, pc }, secondary { ve } (from GP1).
  EXPECT_EQ(comp->stars[1].primary.size(), 2u);
  ASSERT_EQ(comp->stars[1].secondary.size(), 1u);
  EXPECT_EQ(comp->stars[1].secondary.begin()->property, "ve");

  // α conditions: GP1 requires ve; GP2 requires pf.
  ASSERT_EQ(comp->pattern_secondary.size(), 2u);
  EXPECT_EQ(comp->pattern_secondary[0].at(1).begin()->property, "ve");
  EXPECT_EQ(comp->pattern_secondary[1].at(0).begin()->property, "pf");

  // Var maps: GP2's ?o4 (pc object) maps onto GP1's ?o1.
  EXPECT_EQ(comp->var_map[1].at("o4"), "o1");
  EXPECT_EQ(comp->var_map[1].at("s1"), "s1");
  EXPECT_EQ(comp->var_map[0].at("o2"), "o2");
}

TEST(OverlapTest, CompositeRenamesCollidingSecondaryVars) {
  // Both patterns use ?x for *different* (secondary) properties.
  StarGraph gp1 = Decompose("SELECT ?s { ?s <a> ?k ; <b> ?x . }");
  StarGraph gp2 = Decompose("SELECT ?s { ?s <a> ?k2 ; <c> ?x . }");
  OverlapResult r = FindOverlap(gp1, gp2);
  ASSERT_TRUE(r.overlaps) << r.explanation;
  auto comp = BuildComposite(gp1, gp2, r);
  ASSERT_TRUE(comp.ok());
  EXPECT_EQ(comp->var_map[0].at("x"), "x");
  EXPECT_NE(comp->var_map[1].at("x"), "x");  // renamed
}

TEST(OverlapTest, BuildCompositeRejectsNonOverlap) {
  OverlapResult r = FindOverlap(Aq3Gp1(), Aq3Gp2());
  ASSERT_FALSE(r.overlaps);
  EXPECT_FALSE(BuildComposite(Aq3Gp1(), Aq3Gp2(), r).ok());
}

TEST(OverlapTest, SinglePatternCompositeIsAllPrimary) {
  StarGraph gp = Aq2Gp1();
  CompositePattern comp = SinglePatternComposite(gp);
  ASSERT_EQ(comp.stars.size(), 2u);
  for (const CompositeStar& s : comp.stars) {
    EXPECT_TRUE(s.secondary.empty());
    EXPECT_EQ(s.primary.size(), s.triples.size());
  }
  EXPECT_EQ(comp.pattern_secondary.size(), 1u);
  EXPECT_TRUE(comp.pattern_secondary[0].empty());
}

TEST(OverlapTest, IdenticalPatternsProduceNoSecondary) {
  StarGraph gp1 = Aq2Gp1();
  StarGraph gp2 = Aq2Gp1();
  OverlapResult r = FindOverlap(gp1, gp2);
  ASSERT_TRUE(r.overlaps);
  auto comp = BuildComposite(gp1, gp2, r);
  ASSERT_TRUE(comp.ok());
  for (const CompositeStar& s : comp->stars) {
    EXPECT_TRUE(s.secondary.empty());
  }
  // Both α conditions are empty (trivially true).
  EXPECT_TRUE(comp->pattern_secondary[0].empty());
  EXPECT_TRUE(comp->pattern_secondary[1].empty());
}

}  // namespace
}  // namespace rapida::ntga
