// Sharded data plane: placement-scheme determinism, shard/channel
// mechanics (under TSan in scripts/check.sh), shuffle-byte conservation,
// the locality scheme's zero-cross guarantee for key-preserving jobs,
// per-shard output segments, and the full byte-identity matrix (every
// engine, shard counts x thread counts, both schemes) through the
// differential harness.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "mapreduce/cluster.h"
#include "mapreduce/dfs.h"
#include "mapreduce/shard.h"
#include "mapreduce/sharding.h"
#include "testing/differential.h"

namespace rapida::mr {
namespace {

// ---- placement schemes ----

TEST(ShardingSchemeTest, LocalityIsResidueOfKeyHash) {
  for (uint64_t h : {0ull, 1ull, 12345ull, 0xDEADBEEFull, ~0ull}) {
    for (int s : {2, 4, 8}) {
      EXPECT_EQ(AssignShard(h, ShardingScheme::kLocality, s),
                static_cast<int>(h % static_cast<uint64_t>(s)));
      EXPECT_EQ(OwnerShard(h, s),
                static_cast<int>(h % static_cast<uint64_t>(s)));
      // The locality scheme's whole point: home == owner for every key.
      EXPECT_EQ(AssignShard(h, ShardingScheme::kLocality, s),
                OwnerShard(h, s));
    }
  }
}

TEST(ShardingSchemeTest, SplitmixMatchesReferenceVector) {
  // splitmix64's published first output for seed 0 — pins the hash-subject
  // scheme to a cross-process, cross-platform constant: two processes (or
  // machines) partitioning the same dataset always agree on placement.
  EXPECT_EQ(Splitmix64(0), 0xE220A8397B1DCDAFull);
}

TEST(ShardingSchemeTest, AssignmentIsDeterministicAndComplete) {
  for (int s : {1, 2, 4, 8}) {
    std::vector<int> counts(static_cast<size_t>(std::max(s, 1)), 0);
    for (uint64_t h = 0; h < 4096; ++h) {
      int a = AssignShard(h, ShardingScheme::kHashSubject, s);
      EXPECT_EQ(a, AssignShard(h, ShardingScheme::kHashSubject, s));
      ASSERT_GE(a, 0);
      ASSERT_LT(a, std::max(s, 1));
      counts[static_cast<size_t>(a)]++;
    }
    // Splitmix64 spreads consecutive hashes: every shard gets work.
    for (int c : counts) EXPECT_GT(c, 0);
  }
}

TEST(ShardingSchemeTest, NamesRoundTrip) {
  EXPECT_STREQ(ShardingSchemeName(ShardingScheme::kHashSubject),
               "hash-subject");
  EXPECT_STREQ(ShardingSchemeName(ShardingScheme::kLocality), "locality");
  ShardingScheme s;
  EXPECT_TRUE(ParseShardingScheme("locality", &s));
  EXPECT_EQ(s, ShardingScheme::kLocality);
  EXPECT_TRUE(ParseShardingScheme("hash-subject", &s));
  EXPECT_EQ(s, ShardingScheme::kHashSubject);
  EXPECT_TRUE(ParseShardingScheme("hash", &s));
  EXPECT_EQ(s, ShardingScheme::kHashSubject);
  EXPECT_FALSE(ParseShardingScheme("round-robin", &s));
}

// ---- Shard / ShardChannel mechanics ----

TEST(ShardTest, KeyOwnershipPartitionsTheHashSpace) {
  const int kShards = 4;
  std::vector<std::unique_ptr<Shard>> shards;
  for (int i = 0; i < kShards; ++i) {
    shards.push_back(
        std::make_unique<Shard>(i, kShards, ShardingScheme::kLocality));
  }
  for (uint64_t h = 0; h < 1024; ++h) {
    int owners = 0;
    for (const auto& s : shards) {
      if (s->OwnsKey(h)) owners++;
      EXPECT_EQ(s->OwnsKey(h), s->dict_segment().Owns(h));
    }
    EXPECT_EQ(owners, 1) << "key hash " << h;
  }
}

TEST(ShardTest, TaskQueueIsFifo) {
  Shard shard(0, 2, ShardingScheme::kHashSubject);
  shard.EnqueueMapTask(7);
  shard.EnqueueMapTask(3);
  EXPECT_EQ(shard.QueuedMapTasks(), 2u);
  EXPECT_EQ(shard.DequeueMapTask(), std::optional<size_t>(7));
  EXPECT_EQ(shard.DequeueMapTask(), std::optional<size_t>(3));
  EXPECT_EQ(shard.DequeueMapTask(), std::nullopt);
}

TEST(ShardChannelTest, DeliverAccountsEveryEdgeAndRunsHandoffOnce) {
  ShardChannel ch(3);
  uint64_t by_bytes[3] = {10, 0, 5};
  uint64_t by_records[3] = {1, 0, 2};
  int handoffs = 0;
  ch.Deliver(2, by_bytes, by_records, [&] { handoffs++; });
  EXPECT_EQ(handoffs, 1);
  EXPECT_EQ(ch.EdgeBytes(0, 2), 10u);
  EXPECT_EQ(ch.EdgeBytes(1, 2), 0u);
  EXPECT_EQ(ch.EdgeBytes(2, 2), 5u);
  EXPECT_EQ(ch.EdgeRecords(2, 2), 2u);
  EXPECT_EQ(ch.TotalLocalBytes(), 5u);   // the 2 -> 2 loopback edge
  EXPECT_EQ(ch.TotalCrossBytes(), 10u);  // the 0 -> 2 crossing
  ch.Reset();
  EXPECT_EQ(ch.TotalLocalBytes() + ch.TotalCrossBytes(), 0u);
}

TEST(ShardChannelTest, ConcurrentDeliveriesConserveBytes) {
  // Hammered from many threads (this test runs under TSan in check.sh):
  // per-edge accounting must neither lose nor double-count a delivery,
  // and every handoff must run exactly once.
  const int kShards = 4;
  const int kThreads = 8;
  const int kDeliveriesPerThread = 500;
  ShardChannel ch(kShards);
  std::atomic<uint64_t> handoffs{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kDeliveriesPerThread; ++i) {
        uint64_t by_bytes[kShards] = {};
        uint64_t by_records[kShards] = {};
        int from = (t + i) % kShards;
        by_bytes[from] = 3;
        by_records[from] = 1;
        ch.Deliver(i % kShards, by_bytes, by_records,
                   [&] { handoffs.fetch_add(1); });
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(handoffs.load(),
            static_cast<uint64_t>(kThreads) * kDeliveriesPerThread);
  EXPECT_EQ(ch.TotalLocalBytes() + ch.TotalCrossBytes(),
            static_cast<uint64_t>(kThreads) * kDeliveriesPerThread * 3);
  uint64_t records = 0;
  for (int f = 0; f < kShards; ++f) {
    for (int to = 0; to < kShards; ++to) records += ch.EdgeRecords(f, to);
  }
  EXPECT_EQ(records, static_cast<uint64_t>(kThreads) * kDeliveriesPerThread);
}

// ---- sharded Cluster::Run ----

/// A keyed dataset + key-preserving map/reduce job: the map emits under
/// the input record's own key, so under the locality scheme every record
/// reduces on its home shard.
JobConfig KeyPreservingJob() {
  JobConfig job;
  job.name = "key-preserving";
  job.inputs = {"input"};
  job.output = "out";
  job.map = [](const Record& r, int, MapContext* ctx) {
    ctx->Emit(r.key, r.value);
  };
  job.reduce = [](std::string_view key, const ValueSpan& values,
                  ReduceContext* ctx) {
    ctx->Emit(key, std::to_string(values.size()));
  };
  return job;
}

RecordBatch KeyedInput(int n) {
  RecordBatch batch;
  for (int i = 0; i < n; ++i) {
    batch.Add(std::to_string(i), "v" + std::to_string(i));
  }
  return batch;
}

TEST(ShardedClusterTest, LocalitySchemeShufflesZeroCrossShardBytes) {
  Dfs dfs;
  ClusterConfig cfg;
  cfg.num_shards = 4;
  cfg.sharding = ShardingScheme::kLocality;
  Cluster cluster(cfg, &dfs);
  ASSERT_TRUE(dfs.Write("input", KeyedInput(64)).ok());
  auto stats = cluster.Run(KeyPreservingJob());
  ASSERT_TRUE(stats.ok()) << stats.status();
  EXPECT_EQ(stats->num_shards, 4);
  EXPECT_GT(stats->shuffle_bytes, 0u);
  EXPECT_EQ(stats->shuffle_cross_bytes, 0u);
  EXPECT_EQ(stats->shuffle_local_bytes, stats->shuffle_bytes);
  EXPECT_EQ(cluster.channel()->TotalCrossBytes(), 0u);
  EXPECT_EQ(cluster.channel()->TotalLocalBytes(), stats->shuffle_bytes);
}

TEST(ShardedClusterTest, HashSubjectSchemeCrossesTheChannel) {
  Dfs dfs;
  ClusterConfig cfg;
  cfg.num_shards = 4;
  cfg.sharding = ShardingScheme::kHashSubject;
  Cluster cluster(cfg, &dfs);
  ASSERT_TRUE(dfs.Write("input", KeyedInput(64)).ok());
  auto stats = cluster.Run(KeyPreservingJob());
  ASSERT_TRUE(stats.ok()) << stats.status();
  // Scrambled placement vs residue-owned reducers: most records move.
  EXPECT_GT(stats->shuffle_cross_bytes, 0u);
  EXPECT_EQ(stats->shuffle_local_bytes + stats->shuffle_cross_bytes,
            stats->shuffle_bytes);
  EXPECT_EQ(cluster.channel()->TotalCrossBytes(),
            stats->shuffle_cross_bytes);
  EXPECT_EQ(cluster.channel()->TotalLocalBytes(),
            stats->shuffle_local_bytes);
}

TEST(ShardedClusterTest, UnshardedJobBooksAllShuffleAsLocal) {
  // Satellite of the shuffle-accounting fix: a single address space has
  // no network between map and reduce, so nothing may be booked as
  // crossing — and local + cross == shuffle holds universally.
  Dfs dfs;
  Cluster cluster(ClusterConfig{}, &dfs);
  ASSERT_TRUE(dfs.Write("input", KeyedInput(16)).ok());
  auto stats = cluster.Run(KeyPreservingJob());
  ASSERT_TRUE(stats.ok()) << stats.status();
  EXPECT_EQ(stats->num_shards, 0);
  EXPECT_GT(stats->shuffle_bytes, 0u);
  EXPECT_EQ(stats->shuffle_cross_bytes, 0u);
  EXPECT_EQ(stats->shuffle_local_bytes, stats->shuffle_bytes);
  EXPECT_TRUE(stats->shard_output_bytes.empty());
}

TEST(ShardedClusterTest, ResultsAreByteIdenticalToUnsharded) {
  JobConfig job = KeyPreservingJob();
  // Reference: the legacy unsharded path.
  Dfs ref_dfs;
  Cluster ref(ClusterConfig{}, &ref_dfs);
  ASSERT_TRUE(ref_dfs.Write("input", KeyedInput(64)).ok());
  auto ref_stats = ref.Run(job);
  ASSERT_TRUE(ref_stats.ok());
  auto ref_out = ref_dfs.Open("out");
  ASSERT_TRUE(ref_out.ok());

  for (int shards : {2, 4, 8}) {
    for (ShardingScheme scheme :
         {ShardingScheme::kHashSubject, ShardingScheme::kLocality}) {
      for (int threads : {1, 8}) {
        Dfs dfs;
        ClusterConfig cfg;
        cfg.num_shards = shards;
        cfg.sharding = scheme;
        cfg.exec_threads = threads;
        Cluster cluster(cfg, &dfs);
        ASSERT_TRUE(dfs.Write("input", KeyedInput(64)).ok());
        auto stats = cluster.Run(job);
        ASSERT_TRUE(stats.ok()) << stats.status();
        auto out = dfs.Open("out");
        ASSERT_TRUE(out.ok());
        ASSERT_EQ((*out)->records.size(), (*ref_out)->records.size());
        for (size_t i = 0; i < (*out)->records.size(); ++i) {
          EXPECT_EQ((*out)->records[i].key, (*ref_out)->records[i].key);
          EXPECT_EQ((*out)->records[i].value, (*ref_out)->records[i].value);
        }
        // Identical workflow counters, too: sharding is placement only.
        EXPECT_EQ(stats->shuffle_bytes, ref_stats->shuffle_bytes);
        EXPECT_EQ(stats->output_bytes, ref_stats->output_bytes);
      }
    }
  }
}

TEST(ShardedClusterTest, ShardSegmentsPartitionTheOutput) {
  Dfs dfs;
  ClusterConfig cfg;
  cfg.num_shards = 4;
  cfg.sharding = ShardingScheme::kLocality;
  Cluster cluster(cfg, &dfs);
  ASSERT_TRUE(dfs.Write("input", KeyedInput(64)).ok());
  auto stats = cluster.Run(KeyPreservingJob());
  ASSERT_TRUE(stats.ok()) << stats.status();

  auto coordinator = dfs.Open("out");
  ASSERT_TRUE(coordinator.ok());
  // Each shard holds its private segment; the segments are disjoint by
  // key ownership and their union is exactly the coordinator output.
  size_t segment_records = 0;
  uint64_t segment_bytes = 0;
  ASSERT_EQ(stats->shard_output_bytes.size(), 4u);
  for (int s = 0; s < 4; ++s) {
    const Shard* shard = cluster.shard(s);
    auto seg = shard->dfs()->Open("out");
    if (!seg.ok()) {
      EXPECT_EQ(stats->shard_output_bytes[s], 0u);
      continue;
    }
    segment_records += (*seg)->records.size();
    segment_bytes += stats->shard_output_bytes[s];
    EXPECT_EQ(shard->output_records(), (*seg)->records.size());
    for (const Record& r : (*seg)->records) {
      EXPECT_TRUE(shard->OwnsKey(r.key_hash))
          << "shard " << s << " stores key it does not own: " << r.key;
    }
  }
  EXPECT_EQ(segment_records, (*coordinator)->records.size());
  EXPECT_EQ(segment_bytes, stats->output_bytes);
}

TEST(ShardedClusterTest, MapOnlySegmentsFollowRecordHomes) {
  Dfs dfs;
  ClusterConfig cfg;
  cfg.num_shards = 2;
  cfg.sharding = ShardingScheme::kLocality;
  Cluster cluster(cfg, &dfs);
  ASSERT_TRUE(dfs.Write("input", KeyedInput(32)).ok());
  JobConfig job;
  job.name = "map-only";
  job.inputs = {"input"};
  job.output = "out";
  job.map = [](const Record& r, int, MapContext* ctx) {
    ctx->Emit(r.key, r.value);
  };
  auto stats = cluster.Run(job);
  ASSERT_TRUE(stats.ok()) << stats.status();
  EXPECT_EQ(stats->shuffle_bytes, 0u);
  size_t segment_records = 0;
  for (int s = 0; s < 2; ++s) {
    auto seg = cluster.shard(s)->dfs()->Open("out");
    if (seg.ok()) segment_records += (*seg)->records.size();
  }
  EXPECT_EQ(segment_records, 32u);
}

TEST(ShardedClusterTest, BatchOnlyJobsAreRejectedWhenSharded) {
  Dfs dfs;
  ClusterConfig cfg;
  cfg.num_shards = 2;
  Cluster cluster(cfg, &dfs);
  ASSERT_TRUE(dfs.Write("input", KeyedInput(4)).ok());
  JobConfig job;
  job.name = "batch-only";
  job.inputs = {"input"};
  job.map_batch = [](const TaggedRecord* recs, size_t n, MapContext* ctx) {
    for (size_t i = 0; i < n; ++i) {
      ctx->Emit(recs[i].record->key, recs[i].record->value);
    }
  };
  auto stats = cluster.Run(job);
  ASSERT_FALSE(stats.ok());
  EXPECT_EQ(stats.status().code(), Code::kInvalidArgument);
}

TEST(ShardedClusterTest, ResetHistoryClearsShardStateAndChannel) {
  Dfs dfs;
  ClusterConfig cfg;
  cfg.num_shards = 2;
  cfg.sharding = ShardingScheme::kHashSubject;
  Cluster cluster(cfg, &dfs);
  ASSERT_TRUE(dfs.Write("input", KeyedInput(32)).ok());
  ASSERT_TRUE(cluster.Run(KeyPreservingJob()).ok());
  ASSERT_GT(cluster.channel()->TotalLocalBytes() +
                cluster.channel()->TotalCrossBytes(),
            0u);
  cluster.ResetHistory();
  EXPECT_TRUE(cluster.history().empty());
  EXPECT_EQ(cluster.channel()->TotalLocalBytes() +
                cluster.channel()->TotalCrossBytes(),
            0u);
  for (int s = 0; s < 2; ++s) {
    EXPECT_EQ(cluster.shard(s)->map_tasks_run(), 0u);
    EXPECT_EQ(cluster.shard(s)->output_bytes(), 0u);
    EXPECT_FALSE(cluster.shard(s)->dfs()->Exists("out"));
  }
}

TEST(ShardedClusterTest, ShardedSlotsScaleTheCostModel) {
  // 8 shards expose 8 nodes' worth of slots: the same job gets cheaper
  // as shards are added (this is where the scale-out speedup comes from).
  Dfs dfs;
  ClusterConfig base;
  EXPECT_EQ(base.map_slots(), base.num_nodes * base.map_slots_per_node);
  ClusterConfig sharded = base;
  sharded.num_shards = 8;
  EXPECT_EQ(sharded.map_slots(), 8 * base.map_slots_per_node);
  EXPECT_EQ(sharded.reduce_slots(), 8 * base.reduce_slots_per_node);

  JobStats stats;
  stats.input_records = 1000;
  stats.input_bytes = 400 * 1024 * 1024;
  stats.shuffle_records = 1000;
  stats.shuffle_bytes = 200 * 1024 * 1024;
  stats.shuffle_local_bytes = 150 * 1024 * 1024;
  stats.shuffle_cross_bytes = 50 * 1024 * 1024;
  stats.output_bytes = 50 * 1024 * 1024;
  stats.num_reducers = 16;

  ClusterConfig two = base;
  two.num_shards = 2;
  Cluster c2(two, &dfs);
  Dfs dfs8;
  ClusterConfig eight = base;
  eight.num_shards = 8;
  Cluster c8(eight, &dfs8);
  // More shards, more slots, cheaper job; local bytes priced at disk
  // speed keep both below an all-network split of the same volume.
  EXPECT_LT(c8.EstimateSimSeconds(stats), c2.EstimateSimSeconds(stats));
  JobStats all_cross = stats;
  all_cross.shuffle_local_bytes = 0;
  all_cross.shuffle_cross_bytes = stats.shuffle_bytes;
  EXPECT_LT(c8.EstimateSimSeconds(stats),
            c8.EstimateSimSeconds(all_cross));
}

// ---- full-engine byte-identity matrix ----

TEST(ShardDifferentialTest, EnginesAreByteIdenticalAcrossShardMatrix) {
  // Every engine, shard counts {2, 4} x thread counts {1, 8} x both
  // placement schemes, cross-checked against the reference evaluator and
  // the unsharded baseline's cycle/shuffle counters.
  for (uint64_t seed : {1ull, 5ull, 9ull}) {
    difftest::FuzzCase c = difftest::MakeFuzzCase(seed);
    difftest::DiffOptions opts;
    opts.shard_counts = {2, 4};
    difftest::DiffFailure f = difftest::RunDifferential(c, opts);
    EXPECT_FALSE(f.failed) << "seed " << seed << ": " << f.ToString();
  }
}

}  // namespace
}  // namespace rapida::mr
