#include "util/random.h"

#include <gtest/gtest.h>

#include <vector>

namespace rapida {
namespace {

TEST(RandomTest, Deterministic) {
  Random a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RandomTest, DifferentSeedsDiffer) {
  Random a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.Next() == b.Next()) ++same;
  }
  EXPECT_LT(same, 5);
}

TEST(RandomTest, UniformInRange) {
  Random r(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(r.Uniform(10), 10u);
    int64_t v = r.UniformRange(-5, 5);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
    double d = r.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RandomTest, BernoulliExtremes) {
  Random r(11);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(r.Bernoulli(0.0));
    EXPECT_TRUE(r.Bernoulli(1.0));
  }
}

TEST(RandomTest, ZipfSkewsTowardsLowRanks) {
  Random r(3);
  std::vector<int> counts(10, 0);
  for (int i = 0; i < 10000; ++i) ++counts[r.Zipf(10, 1.0)];
  // Rank 0 must be the most frequent; last rank far less frequent.
  for (int i = 1; i < 10; ++i) EXPECT_GE(counts[0], counts[i]);
  EXPECT_GT(counts[0], counts[9] * 3);
}

TEST(RandomTest, ForkAdvancesParentByOneDraw) {
  Random a(42), b(42);
  Random child = a.Fork();
  b.Next();  // Fork consumes exactly one draw from the parent.
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
  // The child is a distinct stream from the parent's continuation.
  Random a2(42);
  Random child2 = a2.Fork();
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (child2.Next() == a2.Next()) ++same;
  }
  EXPECT_LT(same, 5);
}

TEST(RandomTest, SplitIsPureAndPerStream) {
  Random r(7);
  Random s1 = r.Split(1);
  Random s1_again = r.Split(1);
  Random s2 = r.Split(2);
  // Split does not advance the parent...
  Random fresh(7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(r.Next(), fresh.Next());
  // ...is repeatable for the same stream id...
  for (int i = 0; i < 100; ++i) EXPECT_EQ(s1.Next(), s1_again.Next());
  // ...and distinct stream ids give independent sequences.
  Random s1b = Random(7).Split(1);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (s1b.Next() == s2.Next()) ++same;
  }
  EXPECT_LT(same, 5);
}

TEST(RandomTest, SplitStreamsDoNotShiftWhenSiblingDrawsMore) {
  // The motivating property for the fuzzer: changing how much the data
  // generator draws must not change the query generator's stream.
  Random a(99);
  Random data_a = a.Split(1);
  Random query_a = a.Split(2);
  data_a.Next();

  Random b(99);
  Random data_b = b.Split(1);
  for (int i = 0; i < 1000; ++i) data_b.Next();  // draws much more
  Random query_b = b.Split(2);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(query_a.Next(), query_b.Next());
}

TEST(RandomTest, ZipfBoundaries) {
  Random r(5);
  EXPECT_EQ(r.Zipf(1, 1.0), 0u);
  for (int i = 0; i < 100; ++i) EXPECT_LT(r.Zipf(5, 0.5), 5u);
}

}  // namespace
}  // namespace rapida
