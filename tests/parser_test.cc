#include "sparql/parser.h"

#include <gtest/gtest.h>

namespace rapida::sparql {
namespace {

std::unique_ptr<SelectQuery> MustParse(std::string_view text,
                                       const ParseOptions& opts = {}) {
  auto result = ParseQuery(text, opts);
  EXPECT_TRUE(result.ok()) << result.status();
  return result.ok() ? std::move(*result) : nullptr;
}

TEST(ParserTest, SimpleSelect) {
  auto q = MustParse(
      "PREFIX ex: <http://x/> "
      "SELECT ?s WHERE { ?s ex:p ?o . }");
  ASSERT_NE(q, nullptr);
  ASSERT_EQ(q->items.size(), 1u);
  EXPECT_EQ(q->items[0].name, "s");
  ASSERT_EQ(q->where.triples.size(), 1u);
  EXPECT_EQ(q->where.triples[0].p.term.text, "http://x/p");
}

TEST(ParserTest, SemicolonPropertyList) {
  auto q = MustParse(
      "PREFIX ex: <http://x/> "
      "SELECT ?s { ?s ex:a ?x ; ex:b ?y ; ex:c ?z . }");
  ASSERT_NE(q, nullptr);
  ASSERT_EQ(q->where.triples.size(), 3u);
  for (const auto& tp : q->where.triples) {
    EXPECT_TRUE(tp.s.is_var);
    EXPECT_EQ(tp.s.var, "s");
  }
}

TEST(ParserTest, ObjectList) {
  auto q = MustParse("SELECT ?s { ?s <p> ?a, ?b . }");
  ASSERT_EQ(q->where.triples.size(), 2u);
  EXPECT_EQ(q->where.triples[0].o.var, "a");
  EXPECT_EQ(q->where.triples[1].o.var, "b");
}

TEST(ParserTest, AKeywordExpandsToRdfType) {
  auto q = MustParse("SELECT ?s { ?s a <http://x/T> . }");
  ASSERT_EQ(q->where.triples.size(), 1u);
  EXPECT_EQ(q->where.triples[0].p.term.text, rdf::kRdfType);
}

TEST(ParserTest, AggregatesWithAndWithoutAs) {
  auto q = MustParse(
      "SELECT ?f (COUNT(?pr) AS ?cnt) (SUM(?pr) ?sum) "
      "{ ?o <price> ?pr ; <feature> ?f . } GROUP BY ?f");
  ASSERT_EQ(q->items.size(), 3u);
  EXPECT_EQ(q->items[0].name, "f");
  EXPECT_EQ(q->items[1].name, "cnt");
  ASSERT_NE(q->items[1].expr, nullptr);
  EXPECT_EQ(q->items[1].expr->kind, Expr::Kind::kAggregate);
  EXPECT_EQ(q->items[1].expr->agg_func, AggFunc::kCount);
  EXPECT_EQ(q->items[2].name, "sum");
  EXPECT_EQ(q->items[2].expr->agg_func, AggFunc::kSum);
  ASSERT_EQ(q->group_by.size(), 1u);
  EXPECT_EQ(q->group_by[0], "f");
  EXPECT_TRUE(q->HasAggregates());
}

TEST(ParserTest, CountStarAndDistinct) {
  auto q = MustParse("SELECT (COUNT(*) AS ?n) (COUNT(DISTINCT ?x) AS ?d) "
                     "{ ?s <p> ?x . }");
  EXPECT_TRUE(q->items[0].expr->count_star);
  EXPECT_TRUE(q->items[1].expr->agg_distinct);
}

TEST(ParserTest, FilterComparison) {
  auto q = MustParse("SELECT ?s { ?s <price> ?p . FILTER(?p > 5000) }");
  ASSERT_EQ(q->where.filters.size(), 1u);
  const Expr& f = *q->where.filters[0];
  EXPECT_EQ(f.kind, Expr::Kind::kCompare);
  EXPECT_EQ(f.op, ">");
}

TEST(ParserTest, FilterRegexWithoutOuterParens) {
  auto q = MustParse(
      "SELECT ?s { ?s <name> ?n . FILTER regex(?n, \"MAPK\", \"i\") }");
  ASSERT_EQ(q->where.filters.size(), 1u);
  EXPECT_EQ(q->where.filters[0]->kind, Expr::Kind::kRegex);
  EXPECT_EQ(q->where.filters[0]->regex_pattern, "MAPK");
  EXPECT_EQ(q->where.filters[0]->regex_flags, "i");
}

TEST(ParserTest, BooleanConnectives) {
  auto q = MustParse(
      "SELECT ?s { ?s <p> ?x . FILTER(?x > 1 && ?x < 9 || !(?x = 5)) }");
  ASSERT_EQ(q->where.filters.size(), 1u);
  EXPECT_EQ(q->where.filters[0]->kind, Expr::Kind::kOr);
}

TEST(ParserTest, Optional) {
  auto q = MustParse(
      "SELECT ?s { ?s <p> ?x . OPTIONAL { ?s <q> ?y . } }");
  ASSERT_EQ(q->where.optionals.size(), 1u);
  EXPECT_EQ(q->where.optionals[0].triples.size(), 1u);
}

TEST(ParserTest, NestedSubqueries) {
  auto q = MustParse(
      "SELECT ?f ?cntF ?cntT { "
      " { SELECT ?f (COUNT(?p2) AS ?cntF) { ?o2 <product> ?p2 ; <f> ?f . } "
      "   GROUP BY ?f } "
      " { SELECT (COUNT(?p1) AS ?cntT) { ?o1 <product> ?p1 . } } "
      "}");
  ASSERT_EQ(q->where.subqueries.size(), 2u);
  EXPECT_EQ(q->where.subqueries[0]->group_by.size(), 1u);
  EXPECT_TRUE(q->where.subqueries[1]->group_by.empty());
  EXPECT_TRUE(q->where.subqueries[1]->HasAggregates());
}

TEST(ParserTest, PlainNestedGroupMergesIntoParent) {
  auto q = MustParse("SELECT ?s { { ?s <p> ?x . } ?s <q> ?y . }");
  EXPECT_EQ(q->where.triples.size(), 2u);
  EXPECT_TRUE(q->where.subqueries.empty());
}

TEST(ParserTest, DefaultNamespaceExpandsBareNames) {
  ParseOptions opts;
  opts.default_namespace = "http://bsbm/";
  auto q = MustParse("SELECT ?s { ?s type ?t . }", opts);
  EXPECT_EQ(q->where.triples[0].p.term.text, "http://bsbm/type");
}

TEST(ParserTest, EmptyPrefixDeclaration) {
  auto q = MustParse(
      "PREFIX : <http://d/> SELECT ?s { ?s :p :O . }");
  EXPECT_EQ(q->where.triples[0].p.term.text, "http://d/p");
  EXPECT_EQ(q->where.triples[0].o.term.text, "http://d/O");
}

TEST(ParserTest, StringAndNumericLiteralObjects) {
  auto q = MustParse(
      "SELECT ?s { ?s <pub_type> \"News\" . ?s <year> 2015 . }");
  EXPECT_TRUE(q->where.triples[0].o.term.is_literal());
  EXPECT_EQ(q->where.triples[0].o.term.text, "News");
  EXPECT_EQ(q->where.triples[1].o.term.datatype, rdf::kXsdInteger);
}

TEST(ParserTest, SelectStar) {
  auto q = MustParse("SELECT * { ?s <p> ?o . }");
  EXPECT_TRUE(q->select_all);
  auto cols = q->ColumnNames();
  EXPECT_EQ(cols.size(), 2u);
}

TEST(ParserTest, GroupByMultipleVars) {
  auto q = MustParse(
      "SELECT ?a ?b (COUNT(?x) AS ?n) { ?s <p> ?a ; <q> ?b ; <r> ?x . } "
      "GROUP BY ?a ?b");
  ASSERT_EQ(q->group_by.size(), 2u);
}

TEST(ParserTest, ArithmeticInSelect) {
  auto q = MustParse(
      "SELECT ((?sumF / ?cntF) / (?sumT / ?cntT) AS ?ratio) "
      "{ ?s <a> ?sumF ; <b> ?cntF ; <c> ?sumT ; <d> ?cntT . }");
  ASSERT_EQ(q->items.size(), 1u);
  EXPECT_EQ(q->items[0].expr->kind, Expr::Kind::kArith);
  EXPECT_EQ(q->items[0].expr->op, "/");
}

TEST(ParserTest, Errors) {
  EXPECT_FALSE(ParseQuery("SELECT { ?s <p> ?o . }").ok());        // no items
  EXPECT_FALSE(ParseQuery("SELECT ?s { ?s <p> ?o . ").ok());      // no '}'
  EXPECT_FALSE(ParseQuery("SELECT ?s WHERE { ?s ex:p ?o . }").ok());  // prefix
  EXPECT_FALSE(ParseQuery("SELECT ?s { ?s <p> ?o . } GROUP ?s").ok());
  EXPECT_FALSE(ParseQuery("FOO ?s { }").ok());
  EXPECT_FALSE(ParseQuery("SELECT ?s { \"lit\" <p> ?o . }").ok());
}

TEST(ParserTest, PaperAq1Parses) {
  // The running example from Figure 1, written against the BSBM-ish
  // vocabulary with explicit prefixes.
  const char* kAq1 = R"(
    PREFIX bsbm: <http://bsbm.example/>
    SELECT ?country ?feature ?ratio
    WHERE {
      { SELECT ?country ?feature (SUM(?price2) AS ?sumF)
               (COUNT(?price2) AS ?cntF) {
          ?product2 a bsbm:ProductType18 .
          ?product2 bsbm:productFeature ?feature .
          ?offer2 bsbm:product ?product2 .
          ?offer2 bsbm:price ?price2 .
          ?offer2 bsbm:vendor ?vendor2 .
          ?vendor2 bsbm:country ?country .
        } GROUP BY ?country ?feature }
      { SELECT ?country (SUM(?price1) AS ?sumT) (COUNT(?price1) AS ?cntT) {
          ?product1 a bsbm:ProductType18 .
          ?offer1 bsbm:product ?product1 .
          ?offer1 bsbm:price ?price1 .
          ?offer1 bsbm:vendor ?vendor1 .
          ?vendor1 bsbm:country ?country .
        } GROUP BY ?country }
    }
  )";
  auto q = MustParse(kAq1);
  ASSERT_NE(q, nullptr);
  ASSERT_EQ(q->where.subqueries.size(), 2u);
  EXPECT_EQ(q->where.subqueries[0]->where.triples.size(), 6u);
  EXPECT_EQ(q->where.subqueries[1]->where.triples.size(), 5u);
}

}  // namespace
}  // namespace rapida::sparql
