// Smoke coverage for the differential fuzzing harness itself: the query
// generator only emits queries the analyzer accepts, a slice of the seed
// corpus cross-checks clean, the normalizer is tolerant where it must be
// and strict where it must be, and the shrinker reduces an injected
// engine bug to a tiny repro. The full 200-seed corpus runs as the
// ctest "fuzz" configuration (see tests/CMakeLists.txt) and in
// scripts/check.sh.
#include <gtest/gtest.h>

#include "analytics/analytical_query.h"
#include "sparql/parser.h"
#include "testing/differential.h"
#include "testing/normalize.h"
#include "testing/query_gen.h"
#include "testing/shrink.h"

namespace rapida::difftest {
namespace {

/// Hand-built case for pinning shrunk fuzzer repros as deterministic
/// regressions (seed numbering may drift as the generator evolves).
FuzzCase MakeCase(const std::string& sparql,
                  std::vector<TripleSpec> triples) {
  FuzzCase c;
  c.dataset = "regression";
  auto parsed = sparql::ParseQuery(sparql);
  EXPECT_TRUE(parsed.ok()) << parsed.status();
  c.query = std::move(*parsed);
  c.triples = std::move(triples);
  return c;
}

/// Total number of triple patterns across all grouping subqueries.
size_t CountTriplePatterns(const sparql::SelectQuery& q) {
  size_t n = q.where.triples.size();
  for (const auto& sub : q.where.subqueries) {
    n += sub->where.triples.size();
  }
  return n;
}

TEST(FuzzSmokeTest, GeneratedQueriesAlwaysAnalyze) {
  for (uint64_t seed = 1; seed <= 60; ++seed) {
    FuzzCase c = MakeFuzzCase(seed);
    ASSERT_NE(c.query, nullptr) << "seed " << seed;
    EXPECT_FALSE(c.triples.empty()) << "seed " << seed;
    auto analyzed = analytics::AnalyzeQuery(*c.query);
    EXPECT_TRUE(analyzed.ok())
        << "seed " << seed << ": " << analyzed.status() << "\n"
        << c.query->ToString();
  }
}

TEST(FuzzSmokeTest, DifferentialCorpusSliceIsClean) {
  // A fast slice of the corpus; rapida_fuzz --seeds=200 is the full run.
  for (uint64_t seed = 1; seed <= 12; ++seed) {
    FuzzCase c = MakeFuzzCase(seed);
    DiffFailure f = RunDifferential(c);
    EXPECT_FALSE(f.failed) << "seed " << seed << ": " << f.ToString();
  }
}

TEST(FuzzSmokeTest, ApproxEqualToleratesSummationOrderNoise) {
  EXPECT_TRUE(ApproxEqual(1.0, 1.0));
  EXPECT_TRUE(ApproxEqual(0.1 + 0.2, 0.3));
  EXPECT_TRUE(ApproxEqual(1e15, 1e15 * (1 + 1e-12)));
  EXPECT_TRUE(ApproxEqual(0.0, 1e-12));
  EXPECT_FALSE(ApproxEqual(1.0, 1.001));
  EXPECT_FALSE(ApproxEqual(100.0, 101.0));
}

TEST(FuzzSmokeTest, NormalizedSerializationRoundTrips) {
  NormalizedTable t;
  t.columns = {"a", "b"};
  NormalizedCell num;
  num.is_number = true;
  num.number = 1.0 / 3.0;
  NormalizedCell text;
  text.text = "\"odd\tchars\nand\\slashes\"";
  t.rows.push_back({num, text});
  NormalizedCell neg;
  neg.is_number = true;
  neg.number = -2.5e300;
  NormalizedCell iri;
  iri.text = "<http://example.org/x>";
  t.rows.push_back({neg, iri});

  std::string s = SerializeNormalized(t);
  NormalizedTable parsed;
  ASSERT_TRUE(ParseNormalized(s, &parsed));
  EXPECT_EQ(CompareNormalized(t, parsed), "") << s;
  // And the comparison is not vacuously true.
  parsed.rows[0][0].number += 1;
  EXPECT_NE(CompareNormalized(t, parsed), "");
}

// Shrunk repros of real bugs the fuzzer found, pinned as deterministic
// regressions (the seeds that originally exposed them may drift as the
// generator evolves).

rdf::Term I(const std::string& name) {
  return rdf::Term::Iri("http://fuzz.example/" + name);
}
rdf::Term Int(const std::string& v) {
  return rdf::Term::Literal(v, "http://www.w3.org/2001/XMLSchema#integer");
}

TEST(FuzzSmokeTest, RegressionOneSidedFilterOnSharedCompositeScan) {
  // Two identical patterns where only one grouping filters the shared
  // variable: MQO and RAPIDAnalytics used to push the filter into the
  // shared composite scan, starving the unfiltered grouping (avg2 came
  // back 50 instead of 125).
  FuzzCase c = MakeCase(
      "SELECT ?avg1 ?avg2 { "
      "{ SELECT (AVG(?price1) AS ?avg1) { "
      "  ?o1 <http://fuzz.example/price> ?price1 . "
      "  FILTER(?price1 <= 100) } } "
      "{ SELECT (AVG(?price2) AS ?avg2) { "
      "  ?o2 <http://fuzz.example/price> ?price2 . } } }",
      {{I("Offer1"), I("price"), Int("50")},
       {I("Offer2"), I("price"), Int("200")}});
  DiffFailure f = RunDifferential(c);
  EXPECT_FALSE(f.failed) << f.ToString();
}

TEST(FuzzSmokeTest, RegressionConstantObjectSecondaryTriple) {
  // A constant-object triple only one pattern carries is secondary in the
  // composite; MQO's extraction used to have no way to observe whether it
  // matched (no object variable), so the "News"-only grouping silently
  // over-matched all publications.
  const std::string query =
      "SELECT ?gc1 ?cnt2 { "
      "{ SELECT (GROUP_CONCAT(?chemical) AS ?gc1) { "
      "  ?pub1 <http://fuzz.example/pub_type> \"News\" . "
      "  ?pub1 <http://fuzz.example/chemical> ?chemical . } } "
      "{ SELECT (COUNT(*) AS ?cnt2) { "
      "  ?pub2 <http://fuzz.example/chemical> ?chemical . } } }";
  FuzzCase c = MakeCase(
      query,
      {{I("Pub1"), I("chemical"), I("C1")},
       {I("Pub2"), I("pub_type"), rdf::Term::Literal("News")},
       {I("Pub2"), I("chemical"), I("C2")},
       {I("Pub3"), I("pub_type"), rdf::Term::Literal("Journal")},
       {I("Pub3"), I("chemical"), I("C3")}});
  DiffFailure f = RunDifferential(c);
  EXPECT_FALSE(f.failed) << f.ToString();

  // Same query when NO pub_type triple exists anywhere (the property's
  // VP table is missing entirely): the first grouping must go empty.
  FuzzCase none = MakeCase(query, {{I("Pub1"), I("chemical"), I("C1")}});
  DiffFailure f2 = RunDifferential(none);
  EXPECT_FALSE(f2.failed) << f2.ToString();
}

TEST(FuzzSmokeTest, ShrinkerReducesInjectedBugToTinyRepro) {
  // Sabotage RAPIDAnalytics with a dropped result row and check the
  // shrinker boils whatever seed first exposes it down to a repro with at
  // most 3 triple patterns (the acceptance bar from the harness design).
  DiffOptions opts;
  opts.thread_counts = {1};
  opts.check_cost_invariants = false;
  opts.fault = FaultKind::kDropRow;
  opts.fault_engine = "RAPIDAnalytics";

  uint64_t failing_seed = 0;
  for (uint64_t seed = 1; seed <= 20 && failing_seed == 0; ++seed) {
    FuzzCase c = MakeFuzzCase(seed);
    DiffFailure f = RunDifferential(c, opts);
    if (f.failed && f.kind == "mismatch") failing_seed = seed;
  }
  ASSERT_NE(failing_seed, 0u)
      << "no seed in 1..20 produced a non-empty result to corrupt";

  ShrinkResult r = Shrink(MakeFuzzCase(failing_seed), opts);
  ASSERT_TRUE(r.failure.failed);
  EXPECT_EQ(r.failure.kind, "mismatch") << r.failure.ToString();
  EXPECT_EQ(r.failure.engine, "RAPIDAnalytics");
  EXPECT_LE(CountTriplePatterns(*r.reduced.query), 3u)
      << FormatRepro(r.reduced, r.failure);
  // The reduced case must still be a genuine failing case end-to-end.
  DiffFailure replay = RunDifferential(r.reduced, opts);
  EXPECT_TRUE(replay.failed);
  // And without the injected fault it must pass (the bug is the fault,
  // not the reduced query).
  DiffOptions clean = opts;
  clean.fault = FaultKind::kNone;
  DiffFailure healthy = RunDifferential(r.reduced, clean);
  EXPECT_FALSE(healthy.failed) << healthy.ToString();
}

}  // namespace
}  // namespace rapida::difftest
