#include "analytics/analytical_query.h"

#include <gtest/gtest.h>

#include "engines/relational_ops.h"
#include "engines/var_translate.h"
#include "ntga/resolved_pattern.h"
#include "sparql/parser.h"

namespace rapida::analytics {
namespace {

StatusOr<AnalyticalQuery> Analyze(const std::string& text) {
  auto parsed = sparql::ParseQuery(text);
  EXPECT_TRUE(parsed.ok()) << parsed.status();
  return AnalyzeQuery(**parsed);
}

TEST(AnalyticalQueryTest, SingleGroupingShape) {
  auto q = Analyze(
      "SELECT ?f (COUNT(?pr) AS ?cnt) (SUM(?pr) AS ?sum) "
      "{ ?p <feature> ?f . ?o <product> ?p ; <price> ?pr . } GROUP BY ?f");
  ASSERT_TRUE(q.ok()) << q.status();
  ASSERT_EQ(q->groupings.size(), 1u);
  const GroupingSubquery& g = q->groupings[0];
  EXPECT_EQ(g.pattern.stars.size(), 2u);
  EXPECT_EQ(g.group_by, (std::vector<std::string>{"f"}));
  ASSERT_EQ(g.aggs.size(), 2u);
  EXPECT_EQ(g.aggs[0].output_name, "cnt");
  EXPECT_EQ(g.aggs[0].var, "pr");
  EXPECT_EQ(g.aggs[1].func, sparql::AggFunc::kSum);
  EXPECT_EQ(g.columns, (std::vector<std::string>{"f", "cnt", "sum"}));
  // Identity top projection.
  EXPECT_EQ(q->TopColumnNames(), g.columns);
}

TEST(AnalyticalQueryTest, MultiGroupingShape) {
  auto q = Analyze(
      "SELECT ?f ?cntF ?cntT { "
      "{ SELECT ?f (COUNT(?x) AS ?cntF) { ?p <f> ?f ; <x> ?x . } GROUP BY ?f } "
      "{ SELECT (COUNT(?y) AS ?cntT) { ?p1 <y> ?y . } } }");
  ASSERT_TRUE(q.ok()) << q.status();
  ASSERT_EQ(q->groupings.size(), 2u);
  EXPECT_TRUE(q->groupings[1].group_by.empty());
  EXPECT_EQ(q->TopColumnNames(),
            (std::vector<std::string>{"f", "cntF", "cntT"}));
}

TEST(AnalyticalQueryTest, TopLevelExpressionsValidated) {
  auto ok = Analyze(
      "SELECT ((?a / ?b) AS ?ratio) { "
      "{ SELECT (SUM(?x) AS ?a) (COUNT(?x) AS ?b) { ?s <p> ?x . } } }");
  ASSERT_TRUE(ok.ok()) << ok.status();
  ASSERT_EQ(ok->top_items.size(), 1u);
  EXPECT_NE(ok->top_items[0].expr, nullptr);

  // Unknown column in the expression.
  auto bad = Analyze(
      "SELECT ((?a / ?zz) AS ?r) { "
      "{ SELECT (SUM(?x) AS ?a) { ?s <p> ?x . } } }");
  EXPECT_FALSE(bad.ok());
}

TEST(AnalyticalQueryTest, CountStarSupported) {
  auto q = Analyze("SELECT (COUNT(*) AS ?n) { ?s <p> ?x . }");
  ASSERT_TRUE(q.ok());
  EXPECT_TRUE(q->groupings[0].aggs[0].count_star);
}

TEST(AnalyticalQueryTest, GroupByUnboundVarRejected) {
  EXPECT_FALSE(Analyze("SELECT ?z (COUNT(?x) AS ?n) { ?s <p> ?x . } "
                       "GROUP BY ?z")
                   .ok());
}

TEST(AnalyticalQueryTest, FiltersCarriedIntoGrouping) {
  auto q = Analyze(
      "SELECT (COUNT(?x) AS ?n) { ?s <p> ?x . FILTER(?x > 5) }");
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(q->groupings[0].filters.size(), 1u);
}

}  // namespace
}  // namespace rapida::analytics

namespace rapida::engine {
namespace {

TEST(VarTranslateTest, MapVarsAndExpr) {
  std::map<std::string, std::string> m = {{"a", "x"}, {"b", "y"}};
  EXPECT_EQ(MapVar("a", m), "x");
  EXPECT_EQ(MapVar("zzz", m), "zzz");
  EXPECT_EQ(MapVars({"a", "b", "c"}, m),
            (std::vector<std::string>{"x", "y", "c"}));

  auto parsed = sparql::ParseQuery(
      "SELECT ?s { ?s <p> ?a . FILTER(?a > 5 && regex(?b, \"z\")) }");
  ASSERT_TRUE(parsed.ok());
  sparql::ExprPtr mapped =
      MapExprVars(*(*parsed)->where.filters[0], m);
  std::vector<std::string> vars;
  mapped->CollectVars(&vars);
  EXPECT_EQ(vars, (std::vector<std::string>{"x", "y"}));
}

TEST(ResolvedPatternTest, ResolvesConstantsAndVarSources) {
  rdf::Graph g;
  g.AddIri("p1", rdf::kRdfType, "T1");
  g.AddInt("p1", "price", 5);

  auto parsed = sparql::ParseQuery(
      "SELECT ?pr { ?p a <T1> ; <price> ?pr . }");
  ASSERT_TRUE(parsed.ok());
  auto sg = ntga::DecomposeToStars((*parsed)->where.triples);
  ASSERT_TRUE(sg.ok());
  ntga::CompositePattern comp = ntga::SinglePatternComposite(*sg);
  ntga::ResolvedPattern r = ntga::ResolvePattern(comp, g.dict());
  EXPECT_TRUE(r.satisfiable);
  ASSERT_EQ(r.stars.size(), 1u);
  EXPECT_EQ(r.stars[0].triples.size(), 2u);

  auto src = r.SourceOf("pr");
  EXPECT_EQ(src.star, 0);
  EXPECT_FALSE(src.is_subject);
  auto subj = r.SourceOf("p");
  EXPECT_TRUE(subj.is_subject);
  EXPECT_EQ(r.SourceOf("nope").star, -1);
}

TEST(ResolvedPatternTest, MissingPrimaryConstantMakesUnsatisfiable) {
  rdf::Graph g;
  g.AddInt("p1", "price", 5);
  auto parsed = sparql::ParseQuery(
      "SELECT ?pr { ?p a <NeverSeen> ; <price> ?pr . }");
  ASSERT_TRUE(parsed.ok());
  auto sg = ntga::DecomposeToStars((*parsed)->where.triples);
  ASSERT_TRUE(sg.ok());
  ntga::ResolvedPattern r = ntga::ResolvePattern(
      ntga::SinglePatternComposite(*sg), g.dict());
  EXPECT_FALSE(r.satisfiable);
}

TEST(RelationalRowCodecTest, RoundTrip) {
  std::vector<rdf::TermId> row = {1, 0, 42, 7};
  EXPECT_EQ(DecodeRow(EncodeRow(row)), row);
  EXPECT_TRUE(DecodeRow("").empty());
  EXPECT_EQ(EncodeRow({}), "");
}

TEST(RelationalPredicateTest, CompiledFilterOverColumns) {
  rdf::Dictionary dict;
  rdf::TermId five = dict.InternInt(5);
  rdf::TermId ten = dict.InternInt(10);
  auto parsed =
      sparql::ParseQuery("SELECT ?s { ?s <p> ?x . FILTER(?x > 7) }");
  ASSERT_TRUE(parsed.ok());
  RowPredicate pred = CompilePredicate(
      {(*parsed)->where.filters[0].get()}, {"s", "x"}, &dict);
  EXPECT_FALSE(pred({1, five}));
  EXPECT_TRUE(pred({1, ten}));
  // Unbound cell: error -> false.
  EXPECT_FALSE(pred({1, rdf::kInvalidTermId}));
  // No filters -> null predicate.
  EXPECT_EQ(CompilePredicate({}, {"s"}, &dict), nullptr);
}

}  // namespace
}  // namespace rapida::engine
