#include <gtest/gtest.h>

#include "rdf/dictionary.h"
#include "rdf/graph.h"
#include "rdf/graph_index.h"
#include "rdf/term.h"
#include "rdf/vp_store.h"

namespace rapida::rdf {
namespace {

TEST(TermTest, Factories) {
  Term iri = Term::Iri("http://x/a");
  EXPECT_TRUE(iri.is_iri());
  EXPECT_EQ(iri.ToNTriples(), "<http://x/a>");

  Term lit = Term::Literal("hello");
  EXPECT_TRUE(lit.is_literal());
  EXPECT_EQ(lit.ToNTriples(), "\"hello\"");

  Term typed = Term::Literal("5", kXsdInteger);
  EXPECT_EQ(typed.ToNTriples(),
            "\"5\"^^<http://www.w3.org/2001/XMLSchema#integer>");

  Term blank = Term::Blank("b0");
  EXPECT_TRUE(blank.is_blank());
  EXPECT_EQ(blank.ToNTriples(), "_:b0");
}

TEST(TermTest, LiteralEscaping) {
  Term lit = Term::Literal("a\"b\\c\nd");
  EXPECT_EQ(lit.ToNTriples(), "\"a\\\"b\\\\c\\nd\"");
}

TEST(TermTest, EqualityDistinguishesKindAndDatatype) {
  EXPECT_EQ(Term::Iri("x"), Term::Iri("x"));
  EXPECT_FALSE(Term::Iri("x") == Term::Literal("x"));
  EXPECT_FALSE(Term::Literal("5") == Term::Literal("5", kXsdInteger));
}

TEST(DictionaryTest, InternIsIdempotent) {
  Dictionary d;
  TermId a = d.InternIri("http://x/a");
  TermId b = d.InternIri("http://x/a");
  EXPECT_EQ(a, b);
  EXPECT_NE(a, kInvalidTermId);
  EXPECT_EQ(d.size(), 1u);
}

TEST(DictionaryTest, DistinctTermsGetDistinctIds) {
  Dictionary d;
  TermId iri = d.InternIri("x");
  TermId lit = d.InternLiteral("x");
  TermId blank = d.Intern(Term::Blank("x"));
  EXPECT_NE(iri, lit);
  EXPECT_NE(lit, blank);
  EXPECT_NE(iri, blank);
  EXPECT_EQ(d.size(), 3u);
}

TEST(DictionaryTest, RoundTrip) {
  Dictionary d;
  TermId id = d.InternLiteral("42", kXsdInteger);
  const Term& t = d.Get(id);
  EXPECT_EQ(t.text, "42");
  EXPECT_EQ(t.datatype, kXsdInteger);
}

TEST(DictionaryTest, LookupMissingReturnsInvalid) {
  Dictionary d;
  EXPECT_EQ(d.LookupIri("http://nope"), kInvalidTermId);
}

TEST(DictionaryTest, AsNumber) {
  Dictionary d;
  EXPECT_DOUBLE_EQ(*d.AsNumber(d.InternInt(42)), 42.0);
  EXPECT_DOUBLE_EQ(*d.AsNumber(d.InternDouble(1.5)), 1.5);
  EXPECT_DOUBLE_EQ(*d.AsNumber(d.InternLiteral("7")), 7.0);
  EXPECT_FALSE(d.AsNumber(d.InternLiteral("abc")).has_value());
  EXPECT_FALSE(d.AsNumber(d.InternIri("42")).has_value());
  EXPECT_FALSE(d.AsNumber(kInvalidTermId).has_value());
}

TEST(GraphTest, AddAndCount) {
  Graph g;
  g.AddIri("s1", "p1", "o1");
  g.AddIri("s1", "p2", "o2");
  g.AddLit("s2", "p1", "hello");
  EXPECT_EQ(g.size(), 3u);
  auto counts = g.PropertyCounts();
  EXPECT_EQ(counts[g.dict().LookupIri("p1")], 2u);
  EXPECT_EQ(counts[g.dict().LookupIri("p2")], 1u);
}

TEST(GraphTest, SubjectGroups) {
  Graph g;
  g.AddIri("s2", "p1", "o1");
  g.AddIri("s1", "p1", "o1");
  g.AddIri("s1", "p2", "o2");
  const auto& groups = g.SubjectGroups();
  ASSERT_EQ(groups.size(), 2u);
  // Groups are sorted by subject id; s2 was interned first, so it comes
  // first.
  EXPECT_EQ(groups[0].subject, g.dict().LookupIri("s2"));
  EXPECT_EQ(groups[0].triples.size(), 1u);
  EXPECT_EQ(groups[1].subject, g.dict().LookupIri("s1"));
  EXPECT_EQ(groups[1].triples.size(), 2u);
}

TEST(GraphTest, SubjectGroupsRebuildAfterChange) {
  Graph g;
  g.AddIri("s1", "p1", "o1");
  EXPECT_EQ(g.SubjectGroups().size(), 1u);
  g.AddIri("s2", "p1", "o1");
  EXPECT_EQ(g.SubjectGroups().size(), 2u);
}

TEST(GraphIndexTest, AccessPaths) {
  Graph g;
  g.AddIri("s1", "p", "o1");
  g.AddIri("s1", "p", "o2");
  g.AddIri("s2", "p", "o1");
  g.AddIri("s2", "q", "o3");
  GraphIndex idx(g);
  const Dictionary& d = g.dict();
  TermId p = d.LookupIri("p"), q = d.LookupIri("q");
  TermId s1 = d.LookupIri("s1"), s2 = d.LookupIri("s2");
  TermId o1 = d.LookupIri("o1"), o3 = d.LookupIri("o3");

  EXPECT_EQ(idx.ByProperty(p).size(), 3u);
  EXPECT_EQ(idx.Objects(p, s1).size(), 2u);
  EXPECT_EQ(idx.Subjects(p, o1).size(), 2u);
  EXPECT_TRUE(idx.Contains(s2, q, o3));
  EXPECT_FALSE(idx.Contains(s1, q, o3));
  EXPECT_TRUE(idx.ByProperty(d.LookupIri("nope")).empty());
}

TEST(VpStoreTest, PartitionsByProperty) {
  Graph g;
  g.AddIri("p1", kRdfType, "ProductType1");
  g.AddIri("p2", kRdfType, "ProductType2");
  g.AddInt("o1", "price", 100);
  g.AddInt("o2", "price", 200);
  g.AddIri("o1", "vendor", "v1");
  VpStore vp(g);
  const Dictionary& d = g.dict();

  EXPECT_EQ(vp.Table(d.LookupIri("price")).size(), 2u);
  EXPECT_EQ(vp.Table(d.LookupIri("vendor")).size(), 1u);
  // rdf:type triples are not in the generic tables...
  EXPECT_TRUE(vp.Table(g.TypeIdOrInvalid()).empty());
  // ...but in per-object type tables.
  EXPECT_EQ(vp.TypeTable(d.LookupIri("ProductType1")).size(), 1u);
  EXPECT_EQ(vp.TypeTable(d.LookupIri("ProductType2")).size(), 1u);
  EXPECT_GT(vp.TableBytes(d.LookupIri("price")), 0u);
  EXPECT_GT(vp.TypeTableBytes(d.LookupIri("ProductType1")), 0u);
  EXPECT_EQ(vp.Properties().size(), 2u);
}

}  // namespace
}  // namespace rapida::rdf
