// Property-style invariant sweeps (parameterized over seeds / shapes):
//
//  * composite + n-split ≡ direct evaluation of the original patterns,
//  * the four engines agree with the reference on randomized datasets,
//  * map-side pre-aggregation and combiners never change answers,
//  * partial aggregate merging is order-insensitive.
#include <gtest/gtest.h>

#include "analytics/aggregates.h"
#include "analytics/reference_evaluator.h"
#include "engines/engines.h"
#include "ntga/operators.h"
#include "sparql/parser.h"
#include "util/random.h"
#include "workload/bsbm.h"
#include "workload/catalog.h"

namespace rapida {
namespace {

// ---------------------------------------------------------------------------
// Invariant 1: evaluating the composite pattern and extracting per-pattern
// answers (α + binding expansion) equals evaluating each original pattern
// directly, on randomized graphs.
// ---------------------------------------------------------------------------

class CompositeEquivalenceTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(CompositeEquivalenceTest, CompositeMatchesDirectEvaluation) {
  // Random small product/offer graph.
  Random rng(GetParam());
  rdf::Graph graph;
  int n_products = 5 + static_cast<int>(rng.Uniform(15));
  for (int p = 0; p < n_products; ++p) {
    std::string prod = "p" + std::to_string(p);
    graph.AddIri(prod, rdf::kRdfType, rng.Bernoulli(0.7) ? "T1" : "T2");
    if (rng.Bernoulli(0.8)) graph.AddLit(prod, "label", "l" + prod);
    int feats = static_cast<int>(rng.Uniform(3));
    for (int f = 0; f < feats; ++f) {
      graph.AddIri(prod, "feature",
                   "f" + std::to_string(rng.Uniform(4)));
    }
  }
  int n_offers = 10 + static_cast<int>(rng.Uniform(30));
  for (int o = 0; o < n_offers; ++o) {
    std::string off = "o" + std::to_string(o);
    graph.AddIri(off, "product",
                 "p" + std::to_string(rng.Uniform(n_products)));
    graph.AddInt(off, "price", 10 + static_cast<int64_t>(rng.Uniform(90)));
    if (rng.Bernoulli(0.5)) graph.AddIri(off, "seller", "s1");
  }

  const char* kGp1 =
      "SELECT ?f { ?p a <T1> ; <feature> ?f . "
      "?o <product> ?p ; <price> ?pr . }";
  const char* kGp2 =
      "SELECT ?pr { ?p a <T1> . ?o <product> ?p ; <price> ?pr ; "
      "<seller> ?s . }";

  auto q1 = sparql::ParseQuery(kGp1);
  auto q2 = sparql::ParseQuery(kGp2);
  ASSERT_TRUE(q1.ok() && q2.ok());
  auto gp1 = ntga::DecomposeToStars((*q1)->where.triples);
  auto gp2 = ntga::DecomposeToStars((*q2)->where.triples);
  ASSERT_TRUE(gp1.ok() && gp2.ok());

  ntga::OverlapResult overlap = ntga::FindOverlap(*gp1, *gp2);
  ASSERT_TRUE(overlap.overlaps) << overlap.explanation;
  auto comp = ntga::BuildComposite(*gp1, *gp2, overlap);
  ASSERT_TRUE(comp.ok());
  ntga::ResolvedPattern resolved =
      ntga::ResolvePattern(*comp, graph.dict());

  // Composite evaluation with the in-memory operators.
  std::vector<ntga::NestedTripleGroup> stars0, stars1;
  for (const rdf::Graph::SubjectGroup& sg : graph.SubjectGroups()) {
    ntga::TripleGroup tg;
    tg.subject = sg.subject;
    tg.triples = sg.triples;
    for (int s = 0; s < 2; ++s) {
      auto filtered =
          ntga::FilterStar(tg, resolved.stars[s], resolved.type_id);
      if (!filtered.has_value()) continue;
      ntga::NestedTripleGroup ntg;
      ntg.stars.resize(2);
      ntg.stars[s] = std::move(*filtered);
      (s == 0 ? stars0 : stars1).push_back(std::move(ntg));
    }
  }
  std::vector<ntga::NestedTripleGroup> joined = ntga::AlphaJoin(
      stars1, stars0, resolved.joins[0], {}, resolved.type_id);

  // Extract per-pattern bindings and compare with the reference.
  analytics::ReferenceEvaluator ref(&graph);
  for (int pattern = 0; pattern < 2; ++pattern) {
    ntga::AlphaCondition alpha;
    for (const auto& [star, keys] : resolved.pattern_secondary[pattern]) {
      for (const ntga::DataPropKey& k : keys) {
        alpha.push_back({star, k, true});
      }
    }
    std::vector<std::string> vars;
    for (const auto& [orig, comp_var] : comp->var_map[pattern]) {
      if (std::find(vars.begin(), vars.end(), comp_var) == vars.end()) {
        vars.push_back(comp_var);
      }
    }
    std::multiset<std::vector<rdf::TermId>> composite_rows;
    for (const ntga::NestedTripleGroup& ntg : joined) {
      if (!ntga::SatisfiesAlpha(ntg, alpha, resolved.type_id)) continue;
      for (auto& row :
           ntga::ExpandBindings(ntg, resolved, vars, true)) {
        composite_rows.insert(row);
      }
    }
    // Direct evaluation of the original pattern, projected through the
    // var map onto the same composite variable order.
    auto& original = pattern == 0 ? *q1 : *q2;
    auto direct = ref.EvaluatePattern(original->where);
    ASSERT_TRUE(direct.ok());
    std::multiset<std::vector<rdf::TermId>> direct_rows;
    std::vector<int> cols;
    for (const std::string& comp_var : vars) {
      std::string orig_var;
      for (const auto& [o, c] : comp->var_map[pattern]) {
        if (c == comp_var) orig_var = o;
      }
      cols.push_back(direct->VarIndex(orig_var));
    }
    for (const auto& row : direct->rows()) {
      std::vector<rdf::TermId> projected;
      for (int c : cols) {
        projected.push_back(c < 0 ? rdf::kInvalidTermId : row[c]);
      }
      direct_rows.insert(std::move(projected));
    }
    EXPECT_EQ(composite_rows, direct_rows)
        << "pattern " << pattern << " seed " << GetParam();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CompositeEquivalenceTest,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34, 55,
                                           89));

// ---------------------------------------------------------------------------
// Invariant 2: all four engines match the reference on randomized BSBM
// datasets and a rotating catalog query.
// ---------------------------------------------------------------------------

struct EngineSweepCase {
  uint64_t seed;
  const char* query;
};

class EngineAgreementSweep
    : public ::testing::TestWithParam<EngineSweepCase> {};

TEST_P(EngineAgreementSweep, EnginesMatchReference) {
  workload::BsbmConfig cfg;
  cfg.seed = GetParam().seed;
  cfg.num_products = 120 + (GetParam().seed % 5) * 60;
  cfg.num_features = 10 + (GetParam().seed % 3) * 10;
  engine::Dataset dataset(workload::GenerateBsbm(cfg));
  mr::Cluster cluster(mr::ClusterConfig{}, &dataset.dfs());

  auto cq = workload::FindQuery(GetParam().query);
  ASSERT_TRUE(cq.ok());
  auto parsed = sparql::ParseQuery((*cq)->sparql);
  ASSERT_TRUE(parsed.ok());
  auto query = analytics::AnalyzeQuery(**parsed);
  ASSERT_TRUE(query.ok());

  analytics::ReferenceEvaluator ref(&dataset.graph());
  auto expected = ref.Evaluate(**parsed);
  ASSERT_TRUE(expected.ok());
  auto expected_rows = expected->ToSortedStrings(dataset.dict());

  for (const auto& eng : engine::MakeAllEngines()) {
    engine::ExecStats stats;
    auto result = eng->Execute(*query, &dataset, &cluster, &stats);
    if (!result.ok()) {
      ADD_FAILURE() << eng->name() << ": " << result.status();
      continue;
    }
    EXPECT_EQ(result->ToSortedStrings(dataset.dict()), expected_rows)
        << eng->name() << " seed " << GetParam().seed << " query "
        << GetParam().query;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, EngineAgreementSweep,
    ::testing::Values(EngineSweepCase{101, "G1"}, EngineSweepCase{102, "G3"},
                      EngineSweepCase{103, "MG1"},
                      EngineSweepCase{104, "MG3"},
                      EngineSweepCase{105, "AQ1"},
                      EngineSweepCase{106, "R1"},
                      EngineSweepCase{107, "MG2"},
                      EngineSweepCase{108, "MG4"}),
    [](const ::testing::TestParamInfo<EngineSweepCase>& info) {
      return std::string(info.param.query) + "_seed" +
             std::to_string(info.param.seed);
    });

// ---------------------------------------------------------------------------
// Invariant 3: optimization knobs never change answers.
// ---------------------------------------------------------------------------

TEST(OptimizationInvarianceTest, KnobsNeverChangeAnswers) {
  workload::BsbmConfig cfg;
  cfg.num_products = 250;
  engine::Dataset dataset(workload::GenerateBsbm(cfg));
  mr::Cluster cluster(mr::ClusterConfig{}, &dataset.dfs());

  for (const char* qid : {"MG1", "MG3", "R1"}) {
    auto cq = workload::FindQuery(qid);
    auto parsed = sparql::ParseQuery((*cq)->sparql);
    auto query = analytics::AnalyzeQuery(**parsed);
    ASSERT_TRUE(query.ok());

    std::vector<engine::EngineOptions> variants;
    engine::EngineOptions base;
    variants.push_back(base);
    engine::EngineOptions no_partial = base;
    no_partial.partial_aggregation = false;
    variants.push_back(no_partial);
    engine::EngineOptions no_mapjoin = base;
    no_mapjoin.enable_map_joins = false;
    variants.push_back(no_mapjoin);
    engine::EngineOptions sequential = base;
    sequential.parallel_agg_join = false;
    variants.push_back(sequential);
    engine::EngineOptions big_threshold = base;
    big_threshold.map_join_threshold_bytes = 100 * 1024 * 1024;
    variants.push_back(big_threshold);
    engine::EngineOptions greedy = base;
    greedy.greedy_join_order = true;
    variants.push_back(greedy);

    std::vector<std::string> baseline;
    for (size_t v = 0; v < variants.size(); ++v) {
      for (const auto& eng : engine::MakeAllEngines(variants[v])) {
        engine::ExecStats stats;
        auto result = eng->Execute(*query, &dataset, &cluster, &stats);
        ASSERT_TRUE(result.ok())
            << qid << " variant " << v << " " << eng->name() << ": "
            << result.status();
        auto rows = result->ToSortedStrings(dataset.dict());
        if (baseline.empty()) {
          baseline = rows;
        } else {
          EXPECT_EQ(rows, baseline)
              << qid << " variant " << v << " on " << eng->name();
        }
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Invariant 4: partial-aggregate merging is order- and split-insensitive.
// ---------------------------------------------------------------------------

class AggregatorMergeSweep : public ::testing::TestWithParam<uint64_t> {};

TEST_P(AggregatorMergeSweep, AnyPartitioningMergesToSameResult) {
  Random rng(GetParam());
  rdf::Dictionary dict;
  std::vector<rdf::TermId> values;
  int n = 1 + static_cast<int>(rng.Uniform(60));
  for (int i = 0; i < n; ++i) {
    values.push_back(dict.InternInt(rng.UniformRange(-50, 50)));
  }
  for (sparql::AggFunc f :
       {sparql::AggFunc::kCount, sparql::AggFunc::kSum,
        sparql::AggFunc::kAvg, sparql::AggFunc::kMin,
        sparql::AggFunc::kMax, sparql::AggFunc::kSample,
        sparql::AggFunc::kGroupConcat}) {
    analytics::Aggregator whole(f, false);
    for (rdf::TermId v : values) whole.AddTerm(v, dict);

    // Random partitioning into up to 5 parts, merged in random order,
    // with a serialization round trip in the middle.
    int parts = 1 + static_cast<int>(rng.Uniform(5));
    std::vector<analytics::Aggregator> partial(
        parts, analytics::Aggregator(f, false));
    // (GROUP_CONCAT's canonical sorted order makes it partition-
    // insensitive too.)
    for (rdf::TermId v : values) {
      partial[rng.Uniform(parts)].AddTerm(v, dict);
    }
    analytics::Aggregator merged(f, false);
    while (!partial.empty()) {
      size_t pick = rng.Uniform(partial.size());
      auto restored = analytics::Aggregator::DeserializePartial(
          f, partial[pick].SerializePartial());
      ASSERT_TRUE(restored.ok());
      merged.Merge(*restored, dict);
      partial.erase(partial.begin() + pick);
    }
    EXPECT_EQ(merged.Finalize(&dict), whole.Finalize(&dict))
        << "func " << static_cast<int>(f) << " seed " << GetParam();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, AggregatorMergeSweep,
                         ::testing::Range<uint64_t>(1, 13));

}  // namespace
}  // namespace rapida
