#include "ntga/operators.h"

#include <gtest/gtest.h>

#include "sparql/parser.h"

namespace rapida::ntga {
namespace {

/// Fixture providing a dictionary with the Figure 4/5 vocabulary and
/// helpers to build triplegroups tersely.
class OperatorsTest : public ::testing::Test {
 protected:
  rdf::TermId Id(const std::string& iri) { return dict_.InternIri(iri); }
  DataPropKey Key(const std::string& p) { return DataPropKey{Id(p), 0}; }
  DataPropKey TypeKey(const std::string& o) {
    return DataPropKey{type_id_, Id(o)};
  }

  TripleGroup Tg(const std::string& subject,
                 std::initializer_list<std::pair<const char*, const char*>>
                     po_pairs) {
    TripleGroup tg;
    tg.subject = Id(subject);
    for (const auto& [p, o] : po_pairs) {
      tg.triples.push_back(rdf::Triple{tg.subject, Id(p), Id(o)});
    }
    return tg;
  }

  NestedTripleGroup Nest(int num_stars, int star, TripleGroup tg) {
    NestedTripleGroup ntg;
    ntg.stars.resize(num_stars);
    ntg.stars[star] = std::move(tg);
    return ntg;
  }

  rdf::Dictionary dict_;
  rdf::TermId type_id_ = dict_.InternIri(rdf::kRdfType);
};

// ---------------------------------------------------------------------------
// Figure 4(a): σ^γopt with P_prim={product, price},
// P_opt={validFrom, validTo}.
// ---------------------------------------------------------------------------
TEST_F(OperatorsTest, Fig4aOptionalGroupFilter) {
  std::vector<TripleGroup> tgs = {
      Tg("o1", {{"product", "p1"}, {"price", "100"}, {"validTo", "d1"}}),
      Tg("o2", {{"product", "p2"}, {"price", "200"}}),
      Tg("o3", {{"product", "p3"}, {"validFrom", "d2"}}),  // no price
      Tg("o4", {{"product", "p4"},
                {"price", "400"},
                {"validFrom", "d3"},
                {"validTo", "d4"}}),
  };
  std::set<DataPropKey> prim = {Key("product"), Key("price")};
  std::set<DataPropKey> opt = {Key("validFrom"), Key("validTo")};
  std::vector<TripleGroup> out =
      OptionalGroupFilter(tgs, prim, opt, type_id_);
  // tg1, tg2, tg4 pass; tg3 lacks the primary property price.
  ASSERT_EQ(out.size(), 3u);
  EXPECT_EQ(out[0].subject, Id("o1"));
  EXPECT_EQ(out[1].subject, Id("o2"));
  EXPECT_EQ(out[2].subject, Id("o4"));
}

TEST_F(OperatorsTest, OptionalGroupFilterProjectsIrrelevantTriples) {
  std::vector<TripleGroup> tgs = {
      Tg("o1", {{"product", "p1"}, {"price", "100"}, {"junk", "x"}}),
  };
  std::set<DataPropKey> prim = {Key("product"), Key("price")};
  std::vector<TripleGroup> out = OptionalGroupFilter(tgs, prim, {}, type_id_);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].triples.size(), 2u);  // junk dropped
}

TEST_F(OperatorsTest, TypeRestrictionsAreDistinctProps) {
  std::vector<TripleGroup> tgs = {
      Tg("p1", {{rdf::kRdfType, "PT18"}, {"pf", "f1"}}),
      Tg("p2", {{rdf::kRdfType, "PT9"}, {"pf", "f1"}}),
  };
  std::set<DataPropKey> prim = {TypeKey("PT18")};
  std::set<DataPropKey> opt = {Key("pf")};
  std::vector<TripleGroup> out = OptionalGroupFilter(tgs, prim, opt, type_id_);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].subject, Id("p1"));
}

// ---------------------------------------------------------------------------
// Figure 4(b)/(c): n-split.
// ---------------------------------------------------------------------------
TEST_F(OperatorsTest, Fig4bNSplit) {
  // TG' after the filter; sec1={validFrom}, sec2={validTo}.
  std::set<DataPropKey> prim = {Key("product"), Key("price")};
  std::vector<std::set<DataPropKey>> secs = {{Key("validFrom")},
                                             {Key("validTo")}};

  TripleGroup tg1 =
      Tg("o1", {{"product", "p1"}, {"price", "100"}, {"validTo", "d1"}});
  TripleGroup tg4 = Tg("o4", {{"product", "p4"},
                              {"price", "400"},
                              {"validFrom", "d3"},
                              {"validTo", "d4"}});
  TripleGroup tg2 = Tg("o2", {{"product", "p2"}, {"price", "200"}});

  auto split1 = NSplit(tg1, prim, secs, type_id_);
  EXPECT_FALSE(split1[0].has_value());  // tg1 lacks validFrom
  ASSERT_TRUE(split1[1].has_value());   // tg_12
  EXPECT_EQ(split1[1]->triples.size(), 3u);

  auto split4 = NSplit(tg4, prim, secs, type_id_);
  ASSERT_TRUE(split4[0].has_value());  // tg_41
  ASSERT_TRUE(split4[1].has_value());  // tg_42
  // tg_41 has product/price/validFrom but NOT validTo.
  EXPECT_FALSE(split4[0]->HasProp(Key("validTo"), type_id_));
  EXPECT_TRUE(split4[0]->HasProp(Key("validFrom"), type_id_));
  // tg_42 is the mirror.
  EXPECT_FALSE(split4[1]->HasProp(Key("validFrom"), type_id_));

  auto split2 = NSplit(tg2, prim, secs, type_id_);
  EXPECT_FALSE(split2[0].has_value());
  EXPECT_FALSE(split2[1].has_value());
}

TEST_F(OperatorsTest, Fig4cNSplitWithEmptyFirstCombination) {
  // sec1={} (primary-only pattern), sec2={validTo}: every group with the
  // primaries yields combination 1 regardless of optional props.
  std::set<DataPropKey> prim = {Key("product"), Key("price")};
  std::vector<std::set<DataPropKey>> secs = {{}, {Key("validTo")}};

  TripleGroup tg4 = Tg("o4", {{"product", "p4"},
                              {"price", "400"},
                              {"validFrom", "d3"},
                              {"validTo", "d4"}});
  auto split = NSplit(tg4, prim, secs, type_id_);
  ASSERT_TRUE(split[0].has_value());
  EXPECT_EQ(split[0]->triples.size(), 2u);  // primary only
  ASSERT_TRUE(split[1].has_value());
  EXPECT_EQ(split[1]->triples.size(), 3u);
}

// ---------------------------------------------------------------------------
// Table 2: α-Join conditions. Each row is a (GP1, GP2) pair over composite
// stars ab..:de..; the parameterized test drives the operator through all
// rows, checking which prop-combinations survive.
// ---------------------------------------------------------------------------

struct AlphaRow {
  const char* name;
  // Secondary property layout (presence flags per candidate combination).
  bool c_in_alpha1, f_in_alpha1, g_in_alpha1;  // required-present in α1
  bool c_absent_alpha1, f_absent_alpha1, g_absent_alpha1;  // required-absent
  bool c_in_alpha2, f_in_alpha2, g_in_alpha2;
  bool c_absent_alpha2, f_absent_alpha2, g_absent_alpha2;
  // A data combination (c/f/g present on the joined group).
  bool has_c, has_f, has_g;
  bool expect_kept;
};

class AlphaJoinTableTest : public OperatorsTest,
                           public ::testing::WithParamInterface<AlphaRow> {};

TEST_P(AlphaJoinTableTest, Row) {
  const AlphaRow& row = GetParam();
  // Star 0 carries c, star 1 carries f and g.
  NestedTripleGroup ntg;
  ntg.stars.resize(2);
  {
    std::initializer_list<std::pair<const char*, const char*>> base = {
        {"a", "x"}, {"b", "y"}};
    TripleGroup s0 = Tg("s0", base);
    if (row.has_c) s0.triples.push_back(rdf::Triple{Id("s0"), Id("c"), Id("v")});
    ntg.stars[0] = s0;
    TripleGroup s1 = Tg("s1", {{"d", "x"}, {"e", "y"}});
    if (row.has_f) s1.triples.push_back(rdf::Triple{Id("s1"), Id("f"), Id("v")});
    if (row.has_g) s1.triples.push_back(rdf::Triple{Id("s1"), Id("g"), Id("v")});
    ntg.stars[1] = s1;
  }

  auto build = [this](bool c_req, bool f_req, bool g_req, bool c_abs,
                      bool f_abs, bool g_abs) {
    AlphaCondition cond;
    if (c_req) cond.push_back({0, Key("c"), true});
    if (c_abs) cond.push_back({0, Key("c"), false});
    if (f_req) cond.push_back({1, Key("f"), true});
    if (f_abs) cond.push_back({1, Key("f"), false});
    if (g_req) cond.push_back({1, Key("g"), true});
    if (g_abs) cond.push_back({1, Key("g"), false});
    return cond;
  };
  std::vector<AlphaCondition> alphas = {
      build(row.c_in_alpha1, row.f_in_alpha1, row.g_in_alpha1,
            row.c_absent_alpha1, row.f_absent_alpha1, row.g_absent_alpha1),
      build(row.c_in_alpha2, row.f_in_alpha2, row.g_in_alpha2,
            row.c_absent_alpha2, row.f_absent_alpha2, row.g_absent_alpha2),
  };
  EXPECT_EQ(SatisfiesAnyAlpha(ntg, alphas, type_id_), row.expect_kept)
      << row.name;
}

// Rows 2-5 of Table 2 (row 1 has no secondary props — no α needed),
// plus combinations the paper calls out as "irrelevant patterns".
INSTANTIATE_TEST_SUITE_P(
    Table2, AlphaJoinTableTest,
    ::testing::Values(
        // Row 2: ab:de vs ab:def — α1: f=∅; α2: f≠∅. Everything survives.
        AlphaRow{"row2_no_f", false, false, false, false, true, false,
                 false, true, false, false, false, false,
                 false, false, false, true},
        AlphaRow{"row2_with_f", false, false, false, false, true, false,
                 false, true, false, false, false, false,
                 false, true, false, true},
        // Row 3: ab:de vs abc:def — α1: c=∅∧f=∅; α2: c≠∅∧f≠∅.
        AlphaRow{"row3_neither", false, false, false, true, true, false,
                 true, true, false, false, false, false,
                 false, false, false, true},
        AlphaRow{"row3_both", false, false, false, true, true, false,
                 true, true, false, false, false, false,
                 true, true, false, true},
        AlphaRow{"row3_only_c_dropped", false, false, false, true, true,
                 false, true, true, false, false, false, false,
                 true, false, false, false},
        AlphaRow{"row3_only_f_dropped", false, false, false, true, true,
                 false, true, true, false, false, false, false,
                 false, true, false, false},
        // Row 4: abc:de vs ab:def — α1: c≠∅∧f=∅; α2: c=∅∧f≠∅.
        AlphaRow{"row4_c_only", true, false, false, false, true, false,
                 false, true, false, true, false, false,
                 true, false, false, true},
        AlphaRow{"row4_f_only", true, false, false, false, true, false,
                 false, true, false, true, false, false,
                 false, true, false, true},
        AlphaRow{"row4_both_dropped", true, false, false, false, true,
                 false, false, true, false, true, false, false,
                 true, true, false, false},
        AlphaRow{"row4_neither_dropped", true, false, false, false, true,
                 false, false, true, false, true, false, false,
                 false, false, false, false},
        // Row 5: abc:de vs ab:defg — α1: c≠∅∧f=∅∧g=∅; α2: c=∅∧f≠∅∧g≠∅.
        // "abcdefg" (all present) matches neither.
        AlphaRow{"row5_abcdefg_dropped", true, false, false, false, true,
                 true, false, true, true, true, false, false,
                 true, true, true, false},
        AlphaRow{"row5_abdef_dropped", true, false, false, false, true,
                 true, false, true, true, true, false, false,
                 false, true, false, false},
        AlphaRow{"row5_abcde_kept", true, false, false, false, true, true,
                 false, true, true, true, false, false,
                 true, false, false, true},
        AlphaRow{"row5_abdefg_kept", true, false, false, false, true, true,
                 false, true, true, true, false, false,
                 false, true, true, true}),
    [](const ::testing::TestParamInfo<AlphaRow>& info) {
      return info.param.name;
    });

// ---------------------------------------------------------------------------
// α-Join end-to-end (Def. 3.5) on a small composite pattern.
// ---------------------------------------------------------------------------
TEST_F(OperatorsTest, AlphaJoinSubjectObject) {
  // Pattern: star0 = products, star1 = offers joining on pr (object of
  // star1's tp, subject of star0).
  ResolvedJoin join;
  join.star_a = 1;
  join.role_a = JoinRole::kObject;
  join.prop_a = Key("pr");
  join.star_b = 0;
  join.role_b = JoinRole::kSubject;

  std::vector<NestedTripleGroup> products = {
      Nest(2, 0, Tg("p1", {{rdf::kRdfType, "PT18"}})),
      Nest(2, 0, Tg("p2", {{rdf::kRdfType, "PT18"}, {"pf", "f1"}})),
  };
  std::vector<NestedTripleGroup> offers = {
      Nest(2, 1, Tg("o1", {{"pr", "p1"}, {"pc", "100"}})),
      Nest(2, 1, Tg("o2", {{"pr", "p2"}, {"pc", "200"}})),
      Nest(2, 1, Tg("o3", {{"pr", "p9"}, {"pc", "300"}})),  // dangling
  };
  std::vector<NestedTripleGroup> joined =
      AlphaJoin(offers, products, join, {}, type_id_);
  ASSERT_EQ(joined.size(), 2u);
  for (const NestedTripleGroup& ntg : joined) {
    EXPECT_TRUE(ntg.IsFilled(0));
    EXPECT_TRUE(ntg.IsFilled(1));
  }
}

TEST_F(OperatorsTest, AlphaJoinFiltersByAlpha) {
  ResolvedJoin join;
  join.star_a = 1;
  join.role_a = JoinRole::kObject;
  join.prop_a = Key("pr");
  join.star_b = 0;
  join.role_b = JoinRole::kSubject;

  std::vector<NestedTripleGroup> products = {
      Nest(2, 0, Tg("p1", {{rdf::kRdfType, "PT18"}})),           // no pf
      Nest(2, 0, Tg("p2", {{rdf::kRdfType, "PT18"}, {"pf", "f1"}})),
  };
  std::vector<NestedTripleGroup> offers = {
      Nest(2, 1, Tg("o1", {{"pr", "p1"}, {"pc", "100"}})),
      Nest(2, 1, Tg("o2", {{"pr", "p2"}, {"pc", "200"}})),
  };
  // Single α: pf must be present on star 0.
  std::vector<AlphaCondition> alphas = {{{0, Key("pf"), true}}};
  std::vector<NestedTripleGroup> joined =
      AlphaJoin(offers, products, join, alphas, type_id_);
  ASSERT_EQ(joined.size(), 1u);
  EXPECT_EQ(joined[0].stars[0].subject, Id("p2"));
}

TEST_F(OperatorsTest, AlphaJoinObjectObject) {
  ResolvedJoin join;
  join.star_a = 0;
  join.role_a = JoinRole::kObject;
  join.prop_a = Key("ve");
  join.star_b = 1;
  join.role_b = JoinRole::kObject;
  join.prop_b = Key("cn");

  std::vector<NestedTripleGroup> left = {
      Nest(2, 0, Tg("s1", {{"ve", "x"}})),
  };
  std::vector<NestedTripleGroup> right = {
      Nest(2, 1, Tg("s2", {{"cn", "x"}})),
      Nest(2, 1, Tg("s3", {{"cn", "y"}})),
  };
  std::vector<NestedTripleGroup> joined =
      AlphaJoin(left, right, join, {}, type_id_);
  ASSERT_EQ(joined.size(), 1u);
  EXPECT_EQ(joined[0].stars[1].subject, Id("s2"));
}

TEST_F(OperatorsTest, AlphaJoinMultiValuedEmitsOncePerPair) {
  // Left star's join property has two values both matching the same right
  // group: the pair must be emitted once, not twice.
  ResolvedJoin join;
  join.star_a = 0;
  join.role_a = JoinRole::kObject;
  join.prop_a = Key("ve");
  join.star_b = 1;
  join.role_b = JoinRole::kObject;
  join.prop_b = Key("cn");

  std::vector<NestedTripleGroup> left = {
      Nest(2, 0, Tg("s1", {{"ve", "x"}, {"ve", "y"}})),
  };
  std::vector<NestedTripleGroup> right = {
      Nest(2, 1, Tg("s2", {{"cn", "x"}, {"cn", "y"}})),
  };
  std::vector<NestedTripleGroup> joined =
      AlphaJoin(left, right, join, {}, type_id_);
  EXPECT_EQ(joined.size(), 1u);
}

// ---------------------------------------------------------------------------
// Figure 5: TG Agg-Join computing feature-country groupings.
// ---------------------------------------------------------------------------
class AggJoinFig5Test : public OperatorsTest {
 protected:
  void SetUp() override {
    // Composite pattern (resolved by hand): star0 = product {ty18, pf},
    // star1 = offer {pr, pc, ve}, star2 = vendor {cn}.
    pattern_.type_id = type_id_;
    {
      ResolvedStar s;
      s.subject_var = "s1";
      s.triples.push_back({TypeKey("PT18"), "", rdf::kInvalidTermId});
      s.triples.push_back({Key("pf"), "feature", rdf::kInvalidTermId});
      s.primary = {TypeKey("PT18")};
      s.secondary = {Key("pf")};
      pattern_.stars.push_back(s);
    }
    {
      ResolvedStar s;
      s.subject_var = "s2";
      s.triples.push_back({Key("pr"), "s1", rdf::kInvalidTermId});
      s.triples.push_back({Key("pc"), "price", rdf::kInvalidTermId});
      s.triples.push_back({Key("ve"), "s3", rdf::kInvalidTermId});
      s.primary = {Key("pr"), Key("pc"), Key("ve")};
      pattern_.stars.push_back(s);
    }
    {
      ResolvedStar s;
      s.subject_var = "s3";
      s.triples.push_back({Key("cn"), "country", rdf::kInvalidTermId});
      s.primary = {Key("cn")};
      pattern_.stars.push_back(s);
    }
  }

  /// A fully-joined detail group: product (optionally with a feature),
  /// offer with price, vendor with country.
  NestedTripleGroup Detail(const char* prod, const char* feature,
                           const char* offer, int price, const char* vendor,
                           const char* country) {
    NestedTripleGroup ntg;
    ntg.stars.resize(3);
    TripleGroup p = Tg(prod, {{rdf::kRdfType, "PT18"}});
    if (feature != nullptr) {
      p.triples.push_back(rdf::Triple{Id(prod), Id("pf"), Id(feature)});
    }
    ntg.stars[0] = p;
    TripleGroup o;
    o.subject = Id(offer);
    o.triples.push_back(rdf::Triple{Id(offer), Id("pr"), Id(prod)});
    o.triples.push_back(
        rdf::Triple{Id(offer), Id("pc"), dict_.InternInt(price)});
    o.triples.push_back(rdf::Triple{Id(offer), Id("ve"), Id(vendor)});
    ntg.stars[1] = o;
    ntg.stars[2] = Tg(vendor, {{"cn", country}});
    return ntg;
  }

  ResolvedPattern pattern_;
};

TEST_F(AggJoinFig5Test, GroupsByFeatureCountryWithAlpha) {
  std::vector<NestedTripleGroup> detail = {
      Detail("p1", "Feat1", "o1", 100, "v1", "UK"),
      Detail("p2", nullptr, "o2", 200, "v2", "UK"),   // no pf -> excluded
      Detail("p3", "Feat2", "o3", 300, "v3", "DE"),
      Detail("p4", "Feat1", "o4", 400, "v4", "UK"),
  };
  AggJoinSpec spec;
  spec.group_vars = {"feature", "country"};
  spec.aggs = {{sparql::AggFunc::kSum, "price", false, "sumF"},
               {sparql::AggFunc::kCount, "price", false, "countF"}};
  spec.alpha = {{0, Key("pf"), true}};  // pf != {}

  std::vector<AggregatedGroup> out =
      AggJoin(detail, pattern_, spec, nullptr, &dict_);
  ASSERT_EQ(out.size(), 2u);  // (Feat1,UK), (Feat2,DE)
  for (const AggregatedGroup& g : out) {
    std::string feature = dict_.Get(g.key[0]).text;
    if (feature == "Feat1") {
      EXPECT_EQ(dict_.Get(g.key[1]).text, "UK");
      EXPECT_DOUBLE_EQ(*dict_.AsNumber(g.values[0]), 500);  // 100+400
      EXPECT_DOUBLE_EQ(*dict_.AsNumber(g.values[1]), 2);
    } else {
      EXPECT_EQ(feature, "Feat2");
      EXPECT_DOUBLE_EQ(*dict_.AsNumber(g.values[0]), 300);
    }
  }
}

TEST_F(AggJoinFig5Test, EmptyRngBaseKeepsDefaults) {
  // Def 3.6: a base triplegroup whose RNG is empty keeps default values
  // (count 0); base keys are supplied explicitly.
  std::vector<NestedTripleGroup> detail = {
      Detail("p1", "Feat1", "o1", 100, "v1", "UK"),
  };
  std::vector<std::vector<rdf::TermId>> base = {
      {Id("Feat1"), Id("UK")},
      {Id("Feat9"), Id("FR")},  // no detail matches
  };
  AggJoinSpec spec;
  spec.group_vars = {"feature", "country"};
  spec.aggs = {{sparql::AggFunc::kCount, "price", false, "countF"}};
  spec.alpha = {{0, Key("pf"), true}};

  std::vector<AggregatedGroup> out =
      AggJoin(detail, pattern_, spec, &base, &dict_);
  ASSERT_EQ(out.size(), 2u);
  for (const AggregatedGroup& g : out) {
    double count = *dict_.AsNumber(g.values[0]);
    if (dict_.Get(g.key[0]).text == "Feat9") {
      EXPECT_DOUBLE_EQ(count, 0);
    } else {
      EXPECT_DOUBLE_EQ(count, 1);
    }
  }
}

TEST_F(AggJoinFig5Test, GroupByAllSingleGroup) {
  std::vector<NestedTripleGroup> detail = {
      Detail("p1", "Feat1", "o1", 100, "v1", "UK"),
      Detail("p2", nullptr, "o2", 200, "v2", "UK"),
  };
  AggJoinSpec spec;  // θ empty = ALL, no α
  spec.aggs = {{sparql::AggFunc::kSum, "price", false, "sumT"},
               {sparql::AggFunc::kCount, "price", false, "cntT"}};
  std::vector<AggregatedGroup> out =
      AggJoin(detail, pattern_, spec, nullptr, &dict_);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_DOUBLE_EQ(*dict_.AsNumber(out[0].values[0]), 300);
  EXPECT_DOUBLE_EQ(*dict_.AsNumber(out[0].values[1]), 2);
}

TEST_F(AggJoinFig5Test, MultiValuedFeatureFansOut) {
  // One product with two features: its offer's price contributes to both
  // feature groups (SPARQL multiplicity).
  NestedTripleGroup d = Detail("p1", "Feat1", "o1", 100, "v1", "UK");
  d.stars[0].triples.push_back(
      rdf::Triple{Id("p1"), Id("pf"), Id("Feat2")});
  AggJoinSpec spec;
  spec.group_vars = {"feature"};
  spec.aggs = {{sparql::AggFunc::kSum, "price", false, "sumF"}};
  spec.alpha = {{0, Key("pf"), true}};
  std::vector<AggregatedGroup> out = AggJoin({d}, pattern_, spec, nullptr,
                                             &dict_);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_DOUBLE_EQ(*dict_.AsNumber(out[0].values[0]), 100);
  EXPECT_DOUBLE_EQ(*dict_.AsNumber(out[1].values[0]), 100);
}

TEST_F(AggJoinFig5Test, CountStar) {
  std::vector<NestedTripleGroup> detail = {
      Detail("p1", "Feat1", "o1", 100, "v1", "UK"),
      Detail("p2", "Feat1", "o2", 200, "v2", "UK"),
  };
  AggJoinSpec spec;
  spec.group_vars = {"country"};
  spec.aggs = {{sparql::AggFunc::kCount, "", true, "n"}};
  std::vector<AggregatedGroup> out =
      AggJoin(detail, pattern_, spec, nullptr, &dict_);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_DOUBLE_EQ(*dict_.AsNumber(out[0].values[0]), 2);
}

// ---------------------------------------------------------------------------
// ExpandBindings corner cases.
// ---------------------------------------------------------------------------
TEST_F(AggJoinFig5Test, ExpandBindingsIntersectsMultipleSources) {
  // Variable bound in two positions (join var): candidates are the
  // intersection, not the union.
  ResolvedPattern pattern;
  pattern.type_id = type_id_;
  {
    ResolvedStar s;
    s.subject_var = "a";
    s.triples.push_back({Key("ve"), "x", rdf::kInvalidTermId});
    pattern.stars.push_back(s);
  }
  {
    ResolvedStar s;
    s.subject_var = "b";
    s.triples.push_back({Key("cn"), "x", rdf::kInvalidTermId});
    pattern.stars.push_back(s);
  }
  NestedTripleGroup ntg;
  ntg.stars.resize(2);
  ntg.stars[0] = Tg("s1", {{"ve", "x1"}, {"ve", "x2"}});
  ntg.stars[1] = Tg("s2", {{"cn", "x2"}, {"cn", "x3"}});
  auto rows = ExpandBindings(ntg, pattern, {"x"}, true);
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0][0], Id("x2"));
}

TEST_F(AggJoinFig5Test, ExpandBindingsSkipUnbound) {
  NestedTripleGroup d = Detail("p1", nullptr, "o1", 100, "v1", "UK");
  auto with_skip = ExpandBindings(d, pattern_, {"feature"}, true);
  EXPECT_TRUE(with_skip.empty());
  auto without_skip = ExpandBindings(d, pattern_, {"feature"}, false);
  ASSERT_EQ(without_skip.size(), 1u);
  EXPECT_EQ(without_skip[0][0], rdf::kInvalidTermId);
}

// ---------------------------------------------------------------------------
// Serialization round trips.
// ---------------------------------------------------------------------------
TEST_F(OperatorsTest, TripleGroupSerializationRoundTrip) {
  TripleGroup tg = Tg("o1", {{"product", "p1"}, {"price", "100"}});
  auto parsed = ParseTripleGroup(SerializeTripleGroup(tg));
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(*parsed, tg);
}

TEST_F(OperatorsTest, NestedSerializationRoundTrip) {
  NestedTripleGroup ntg;
  ntg.stars.resize(3);
  ntg.stars[0] = Tg("p1", {{rdf::kRdfType, "PT18"}});
  ntg.stars[2] = Tg("v1", {{"cn", "UK"}});
  auto parsed = ParseNested(SerializeNested(ntg), 3);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(*parsed, ntg);
  EXPECT_FALSE(parsed->IsFilled(1));
}

TEST_F(OperatorsTest, ParseRejectsGarbage) {
  EXPECT_FALSE(ParseTripleGroup("").ok());
  EXPECT_FALSE(ParseTripleGroup("abc").ok());
  EXPECT_FALSE(ParseTripleGroup("1;nocomma").ok());
  EXPECT_FALSE(ParseNested("9:1", 3).ok());
  EXPECT_FALSE(ParseNested("nocolon", 3).ok());
}

}  // namespace
}  // namespace rapida::ntga
