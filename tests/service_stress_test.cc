// Concurrency stress for the query service, designed to run under
// ThreadSanitizer (scripts/check.sh builds with RAPIDA_SANITIZE=thread):
// 32 sessions hammer the shared datasets through every service feature at
// once — plan/result caching, dedup, shared-scan batching, fair-share
// accounting — while a mutator thread concurrently appends triples.
#include "service/query_service.h"

#include <gtest/gtest.h>

#include <atomic>
#include <future>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "analytics/analytical_query.h"
#include "engines/rapid_analytics.h"
#include "sparql/parser.h"
#include "workload/bsbm.h"
#include "workload/catalog.h"
#include "workload/chem2bio.h"
#include "workload/pubmed.h"

namespace rapida::service {
namespace {

std::vector<std::string> DirectResult(const std::string& sparql,
                                      engine::Dataset* dataset) {
  auto parsed = sparql::ParseQuery(sparql);
  EXPECT_TRUE(parsed.ok()) << parsed.status();
  auto query = analytics::AnalyzeQuery(**parsed);
  EXPECT_TRUE(query.ok()) << query.status();
  mr::Cluster cluster(mr::ClusterConfig{}, &dataset->dfs());
  engine::RapidAnalyticsEngine engine;
  auto result = engine.Execute(*query, dataset, &cluster, nullptr);
  EXPECT_TRUE(result.ok()) << result.status();
  return result->ToSortedStrings(dataset->dict());
}

TEST(ServiceStressTest, ThirtyTwoSessionsMatchOracle) {
  std::map<std::string, std::unique_ptr<engine::Dataset>> datasets;
  datasets["bsbm"] = std::make_unique<engine::Dataset>(
      workload::GenerateBsbm(workload::BsbmConfig{}));
  datasets["chem"] = std::make_unique<engine::Dataset>(
      workload::GenerateChem2Bio(workload::ChemConfig{}));
  datasets["pubmed"] = std::make_unique<engine::Dataset>(
      workload::GeneratePubmed(workload::PubmedConfig{}));

  std::map<std::string, std::vector<std::string>> expected;
  for (const auto& q : workload::Catalog()) {
    expected[q.id] = DirectResult(q.sparql, datasets[q.dataset].get());
  }

  ServiceOptions opts;
  opts.workers = 4;
  opts.max_queue_depth = 4096;
  opts.enable_batching = true;
  opts.batch_window_ms = 1.0;
  QueryService svc(opts);
  for (auto& [name, ds] : datasets) svc.RegisterDataset(name, ds.get());

  constexpr int kSessions = 32;
  std::atomic<int> mismatches{0};
  std::atomic<int> errors{0};
  std::vector<std::thread> threads;
  threads.reserve(kSessions);
  for (int s = 0; s < kSessions; ++s) {
    int session = svc.OpenSession("stress" + std::to_string(s),
                                  1.0 + (s % 4));  // mixed weights
    threads.emplace_back([&, s, session] {
      // Stagger starting offsets so sessions collide on different queries.
      const auto& catalog = workload::Catalog();
      for (size_t i = 0; i < catalog.size(); ++i) {
        const auto& q = catalog[(i + s) % catalog.size()];
        Response r = svc.Execute(session, QuerySpec{q.sparql, q.dataset});
        if (!r.result.ok()) {
          ++errors;
          continue;
        }
        if (r.result->ToSortedStrings(datasets[q.dataset]->dict()) !=
            expected[q.id]) {
          ++mismatches;
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(errors.load(), 0);
  EXPECT_EQ(mismatches.load(), 0);
  EXPECT_EQ(svc.metrics().completed(),
            static_cast<uint64_t>(kSessions) * workload::Catalog().size());
  // Real cluster work happened and was accounted (not everything can have
  // been a cache hit — the cold pass executes).
  EXPECT_GT(svc.scheduler().TotalDemandSimSeconds(), 0);
}

TEST(ServiceStressTest, QueriesRaceMutationsSafely) {
  // No fixed oracle here — the dataset changes underneath the queries.
  // The assertion is that every query either succeeds or is typed-rejected
  // and the run is race-free (meaningful under TSan), and that cached
  // results are never served across a version bump (spot-checked at the
  // end on the quiesced dataset).
  auto dataset = std::make_unique<engine::Dataset>(
      workload::GenerateBsbm(workload::BsbmConfig{}));

  ServiceOptions opts;
  opts.workers = 4;
  opts.max_queue_depth = 4096;
  opts.enable_batching = true;
  opts.batch_window_ms = 1.0;
  QueryService svc(opts);
  svc.RegisterDataset("bsbm", dataset.get());

  std::vector<const workload::CatalogQuery*> bsbm_queries;
  for (const auto& q : workload::Catalog()) {
    if (q.dataset == "bsbm") bsbm_queries.push_back(&q);
  }
  ASSERT_FALSE(bsbm_queries.empty());

  std::atomic<int> errors{0};
  std::vector<std::thread> threads;
  for (int s = 0; s < 8; ++s) {
    int session = svc.OpenSession("racer" + std::to_string(s));
    threads.emplace_back([&, s, session] {
      for (size_t i = 0; i < 2 * bsbm_queries.size(); ++i) {
        const auto* q = bsbm_queries[(i + s) % bsbm_queries.size()];
        Response r = svc.Execute(session, QuerySpec{q->sparql, "bsbm"});
        if (!r.result.ok()) ++errors;
      }
    });
  }
  threads.emplace_back([&] {
    for (int i = 0; i < 16; ++i) {
      std::string offer = "stress-offer-" + std::to_string(i);
      Status st = svc.Mutate(
          "bsbm", {{rdf::Term::Iri(offer), rdf::Term::Iri("product"),
                    rdf::Term::Iri("stress-product")},
                   {rdf::Term::Iri(offer), rdf::Term::Iri("price"),
                    rdf::Term::Literal(std::to_string(100 + i),
                                       rdf::kXsdInteger)}});
      EXPECT_TRUE(st.ok()) << st;
      std::this_thread::yield();
    }
  });
  for (auto& t : threads) t.join();
  EXPECT_EQ(errors.load(), 0);
  EXPECT_GE(dataset->version(), 16u);

  // Quiesced: the service must now agree with direct execution on the
  // mutated dataset (stale cache entries keyed by old versions are dead).
  int session = svc.OpenSession("check");
  for (const auto* q : bsbm_queries) {
    Response r = svc.Execute(session, QuerySpec{q->sparql, "bsbm"});
    ASSERT_TRUE(r.result.ok()) << q->id << ": " << r.result.status();
    EXPECT_EQ(r.result->ToSortedStrings(dataset->dict()),
              DirectResult(q->sparql, dataset.get()))
        << q->id;
  }
}

}  // namespace
}  // namespace rapida::service
