#include "ntga/star_pattern.h"

#include <gtest/gtest.h>

#include "sparql/parser.h"

namespace rapida::ntga {
namespace {

StarGraph Decompose(const std::string& bgp_query) {
  auto q = sparql::ParseQuery(bgp_query);
  EXPECT_TRUE(q.ok()) << q.status();
  auto sg = DecomposeToStars((*q)->where.triples);
  EXPECT_TRUE(sg.ok()) << sg.status();
  return sg.ok() ? *sg : StarGraph{};
}

TEST(StarPatternTest, SingleStar) {
  StarGraph sg = Decompose(
      "SELECT ?o { ?o <product> ?p ; <price> ?pr ; <vendor> ?v . }");
  ASSERT_EQ(sg.stars.size(), 1u);
  EXPECT_EQ(sg.stars[0].subject_var, "o");
  EXPECT_EQ(sg.stars[0].triples.size(), 3u);
  EXPECT_TRUE(sg.joins.empty());
}

TEST(StarPatternTest, TypeTripleBecomesTypedPropKey) {
  StarGraph sg = Decompose("SELECT ?p { ?p a <PT18> ; <label> ?l . }");
  ASSERT_EQ(sg.stars.size(), 1u);
  std::set<PropKey> props = sg.stars[0].Props();
  bool found_typed = false;
  for (const PropKey& k : props) {
    if (k.is_type()) {
      EXPECT_EQ(k.type_object, "PT18");
      found_typed = true;
    }
  }
  EXPECT_TRUE(found_typed);
}

TEST(StarPatternTest, SubjectObjectJoin) {
  // AQ1-style: offer star joins product star on ?p (object of product tp,
  // subject of the product star).
  StarGraph sg = Decompose(
      "SELECT ?p { ?p a <PT18> . ?o <product> ?p ; <price> ?pr . }");
  ASSERT_EQ(sg.stars.size(), 2u);
  ASSERT_EQ(sg.joins.size(), 1u);
  const JoinEdge& e = sg.joins[0];
  EXPECT_EQ(e.var, "p");
  EXPECT_EQ(e.role_a, JoinRole::kObject);
  EXPECT_EQ(e.prop_a.property, "product");
  EXPECT_EQ(e.role_b, JoinRole::kSubject);
}

TEST(StarPatternTest, ObjectObjectJoin) {
  // AQ3 GP2-style: ?s3 ve ?o6 . ?s4 cn ?o6 — object-object join on ?o6.
  StarGraph sg = Decompose(
      "SELECT ?s3 { ?s3 <pr> ?s1 ; <ve> ?o6 . ?s4 <cn> ?o6 . }");
  ASSERT_EQ(sg.stars.size(), 2u);
  ASSERT_EQ(sg.joins.size(), 1u);
  const JoinEdge& e = sg.joins[0];
  EXPECT_EQ(e.var, "o6");
  EXPECT_EQ(e.role_a, JoinRole::kObject);
  EXPECT_EQ(e.role_b, JoinRole::kObject);
  EXPECT_EQ(e.prop_a.property, "ve");
  EXPECT_EQ(e.prop_b.property, "cn");
}

TEST(StarPatternTest, ThreeStarChain) {
  StarGraph sg = Decompose(
      "SELECT ?c { ?p a <PT1> . ?o <product> ?p ; <vendor> ?v . "
      "?v <country> ?c . }");
  EXPECT_EQ(sg.stars.size(), 3u);
  ASSERT_EQ(sg.joins.size(), 2u);
}

TEST(StarPatternTest, StarOfSubject) {
  StarGraph sg = Decompose(
      "SELECT ?p { ?p a <PT1> . ?o <product> ?p . }");
  EXPECT_EQ(sg.StarOfSubject("p"), 0);
  EXPECT_EQ(sg.StarOfSubject("o"), 1);
  EXPECT_EQ(sg.StarOfSubject("zzz"), -1);
}

TEST(StarPatternTest, RejectsConstantSubject) {
  auto q = sparql::ParseQuery("SELECT ?o { <s1> <p> ?o . }");
  ASSERT_TRUE(q.ok());
  EXPECT_FALSE(DecomposeToStars((*q)->where.triples).ok());
}

TEST(StarPatternTest, RejectsUnboundProperty) {
  auto q = sparql::ParseQuery("SELECT ?o { ?s ?p ?o . }");
  ASSERT_TRUE(q.ok());
  EXPECT_FALSE(DecomposeToStars((*q)->where.triples).ok());
}

TEST(StarPatternTest, FindProp) {
  StarGraph sg = Decompose("SELECT ?o { ?o <price> ?pr ; <vendor> ?v . }");
  PropKey price{"price", ""};
  PropKey nope{"nope", ""};
  EXPECT_GE(sg.stars[0].FindProp(price), 0);
  EXPECT_EQ(sg.stars[0].FindProp(nope), -1);
}

}  // namespace
}  // namespace rapida::ntga
