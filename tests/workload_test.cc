#include <gtest/gtest.h>

#include "rdf/ntriples.h"
#include "workload/bsbm.h"
#include "workload/chem2bio.h"
#include "workload/pubmed.h"

namespace rapida::workload {
namespace {

TEST(BsbmTest, Deterministic) {
  BsbmConfig cfg;
  cfg.num_products = 100;
  rdf::Graph a = GenerateBsbm(cfg);
  rdf::Graph b = GenerateBsbm(cfg);
  EXPECT_EQ(a.size(), b.size());
  EXPECT_EQ(a.triples(), b.triples());
}

TEST(BsbmTest, ScalesWithProducts) {
  BsbmConfig small, big;
  small.num_products = 100;
  big.num_products = 400;
  EXPECT_GT(GenerateBsbm(big).size(), 3 * GenerateBsbm(small).size());
}

TEST(BsbmTest, TypeSkew) {
  BsbmConfig cfg;
  cfg.num_products = 1000;
  rdf::Graph g = GenerateBsbm(cfg);
  rdf::TermId type = g.TypeIdOrInvalid();
  ASSERT_NE(type, rdf::kInvalidTermId);
  rdf::TermId pt1 = g.dict().LookupIri(std::string(kBsbmNs) + "ProductType1");
  rdf::TermId pt10 =
      g.dict().LookupIri(std::string(kBsbmNs) + "ProductType10");
  ASSERT_NE(pt1, rdf::kInvalidTermId);
  int n1 = 0, n10 = 0;
  for (const rdf::Triple& t : g.triples()) {
    if (t.p != type) continue;
    if (t.o == pt1) ++n1;
    if (t.o == pt10) ++n10;
  }
  // ProductType1 is Zipf-popular (lo selectivity); the last type is rare.
  EXPECT_GT(n1, 5 * std::max(n10, 1));
}

TEST(ChemTest, HasExpectedProperties) {
  ChemConfig cfg;
  rdf::Graph g = GenerateChem2Bio(cfg);
  for (const char* p : {"CID", "gi", "assay_gi", "geneSymbol", "gene", "DBID", "medline_gene",
                        "Generic_Name", "protein", "Pathway_name",
                        "pathwayid", "side_effect", "cid", "SwissProt_ID",
                        "disease"}) {
    EXPECT_NE(g.dict().LookupIri(std::string(kChemNs) + p),
              rdf::kInvalidTermId)
        << p;
  }
  // Dexamethasone exists (G5 anchor).
  EXPECT_NE(g.dict().Lookup(rdf::Term::Literal("Dexamethasone")),
            rdf::kInvalidTermId);
}

TEST(ChemTest, MedlineIsTheLargeRelation) {
  ChemConfig cfg;
  rdf::Graph g = GenerateChem2Bio(cfg);
  auto counts = g.PropertyCounts();
  uint64_t gene_on_pubs =
      counts[g.dict().LookupIri(std::string(kChemNs) + "medline_gene")];
  uint64_t drug_names =
      counts[g.dict().LookupIri(std::string(kChemNs) + "Generic_Name")];
  // ?pmid :gene rows dominate drug metadata by an order of magnitude.
  EXPECT_GT(gene_on_pubs, 10 * drug_names);
}

TEST(PubmedTest, MultiValuedFanout) {
  PubmedConfig cfg;
  cfg.num_publications = 500;
  rdf::Graph g = GeneratePubmed(cfg);
  auto counts = g.PropertyCounts();
  uint64_t mesh =
      counts[g.dict().LookupIri(std::string(kPubmedNs) + "mesh_heading")];
  uint64_t pubs =
      counts[g.dict().LookupIri(std::string(kPubmedNs) + "pub_type")];
  EXPECT_GT(mesh, 4 * pubs);  // heavy multi-valued property
}

TEST(PubmedTest, NewsIsRare) {
  PubmedConfig cfg;
  cfg.num_publications = 1000;
  rdf::Graph g = GeneratePubmed(cfg);
  rdf::TermId news = g.dict().Lookup(rdf::Term::Literal("News"));
  rdf::TermId ja = g.dict().Lookup(rdf::Term::Literal("Journal Article"));
  ASSERT_NE(news, rdf::kInvalidTermId);
  ASSERT_NE(ja, rdf::kInvalidTermId);
  int n_news = 0, n_ja = 0;
  for (const rdf::Triple& t : g.triples()) {
    if (t.o == news) ++n_news;
    if (t.o == ja) ++n_ja;
  }
  EXPECT_GT(n_ja, 5 * n_news);
  EXPECT_GT(n_news, 0);
}


TEST(WorkloadRoundTripTest, GeneratedGraphsSurviveNTriplesRoundTrip) {
  BsbmConfig cfg;
  cfg.num_products = 60;
  rdf::Graph g = GenerateBsbm(cfg);
  std::string text = rdf::WriteNTriples(g);
  rdf::Graph reloaded;
  ASSERT_TRUE(rdf::ParseNTriples(text, &reloaded).ok());
  EXPECT_EQ(reloaded.size(), g.size());
  EXPECT_EQ(rdf::WriteNTriples(reloaded), text);
}

}  // namespace
}  // namespace rapida::workload
