#include "rdf/ntriples.h"

#include <gtest/gtest.h>

namespace rapida::rdf {
namespace {

TEST(NTriplesTest, ParseBasic) {
  Graph g;
  Status s = ParseNTriples(
      "<http://x/s> <http://x/p> <http://x/o> .\n"
      "<http://x/s> <http://x/q> \"hello\" .\n",
      &g);
  ASSERT_TRUE(s.ok()) << s;
  EXPECT_EQ(g.size(), 2u);
}

TEST(NTriplesTest, ParseTypedLiteralAndBlank) {
  Graph g;
  Status s = ParseNTriples(
      "_:b0 <http://x/p> \"5\"^^<http://www.w3.org/2001/XMLSchema#integer> .\n",
      &g);
  ASSERT_TRUE(s.ok()) << s;
  const Triple& t = g.triples()[0];
  EXPECT_TRUE(g.dict().Get(t.s).is_blank());
  EXPECT_EQ(g.dict().Get(t.o).datatype,
            "http://www.w3.org/2001/XMLSchema#integer");
}

TEST(NTriplesTest, CommentsAndBlankLines) {
  Graph g;
  Status s = ParseNTriples(
      "# a comment\n"
      "\n"
      "<s> <p> <o> .\n"
      "   # indented comment\n",
      &g);
  ASSERT_TRUE(s.ok()) << s;
  EXPECT_EQ(g.size(), 1u);
}

TEST(NTriplesTest, EscapesRoundTrip) {
  Graph g;
  g.AddLit("s", "p", "line1\nline2\t\"quoted\"");
  std::string text = WriteNTriples(g);
  Graph g2;
  ASSERT_TRUE(ParseNTriples(text, &g2).ok());
  ASSERT_EQ(g2.size(), 1u);
  EXPECT_EQ(g2.dict().Get(g2.triples()[0].o).text,
            "line1\nline2\t\"quoted\"");
}

TEST(NTriplesTest, RoundTripWholeGraph) {
  Graph g;
  g.AddIri("s1", "p", "o1");
  g.AddLit("s1", "q", "val");
  g.AddInt("s2", "r", 99);
  std::string text = WriteNTriples(g);
  Graph g2;
  ASSERT_TRUE(ParseNTriples(text, &g2).ok());
  EXPECT_EQ(WriteNTriples(g2), text);
}

TEST(NTriplesTest, ErrorsCarryLineNumbers) {
  Graph g;
  Status s = ParseNTriples("<s> <p> <o> .\n<s> <p> .\n", &g);
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.code(), Code::kParseError);
  EXPECT_NE(s.message().find("line 2"), std::string::npos) << s;
}

TEST(NTriplesTest, RejectsLiteralSubject) {
  Graph g;
  EXPECT_FALSE(ParseNTriples("\"lit\" <p> <o> .\n", &g).ok());
}

TEST(NTriplesTest, RejectsNonIriProperty) {
  Graph g;
  EXPECT_FALSE(ParseNTriples("<s> \"p\" <o> .\n", &g).ok());
  EXPECT_FALSE(ParseNTriples("<s> _:b <o> .\n", &g).ok());
}

TEST(NTriplesTest, RejectsMissingDot) {
  Graph g;
  EXPECT_FALSE(ParseNTriples("<s> <p> <o>\n", &g).ok());
}

TEST(NTriplesTest, LanguageTagKeptDistinct) {
  Graph g;
  ASSERT_TRUE(ParseNTriples("<s> <p> \"chat\"@en .\n<s> <p> \"chat\"@fr .\n",
                            &g)
                  .ok());
  EXPECT_EQ(g.size(), 2u);
  EXPECT_NE(g.triples()[0].o, g.triples()[1].o);
}

}  // namespace
}  // namespace rapida::rdf
