#include "analytics/binding.h"

#include <gtest/gtest.h>

#include "rdf/dictionary.h"

namespace rapida::analytics {
namespace {

class BindingTest : public ::testing::Test {
 protected:
  rdf::TermId T(const std::string& iri) { return dict_.InternIri(iri); }
  rdf::Dictionary dict_;
};

TEST_F(BindingTest, VarIndexAndAddRow) {
  BindingTable t({"a", "b"});
  EXPECT_EQ(t.VarIndex("a"), 0);
  EXPECT_EQ(t.VarIndex("b"), 1);
  EXPECT_EQ(t.VarIndex("c"), -1);
  t.AddRow({T("x"), T("y")});
  EXPECT_EQ(t.NumRows(), 1u);
  EXPECT_EQ(t.NumCols(), 2u);
}

TEST_F(BindingTest, JoinOnSharedVar) {
  BindingTable l({"a", "b"});
  l.AddRow({T("a1"), T("b1")});
  l.AddRow({T("a2"), T("b2")});
  BindingTable r({"b", "c"});
  r.AddRow({T("b1"), T("c1")});
  r.AddRow({T("b1"), T("c2")});
  r.AddRow({T("b3"), T("c3")});

  BindingTable j = l.Join(r);
  EXPECT_EQ(j.vars(), (std::vector<std::string>{"a", "b", "c"}));
  ASSERT_EQ(j.NumRows(), 2u);  // a1-b1-c1, a1-b1-c2
  for (const auto& row : j.rows()) {
    EXPECT_EQ(row[0], T("a1"));
    EXPECT_EQ(row[1], T("b1"));
  }
}

TEST_F(BindingTest, JoinWithNoSharedVarsIsCrossProduct) {
  BindingTable l({"a"});
  l.AddRow({T("a1")});
  l.AddRow({T("a2")});
  BindingTable r({"b"});
  r.AddRow({T("b1")});
  r.AddRow({T("b2")});
  r.AddRow({T("b3")});
  EXPECT_EQ(l.Join(r).NumRows(), 6u);
}

TEST_F(BindingTest, JoinOnMultipleSharedVars) {
  BindingTable l({"a", "b"});
  l.AddRow({T("a1"), T("b1")});
  l.AddRow({T("a1"), T("b2")});
  BindingTable r({"a", "b", "c"});
  r.AddRow({T("a1"), T("b1"), T("c1")});
  r.AddRow({T("a1"), T("b9"), T("c2")});
  BindingTable j = l.Join(r);
  ASSERT_EQ(j.NumRows(), 1u);
  EXPECT_EQ(j.rows()[0][2], T("c1"));
}

TEST_F(BindingTest, LeftJoinKeepsUnmatchedRows) {
  BindingTable l({"a"});
  l.AddRow({T("a1")});
  l.AddRow({T("a2")});
  BindingTable r({"a", "b"});
  r.AddRow({T("a1"), T("b1")});

  BindingTable j = l.LeftJoin(r);
  ASSERT_EQ(j.NumRows(), 2u);
  // a1 matched, a2 padded with unbound.
  bool saw_unbound = false;
  for (const auto& row : j.rows()) {
    if (row[0] == T("a2")) {
      EXPECT_EQ(row[1], rdf::kInvalidTermId);
      saw_unbound = true;
    }
  }
  EXPECT_TRUE(saw_unbound);
}

TEST_F(BindingTest, LeftJoinUnboundLeftCellIsCompatible) {
  BindingTable l({"a", "b"});
  l.AddRow({T("a1"), rdf::kInvalidTermId});
  BindingTable r({"b", "c"});
  r.AddRow({T("b1"), T("c1")});
  BindingTable j = l.LeftJoin(r);
  ASSERT_EQ(j.NumRows(), 1u);
  // The unbound b cell gets filled from the right side.
  EXPECT_EQ(j.rows()[0][1], T("b1"));
  EXPECT_EQ(j.rows()[0][2], T("c1"));
}

TEST_F(BindingTest, Project) {
  BindingTable t({"a", "b", "c"});
  t.AddRow({T("a1"), T("b1"), T("c1")});
  auto p = t.Project({"c", "a"});
  ASSERT_TRUE(p.ok());
  EXPECT_EQ(p->vars(), (std::vector<std::string>{"c", "a"}));
  EXPECT_EQ(p->rows()[0][0], T("c1"));
  EXPECT_EQ(p->rows()[0][1], T("a1"));
  EXPECT_FALSE(t.Project({"nope"}).ok());
}

TEST_F(BindingTest, Distinct) {
  BindingTable t({"a"});
  t.AddRow({T("x")});
  t.AddRow({T("x")});
  t.AddRow({T("y")});
  t.Distinct();
  EXPECT_EQ(t.NumRows(), 2u);
}

TEST_F(BindingTest, ToSortedStringsIsCanonical) {
  // Same logical rows added in different orders with different column
  // orders must produce identical normalized output.
  BindingTable t1({"a", "b"});
  t1.AddRow({T("x"), dict_.InternInt(5)});
  t1.AddRow({T("y"), dict_.InternInt(6)});

  BindingTable t2({"b", "a"});
  t2.AddRow({dict_.InternInt(6), T("y")});
  t2.AddRow({dict_.InternLiteral("5.0"), T("x")});  // same number, diff form

  EXPECT_EQ(t1.ToSortedStrings(dict_), t2.ToSortedStrings(dict_));
}

TEST_F(BindingTest, ToStringTruncates) {
  BindingTable t({"a"});
  for (int i = 0; i < 30; ++i) t.AddRow({T("v" + std::to_string(i))});
  std::string s = t.ToString(dict_, 5);
  EXPECT_NE(s.find("30 rows total"), std::string::npos);
}

}  // namespace
}  // namespace rapida::analytics
