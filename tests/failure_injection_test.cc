// Failure-injection coverage: capacity exhaustion mid-workflow, corrupted
// DFS records, unsatisfiable constants, and query shapes outside the
// engine subset. Engines must fail with the right Status (never crash) and
// leave the DFS clean.
#include <gtest/gtest.h>

#include "analytics/analytical_query.h"
#include "engines/engines.h"
#include "sparql/parser.h"
#include "workload/bsbm.h"
#include "workload/catalog.h"

namespace rapida::engine {
namespace {

std::unique_ptr<analytics::AnalyticalQuery> MustAnalyze(
    const std::string& text) {
  auto parsed = sparql::ParseQuery(text);
  EXPECT_TRUE(parsed.ok()) << parsed.status();
  auto query = analytics::AnalyzeQuery(**parsed);
  EXPECT_TRUE(query.ok()) << query.status();
  return std::make_unique<analytics::AnalyticalQuery>(std::move(*query));
}

TEST(FailureInjectionTest, CapacityExhaustionFailsCleanlyOnEveryEngine) {
  workload::BsbmConfig cfg;
  cfg.num_products = 400;
  auto cq = workload::FindQuery("MG3");
  auto query = MustAnalyze((*cq)->sparql);

  for (const auto& eng : MakeAllEngines()) {
    Dataset dataset(workload::GenerateBsbm(cfg));
    mr::Cluster cluster(mr::ClusterConfig{}, &dataset.dfs());
    // Load the base layouts first, then squeeze the capacity so the
    // engine's own intermediates blow the limit.
    ASSERT_TRUE(dataset.EnsureVpTables().ok());
    ASSERT_TRUE(dataset.EnsureTripleGroups().ok());
    uint64_t base = dataset.dfs().TotalStoredBytes();
    dataset.dfs().SetCapacityLimit(base + 2048);

    ExecStats stats;
    auto result = eng->Execute(*query, &dataset, &cluster, &stats);
    ASSERT_FALSE(result.ok()) << eng->name();
    EXPECT_EQ(result.status().code(), Code::kResourceExhausted)
        << eng->name() << ": " << result.status();

    // Cleanup must have removed the temp files (the failed write itself
    // never landed), so only base layouts remain.
    for (const std::string& f : dataset.dfs().ListFiles()) {
      EXPECT_TRUE(f.rfind("vp:", 0) == 0 || f.rfind("tg:", 0) == 0)
          << eng->name() << " leaked " << f;
    }
  }
}

TEST(FailureInjectionTest, CorruptTriplegroupRecordsAreSkipped) {
  workload::BsbmConfig cfg;
  cfg.num_products = 100;
  Dataset dataset(workload::GenerateBsbm(cfg));
  mr::Cluster cluster(mr::ClusterConfig{}, &dataset.dfs());
  ASSERT_TRUE(dataset.EnsureTripleGroups().ok());

  // Baseline run.
  auto cq = workload::FindQuery("MG1");
  auto query = MustAnalyze((*cq)->sparql);
  RapidAnalyticsEngine engine;
  ExecStats stats;
  auto baseline = engine.Execute(*query, &dataset, &cluster, &stats);
  ASSERT_TRUE(baseline.ok());

  // Inject garbage records into every triplegroup file: the NTGA map
  // functions must skip them without crashing or changing valid rows.
  for (const std::string& f : dataset.dfs().ListFiles()) {
    if (f.rfind("tg:", 0) != 0) continue;
    auto file = dataset.dfs().Open(f);
    ASSERT_TRUE(file.ok());
    // Copy the bytes out via the batch before Write replaces the file (and
    // drops the arenas the old views point into).
    mr::RecordBatch batch;
    for (const mr::Record& r : (*file)->records) batch.Add(r.key, r.value);
    batch.Add("junk", "not-a-triplegroup");
    batch.Add("", "");
    ASSERT_TRUE(dataset.dfs().Write(f, std::move(batch)).ok());
  }
  auto corrupted = engine.Execute(*query, &dataset, &cluster, &stats);
  ASSERT_TRUE(corrupted.ok()) << corrupted.status();
  EXPECT_EQ(corrupted->ToSortedStrings(dataset.dict()),
            baseline->ToSortedStrings(dataset.dict()));
}

TEST(FailureInjectionTest, UnknownConstantsYieldEmptyNotError) {
  workload::BsbmConfig cfg;
  cfg.num_products = 50;
  Dataset dataset(workload::GenerateBsbm(cfg));
  mr::Cluster cluster(mr::ClusterConfig{}, &dataset.dfs());
  auto query = MustAnalyze(
      "PREFIX : <http://bsbm.example/> "
      "SELECT ?f (COUNT(?pr) AS ?n) { "
      "?p a :NoSuchTypeAnywhere . ?p :productFeature ?f . "
      "?o :product ?p . ?o :price ?pr . } GROUP BY ?f");
  for (const auto& eng : MakeAllEngines()) {
    ExecStats stats;
    auto result = eng->Execute(*query, &dataset, &cluster, &stats);
    ASSERT_TRUE(result.ok()) << eng->name() << ": " << result.status();
    EXPECT_EQ(result->NumRows(), 0u) << eng->name();
  }
}

TEST(FailureInjectionTest, DisconnectedPatternRejected) {
  // Two stars with no shared variable: not an analytical-subset shape the
  // engines can join (would need a cross product). The analyzer rejects it
  // up front so no engine can diverge on it at runtime (differential
  // fuzzing found Hive shortcutting to empty results on empty scans while
  // the NTGA engines errored).
  auto parsed = sparql::ParseQuery(
      "PREFIX : <http://bsbm.example/> "
      "SELECT (COUNT(?pr) AS ?n) { "
      "?p a :ProductType1 . ?p :label ?l . "
      "?o :price ?pr . ?o :vendor ?v . }");
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  auto query = analytics::AnalyzeQuery(**parsed);
  ASSERT_FALSE(query.ok());
  EXPECT_EQ(query.status().code(), Code::kInvalidArgument);
}

TEST(FailureInjectionTest, AnalyzerRejectsOutOfScopeShapes) {
  auto reject = [](const char* text, Code code) {
    auto parsed = sparql::ParseQuery(text);
    ASSERT_TRUE(parsed.ok()) << parsed.status();
    auto query = analytics::AnalyzeQuery(**parsed);
    ASSERT_FALSE(query.ok()) << text;
    EXPECT_EQ(query.status().code(), code) << query.status();
  };
  // DISTINCT aggregates are non-algebraic.
  reject("SELECT (COUNT(DISTINCT ?x) AS ?n) { ?s <p> ?x . }",
         Code::kUnimplemented);
  // Single-star OPTIONAL is in scope now, but nesting is not.
  reject("SELECT (COUNT(?x) AS ?n) { ?s <p> ?x . "
         "OPTIONAL { ?s <q> ?y . OPTIONAL { ?y <r> ?z . } } }",
         Code::kInvalidArgument);
  // Unbound property.
  reject("SELECT (COUNT(?o) AS ?n) { ?s ?p ?o . }", Code::kInvalidArgument);
  // Aggregate over an expression.
  reject("SELECT (SUM(?x + 1) AS ?n) { ?s <p> ?x . }",
         Code::kInvalidArgument);
  // Projected variable not grouped.
  reject("SELECT ?s (COUNT(?x) AS ?n) { ?s <p> ?x . }",
         Code::kInvalidArgument);
  // Top-level aggregate over subqueries.
  reject("SELECT (SUM(?n) AS ?total) { "
         "{ SELECT ?s (COUNT(?x) AS ?n) { ?s <p> ?x . } GROUP BY ?s } }",
         Code::kInvalidArgument);
  // Mixed triples and subqueries at the top level.
  reject("SELECT ?n { ?a <q> ?b . "
         "{ SELECT (COUNT(?x) AS ?n) { ?s <p> ?x . } } }",
         Code::kInvalidArgument);
}

TEST(FailureInjectionTest, CapacityFailureDuringPreprocessing) {
  workload::BsbmConfig cfg;
  cfg.num_products = 200;
  Dataset::Options opts;
  opts.dfs_capacity = 1024;  // not even the VP tables fit
  Dataset dataset(workload::GenerateBsbm(cfg), opts);
  Status s = dataset.EnsureVpTables();
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.code(), Code::kResourceExhausted);
}

}  // namespace
}  // namespace rapida::engine
