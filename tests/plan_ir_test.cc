// The physical-plan IR: node/DAG mechanics, EXPLAIN determinism, the
// optimizer pass toggles, canonical fingerprints under variable renaming,
// and the service PlanCache's structural (level-2) hits.
#include "plan/plan.h"

#include <gtest/gtest.h>

#include "analytics/analytical_query.h"
#include "plan/passes.h"
#include "plan/planner.h"
#include "service/cache.h"
#include "sparql/parser.h"
#include "workload/catalog.h"

namespace rapida::plan {
namespace {

/// MG1 with every variable (pattern vars and aggregate aliases) renamed:
/// structurally identical, different surface text.
constexpr char kRenamedMg1[] = R"(PREFIX : <http://bsbm.example/>
SELECT ?feat ?a ?b ?c ?d {
  { SELECT ?feat (COUNT(?price) AS ?a) (SUM(?price) AS ?b) {
      ?prod a :ProductType1 . ?prod :label ?lbl .
      ?prod :productFeature ?feat .
      ?o :product ?prod . ?o :price ?price .
    } GROUP BY ?feat }
  { SELECT (COUNT(?w) AS ?c) (SUM(?w) AS ?d) {
      ?q1 a :ProductType1 . ?q1 :label ?q2 .
      ?q3 :product ?q1 . ?q3 :price ?w .
    } }
})";

analytics::AnalyticalQuery Analyze(const std::string& text) {
  auto parsed = sparql::ParseQuery(text);
  EXPECT_TRUE(parsed.ok()) << parsed.status();
  auto query = analytics::AnalyzeQuery(**parsed);
  EXPECT_TRUE(query.ok()) << query.status();
  return std::move(*query);
}

std::string CatalogText(const std::string& id) {
  auto cq = workload::FindQuery(id);
  EXPECT_TRUE(cq.ok());
  return (*cq)->sparql;
}

TEST(PlanIrTest, NodeAndDagBasics) {
  PhysicalPlan plan;
  plan.engine = "RAPIDAnalytics";
  PlanNode& scan = plan.AddNode(OpKind::kVpScan, "g0", "g0: VP scan", 0);
  scan.Attr("prop", "p");
  const int scan_id = scan.id;
  PlanNode& join = plan.AddNode(OpKind::kStarJoin, "g0", "g0: star-join", 1);
  join.inputs = {scan_id};
  join.bind_tag = "g0";

  EXPECT_EQ(plan.EstimatedCycles(), 1);
  EXPECT_EQ(plan.FindByTag("g0")->kind, OpKind::kStarJoin);
  EXPECT_EQ(plan.FindById(scan_id)->attrs[0].second, "p");

  std::string text = plan.ExplainText();
  EXPECT_NE(text.find("RAPIDAnalytics: 1 MR cycles (estimated)"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("#0 VpScan"), std::string::npos) << text;
  EXPECT_NE(text.find("inputs: #0"), std::string::npos) << text;
}

TEST(PlanIrTest, ExplainIsDeterministic) {
  analytics::AnalyticalQuery query = Analyze(CatalogText("MG3"));
  for (const char* engine : {"Hive (Naive)", "Hive (MQO)", "RAPID+ (Naive)",
                             "RAPIDAnalytics"}) {
    auto a = PlanForEngine(engine, query, nullptr, engine::EngineOptions());
    auto b = PlanForEngine(engine, query, nullptr, engine::EngineOptions());
    ASSERT_TRUE(a.ok() && b.ok()) << engine;
    EXPECT_EQ(a->ExplainText(), b->ExplainText()) << engine;
    EXPECT_EQ(a->ExplainJson(), b->ExplainJson()) << engine;
    EXPECT_EQ(a->FingerprintHash(), b->FingerprintHash()) << engine;
  }
}

TEST(PlanIrTest, UnknownEngineIsRejected) {
  analytics::AnalyticalQuery query = Analyze(CatalogText("G1"));
  auto plan = PlanForEngine("Spark", query, nullptr, engine::EngineOptions());
  EXPECT_FALSE(plan.ok());
}

TEST(PlanIrTest, PassTogglesAreRecordedAndChangeThePlan) {
  analytics::AnalyticalQuery query = Analyze(CatalogText("MG1"));

  engine::EngineOptions on;
  auto parallel = PlanRapidAnalytics(query, nullptr, on);
  ASSERT_TRUE(parallel.ok());
  engine::EngineOptions off = on;
  off.parallel_agg_join = false;
  auto sequential = PlanRapidAnalytics(query, nullptr, off);
  ASSERT_TRUE(sequential.ok());

  // The parallel-agg-join pass folds both Agg-Joins into one cycle.
  EXPECT_EQ(parallel->EstimatedCycles(), sequential->EstimatedCycles() - 1);
  bool parallel_logged = false, off_logged = false;
  for (const std::string& p : parallel->passes) {
    if (p == "parallel-agg-join") parallel_logged = true;
  }
  for (const std::string& p : sequential->passes) {
    if (p == "parallel-agg-join (off)") off_logged = true;
  }
  EXPECT_TRUE(parallel_logged);
  EXPECT_TRUE(off_logged);

  // Greedy join ordering: cycle-neutral, but recorded on the join nodes.
  engine::EngineOptions greedy = on;
  greedy.greedy_join_order = true;
  auto ordered = PlanHiveNaive(query, nullptr, greedy);
  ASSERT_TRUE(ordered.ok());
  EXPECT_EQ(ordered->EstimatedCycles(),
            PlanHiveNaive(query, nullptr, on)->EstimatedCycles());
}

TEST(PlanIrTest, FingerprintInvariantUnderVariableRenaming) {
  analytics::AnalyticalQuery original = Analyze(CatalogText("MG1"));
  analytics::AnalyticalQuery renamed = Analyze(kRenamedMg1);
  analytics::AnalyticalQuery different = Analyze(CatalogText("MG2"));

  EXPECT_EQ(CanonicalPlanFingerprint(original),
            CanonicalPlanFingerprint(renamed));
  // MG2 differs only in a constant (ProductType10) — constants are part
  // of the structure, so the fingerprints must differ.
  EXPECT_NE(CanonicalPlanFingerprint(original),
            CanonicalPlanFingerprint(different));
}

TEST(PlanIrTest, PlanCacheHitsOnStructurallyEqualQueries) {
  service::PlanCache cache;
  auto a = cache.GetOrAnalyze(CatalogText("MG1"));
  ASSERT_TRUE(a.ok());
  auto b = cache.GetOrAnalyze(kRenamedMg1);
  ASSERT_TRUE(b.ok());

  // Different surface text: a level-1 (text) miss...
  EXPECT_NE(a->fingerprint, b->fingerprint);
  EXPECT_EQ(cache.hits(), 0u);
  EXPECT_EQ(cache.misses(), 2u);
  // ...but the same optimized plan: a level-2 (structural) hit sharing
  // one cached plan object.
  EXPECT_EQ(a->plan_fingerprint, b->plan_fingerprint);
  EXPECT_EQ(cache.plan_hits(), 1u);
  EXPECT_EQ(cache.distinct_plans(), 1u);
  ASSERT_NE(a->optimized, nullptr);
  EXPECT_EQ(a->optimized.get(), b->optimized.get());

  // Resubmitting either text is a plain level-1 hit.
  auto again = cache.GetOrAnalyze(kRenamedMg1);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(cache.hits(), 1u);

  // A structurally different query gets its own plan.
  auto other = cache.GetOrAnalyze(CatalogText("MG2"));
  ASSERT_TRUE(other.ok());
  EXPECT_EQ(cache.distinct_plans(), 2u);
  EXPECT_NE(other->plan_fingerprint, a->plan_fingerprint);
}

TEST(PlanIrTest, FallbackPlansCarryTheReason) {
  // R1/R2 are single-grouping; the MQO baseline only rewrites exactly two
  // grouping patterns, so its plan is the naive shape with a reason.
  analytics::AnalyticalQuery query = Analyze(CatalogText("G1"));
  auto plan = PlanHiveMqo(query, nullptr, engine::EngineOptions());
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(plan->engine, "Hive (MQO)");
  EXPECT_FALSE(plan->fallback_reason.empty());
  EXPECT_NE(plan->ExplainText().find("fallback:"), std::string::npos);
}

}  // namespace
}  // namespace rapida::plan
