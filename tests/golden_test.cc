// Golden-result regression fixtures: the normalized reference-evaluator
// output of every catalog query over the fixed small datasets is pinned
// in tests/golden/*.golden, and every engine is diffed against the same
// fixture. Unlike catalog_test (engines vs the *current* reference), a
// change in a generator, the parser, the reference evaluator, or an
// engine that silently alters results shows up here as a readable diff
// against results reviewed at fixture-generation time.
//
// To regenerate after an intentional change:
//   RAPIDA_UPDATE_GOLDEN=1 ./build/tests/golden_test
#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>

#include "analytics/reference_evaluator.h"
#include "engines/engines.h"
#include "sparql/parser.h"
#include "testing/normalize.h"
#include "workload/bsbm.h"
#include "workload/catalog.h"
#include "workload/chem2bio.h"
#include "workload/pubmed.h"

#ifndef RAPIDA_GOLDEN_DIR
#error "RAPIDA_GOLDEN_DIR must be defined by the build"
#endif

namespace rapida::workload {
namespace {

/// Same fixed configs as catalog_test.cc, so the fixtures describe the
/// datasets every engine is validated on.
rdf::Graph SmallGraphFor(const std::string& dataset) {
  if (dataset == "bsbm") {
    BsbmConfig cfg;
    cfg.num_products = 300;
    cfg.offers_per_product = 2.5;
    return GenerateBsbm(cfg);
  }
  if (dataset == "chem") {
    ChemConfig cfg;
    cfg.num_assays = 500;
    cfg.num_publications = 1200;
    return GenerateChem2Bio(cfg);
  }
  PubmedConfig cfg;
  cfg.num_publications = 500;
  cfg.mesh_per_publication = 3.0;
  cfg.chemicals_per_publication = 2.0;
  return GeneratePubmed(cfg);
}

engine::Dataset* DatasetFor(const std::string& name) {
  static auto* cache =
      new std::map<std::string, std::unique_ptr<engine::Dataset>>();
  auto it = cache->find(name);
  if (it == cache->end()) {
    it = cache->emplace(name, std::make_unique<engine::Dataset>(
                                  SmallGraphFor(name)))
             .first;
  }
  return it->second.get();
}

std::string GoldenPath(const std::string& id) {
  return std::string(RAPIDA_GOLDEN_DIR) + "/" + id + ".golden";
}

bool UpdateMode() {
  const char* v = std::getenv("RAPIDA_UPDATE_GOLDEN");
  return v != nullptr && *v != '\0' && std::string(v) != "0";
}

class GoldenQueryTest : public ::testing::TestWithParam<std::string> {};

TEST_P(GoldenQueryTest, ReferenceAndEveryEngineMatchFixture) {
  auto cq = FindQuery(GetParam());
  ASSERT_TRUE(cq.ok()) << cq.status();
  engine::Dataset* dataset = DatasetFor((*cq)->dataset);

  auto parsed = sparql::ParseQuery((*cq)->sparql);
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  analytics::ReferenceEvaluator ref(&dataset->graph());
  auto result = ref.Evaluate(**parsed);
  ASSERT_TRUE(result.ok()) << result.status();
  difftest::NormalizedTable actual =
      difftest::Normalize(*result, dataset->dict());

  const std::string path = GoldenPath((*cq)->id);
  if (UpdateMode()) {
    std::ofstream out(path);
    ASSERT_TRUE(out.good()) << "cannot write " << path;
    out << difftest::SerializeNormalized(actual);
    return;
  }

  std::ifstream in(path);
  ASSERT_TRUE(in.good())
      << "missing fixture " << path
      << " — run RAPIDA_UPDATE_GOLDEN=1 ./build/tests/golden_test";
  std::stringstream buf;
  buf << in.rdbuf();
  difftest::NormalizedTable expected;
  ASSERT_TRUE(difftest::ParseNormalized(buf.str(), &expected))
      << "corrupt fixture " << path;
  EXPECT_EQ(difftest::CompareNormalized(expected, actual), "")
      << (*cq)->id << " reference drifted from " << path
      << " — if intentional, regenerate with RAPIDA_UPDATE_GOLDEN=1";

  auto query = analytics::AnalyzeQuery(**parsed);
  ASSERT_TRUE(query.ok()) << query.status();
  mr::Cluster cluster(mr::ClusterConfig{}, &dataset->dfs());
  for (const auto& eng : engine::MakeAllEngines()) {
    engine::ExecStats stats;
    auto run = eng->Execute(*query, dataset, &cluster, &stats);
    ASSERT_TRUE(run.ok()) << eng->name() << ": " << run.status();
    EXPECT_EQ(difftest::CompareNormalized(
                  expected, difftest::Normalize(*run, dataset->dict())),
              "")
        << (*cq)->id << " on " << eng->name() << " drifted from " << path;
  }
}

std::vector<std::string> AllQueryIds() {
  std::vector<std::string> ids;
  for (const CatalogQuery& q : Catalog()) ids.push_back(q.id);
  return ids;
}

INSTANTIATE_TEST_SUITE_P(AllQueries, GoldenQueryTest,
                         ::testing::ValuesIn(AllQueryIds()),
                         [](const ::testing::TestParamInfo<std::string>& i) {
                           // Test names must be identifiers: MG-OPT -> MG_OPT
                           // (fixture files keep the hyphenated id).
                           std::string name = i.param;
                           for (char& c : name) {
                             if (c == '-') c = '_';
                           }
                           return name;
                         });

}  // namespace
}  // namespace rapida::workload
