#include "sparql/lexer.h"

#include <gtest/gtest.h>

namespace rapida::sparql {
namespace {

std::vector<Token> MustTokenize(std::string_view text) {
  auto result = Tokenize(text);
  EXPECT_TRUE(result.ok()) << result.status();
  return result.ok() ? *result : std::vector<Token>{};
}

TEST(LexerTest, KeywordsCaseInsensitive) {
  auto toks = MustTokenize("select Where FILTER gRoUp by");
  ASSERT_EQ(toks.size(), 6u);  // 5 + EOF
  EXPECT_EQ(toks[0].type, TokenType::kKeyword);
  EXPECT_EQ(toks[0].text, "SELECT");
  EXPECT_EQ(toks[1].text, "WHERE");
  EXPECT_EQ(toks[2].text, "FILTER");
  EXPECT_EQ(toks[3].text, "GROUP");
  EXPECT_EQ(toks[4].text, "BY");
}

TEST(LexerTest, Variables) {
  auto toks = MustTokenize("?x ?long_name $y");
  EXPECT_EQ(toks[0].type, TokenType::kVar);
  EXPECT_EQ(toks[0].text, "x");
  EXPECT_EQ(toks[1].text, "long_name");
  EXPECT_EQ(toks[2].text, "y");
}

TEST(LexerTest, IriVsLessThan) {
  auto toks = MustTokenize("<http://x/p> ?a < ?b ?c <= 5");
  EXPECT_EQ(toks[0].type, TokenType::kIriRef);
  EXPECT_EQ(toks[0].text, "http://x/p");
  EXPECT_EQ(toks[2].type, TokenType::kLt);
  EXPECT_EQ(toks[5].type, TokenType::kLe);
}

TEST(LexerTest, PrefixedAndBareNames) {
  auto toks = MustTokenize("bsbm:Product type :Local");
  EXPECT_EQ(toks[0].type, TokenType::kPName);
  EXPECT_EQ(toks[0].text, "bsbm:Product");
  EXPECT_EQ(toks[1].type, TokenType::kPName);
  EXPECT_EQ(toks[1].text, "type");
  EXPECT_EQ(toks[2].type, TokenType::kPName);
  EXPECT_EQ(toks[2].text, ":Local");
}

TEST(LexerTest, TrailingDotSeparatedFromName) {
  auto toks = MustTokenize("?s ex:price ?o .");
  ASSERT_EQ(toks.size(), 5u);
  EXPECT_EQ(toks[1].type, TokenType::kPName);
  EXPECT_EQ(toks[1].text, "ex:price");
  EXPECT_EQ(toks[3].type, TokenType::kDot);
}

TEST(LexerTest, NumbersIncludingDecimalAndExponent) {
  auto toks = MustTokenize("5 3.14 2e3 10.");
  EXPECT_EQ(toks[0].type, TokenType::kInteger);
  EXPECT_EQ(toks[1].type, TokenType::kDecimal);
  EXPECT_EQ(toks[1].text, "3.14");
  EXPECT_EQ(toks[2].type, TokenType::kDecimal);
  // "10." is an integer followed by a dot terminator.
  EXPECT_EQ(toks[3].type, TokenType::kInteger);
  EXPECT_EQ(toks[3].text, "10");
  EXPECT_EQ(toks[4].type, TokenType::kDot);
}

TEST(LexerTest, StringsWithEscapes) {
  auto toks = MustTokenize(R"("hello \"world\"" "tab\t")");
  EXPECT_EQ(toks[0].type, TokenType::kString);
  EXPECT_EQ(toks[0].text, "hello \"world\"");
  EXPECT_EQ(toks[1].text, "tab\t");
}

TEST(LexerTest, OperatorsAndPunctuation) {
  auto toks = MustTokenize("{ } ( ) . ; , * != = > >= && || ! + - /");
  std::vector<TokenType> expected = {
      TokenType::kLBrace, TokenType::kRBrace, TokenType::kLParen,
      TokenType::kRParen, TokenType::kDot,    TokenType::kSemicolon,
      TokenType::kComma,  TokenType::kStar,   TokenType::kNeq,
      TokenType::kEq,     TokenType::kGt,     TokenType::kGe,
      TokenType::kAnd,    TokenType::kOr,     TokenType::kBang,
      TokenType::kPlus,   TokenType::kMinus,  TokenType::kSlash,
      TokenType::kEof};
  ASSERT_EQ(toks.size(), expected.size());
  for (size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(toks[i].type, expected[i]) << "token " << i;
  }
}

TEST(LexerTest, AKeyword) {
  auto toks = MustTokenize("?s a bsbm:Product");
  EXPECT_EQ(toks[1].type, TokenType::kA);
}

TEST(LexerTest, CommentsSkipped) {
  auto toks = MustTokenize("?x # comment ?y\n?z");
  ASSERT_EQ(toks.size(), 3u);
  EXPECT_EQ(toks[0].text, "x");
  EXPECT_EQ(toks[1].text, "z");
}

TEST(LexerTest, LineNumbersTracked) {
  auto toks = MustTokenize("?a\n?b\n\n?c");
  EXPECT_EQ(toks[0].line, 1);
  EXPECT_EQ(toks[1].line, 2);
  EXPECT_EQ(toks[2].line, 4);
}

TEST(LexerTest, Errors) {
  EXPECT_FALSE(Tokenize("\"unterminated").ok());
  EXPECT_FALSE(Tokenize("a & b").ok());
  EXPECT_FALSE(Tokenize("a | b").ok());
  EXPECT_FALSE(Tokenize("@@").ok());
}

}  // namespace
}  // namespace rapida::sparql
