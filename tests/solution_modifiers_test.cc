// HAVING / ORDER BY / LIMIT / OFFSET coverage: parser shapes, reference
// semantics, and engine agreement (every engine must honor the grouping
// HAVING and the top-level modifiers).
#include <gtest/gtest.h>

#include "analytics/analytical_query.h"
#include "analytics/reference_evaluator.h"
#include "engines/engines.h"
#include "sparql/parser.h"

namespace rapida {
namespace {

// --- parser ---

TEST(ModifierParsingTest, HavingOrderLimitOffset) {
  auto q = sparql::ParseQuery(
      "SELECT ?f (COUNT(?x) AS ?n) { ?s <f> ?f ; <x> ?x . } "
      "GROUP BY ?f HAVING(?n > 2) ORDER BY DESC(?n) ?f LIMIT 10 OFFSET 5");
  ASSERT_TRUE(q.ok()) << q.status();
  ASSERT_NE((*q)->having, nullptr);
  ASSERT_EQ((*q)->order_by.size(), 2u);
  EXPECT_TRUE((*q)->order_by[0].descending);
  EXPECT_EQ((*q)->order_by[0].var, "n");
  EXPECT_FALSE((*q)->order_by[1].descending);
  EXPECT_EQ((*q)->limit, 10);
  EXPECT_EQ((*q)->offset, 5);
}

TEST(ModifierParsingTest, AscAndOffsetBeforeLimit) {
  auto q = sparql::ParseQuery(
      "SELECT ?s { ?s <p> ?x . } ORDER BY ASC(?s) OFFSET 2 LIMIT 3");
  ASSERT_TRUE(q.ok()) << q.status();
  EXPECT_FALSE((*q)->order_by[0].descending);
  EXPECT_EQ((*q)->limit, 3);
  EXPECT_EQ((*q)->offset, 2);
}

TEST(ModifierParsingTest, Errors) {
  EXPECT_FALSE(sparql::ParseQuery(
                   "SELECT ?s { ?s <p> ?x . } ORDER BY").ok());
  EXPECT_FALSE(sparql::ParseQuery(
                   "SELECT ?s { ?s <p> ?x . } LIMIT ?x").ok());
  EXPECT_FALSE(sparql::ParseQuery(
                   "SELECT ?s { ?s <p> ?x . } ORDER BY DESC ?x").ok());
}

// --- reference semantics ---

class ModifierSemanticsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // Counts: a=3, b=2, c=1.
    g_.AddIri("s1", "f", "a");
    g_.AddIri("s2", "f", "a");
    g_.AddIri("s3", "f", "a");
    g_.AddIri("s4", "f", "b");
    g_.AddIri("s5", "f", "b");
    g_.AddIri("s6", "f", "c");
  }
  analytics::BindingTable Run(const std::string& text) {
    auto q = sparql::ParseQuery(text);
    EXPECT_TRUE(q.ok()) << q.status();
    analytics::ReferenceEvaluator ref(&g_);
    auto r = ref.Evaluate(**q);
    EXPECT_TRUE(r.ok()) << r.status();
    return r.ok() ? *r : analytics::BindingTable{};
  }
  rdf::Graph g_;
};

TEST_F(ModifierSemanticsTest, HavingFiltersGroups) {
  auto t = Run(
      "SELECT ?f (COUNT(?s) AS ?n) { ?s <f> ?f . } GROUP BY ?f "
      "HAVING(?n >= 2)");
  EXPECT_EQ(t.NumRows(), 2u);  // a and b
}

TEST_F(ModifierSemanticsTest, OrderByDescendingCount) {
  auto t = Run(
      "SELECT ?f (COUNT(?s) AS ?n) { ?s <f> ?f . } GROUP BY ?f "
      "ORDER BY DESC(?n)");
  ASSERT_EQ(t.NumRows(), 3u);
  EXPECT_EQ(g_.dict().Get(t.rows()[0][0]).text, "a");
  EXPECT_EQ(g_.dict().Get(t.rows()[2][0]).text, "c");
}

TEST_F(ModifierSemanticsTest, LimitOffsetWindow) {
  auto t = Run(
      "SELECT ?f (COUNT(?s) AS ?n) { ?s <f> ?f . } GROUP BY ?f "
      "ORDER BY DESC(?n) OFFSET 1 LIMIT 1");
  ASSERT_EQ(t.NumRows(), 1u);
  EXPECT_EQ(g_.dict().Get(t.rows()[0][0]).text, "b");
}

TEST_F(ModifierSemanticsTest, OffsetBeyondEndEmpty) {
  auto t = Run("SELECT ?f (COUNT(?s) AS ?n) { ?s <f> ?f . } GROUP BY ?f "
               "OFFSET 99");
  EXPECT_EQ(t.NumRows(), 0u);
}

TEST_F(ModifierSemanticsTest, HavingOnGroupByAllTrueAndFalse) {
  EXPECT_EQ(Run("SELECT (COUNT(?s) AS ?n) { ?s <f> ?x . } HAVING(?n > 3)")
                .NumRows(),
            1u);
  EXPECT_EQ(Run("SELECT (COUNT(?s) AS ?n) { ?s <f> ?x . } HAVING(?n > 30)")
                .NumRows(),
            0u);
}

// --- engines agree with the reference ---

class ModifierEngineTest : public ::testing::Test {
 protected:
  ModifierEngineTest() {
    rdf::Graph g;
    for (int p = 0; p < 30; ++p) {
      std::string prod = "p" + std::to_string(p);
      g.AddIri(prod, rdf::kRdfType, "T1");
      g.AddIri(prod, "feature", "f" + std::to_string(p % 4));
    }
    for (int o = 0; o < 90; ++o) {
      std::string off = "o" + std::to_string(o);
      g.AddIri(off, "product", "p" + std::to_string(o % 30));
      g.AddInt(off, "price", 10 * (o % 13 + 1));
    }
    dataset_ = std::make_unique<engine::Dataset>(std::move(g));
  }

  void CompareAll(const std::string& text) {
    auto parsed = sparql::ParseQuery(text);
    ASSERT_TRUE(parsed.ok()) << parsed.status();
    auto query = analytics::AnalyzeQuery(**parsed);
    ASSERT_TRUE(query.ok()) << query.status();
    analytics::ReferenceEvaluator ref(&dataset_->graph());
    auto expected = ref.Evaluate(**parsed);
    ASSERT_TRUE(expected.ok()) << expected.status();
    auto expected_rows = expected->ToSortedStrings(dataset_->dict());

    mr::Cluster cluster(mr::ClusterConfig{}, &dataset_->dfs());
    for (const auto& eng : engine::MakeAllEngines()) {
      engine::ExecStats stats;
      auto result = eng->Execute(*query, dataset_.get(), &cluster, &stats);
      ASSERT_TRUE(result.ok()) << eng->name() << ": " << result.status();
      EXPECT_EQ(result->ToSortedStrings(dataset_->dict()), expected_rows)
          << eng->name() << " on:\n" << text;
    }
  }

  std::unique_ptr<engine::Dataset> dataset_;
};

TEST_F(ModifierEngineTest, HavingOnSingleGrouping) {
  CompareAll(
      "SELECT ?f (COUNT(?pr) AS ?n) (SUM(?pr) AS ?sum) { "
      "?p a <T1> ; <feature> ?f . ?o <product> ?p ; <price> ?pr . } "
      "GROUP BY ?f HAVING(?n > 20)");
}

TEST_F(ModifierEngineTest, HavingInsideMultiGroupingSubqueries) {
  CompareAll(
      "SELECT ?f ?nF ?nT { "
      "{ SELECT ?f (COUNT(?pr2) AS ?nF) { "
      "    ?p2 a <T1> ; <feature> ?f . ?o2 <product> ?p2 ; <price> ?pr2 . "
      "  } GROUP BY ?f HAVING(?nF >= 20) } "
      "{ SELECT (COUNT(?pr) AS ?nT) { "
      "    ?p1 a <T1> . ?o1 <product> ?p1 ; <price> ?pr . } } }");
}

TEST_F(ModifierEngineTest, TopLevelOrderLimit) {
  CompareAll(
      "SELECT ?f (SUM(?pr) AS ?sum) { "
      "?p a <T1> ; <feature> ?f . ?o <product> ?p ; <price> ?pr . } "
      "GROUP BY ?f ORDER BY DESC(?sum) LIMIT 2");
}

TEST_F(ModifierEngineTest, HavingThatEliminatesAllGroups) {
  CompareAll(
      "SELECT ?f (COUNT(?pr) AS ?n) { "
      "?p a <T1> ; <feature> ?f . ?o <product> ?p ; <price> ?pr . } "
      "GROUP BY ?f HAVING(?n > 100000)");
}

TEST(ModifierScopeTest, SubqueryLimitRejected) {
  auto parsed = sparql::ParseQuery(
      "SELECT ?f ?n { { SELECT ?f (COUNT(?x) AS ?n) { ?s <f> ?f ; <x> ?x . }"
      " GROUP BY ?f LIMIT 5 } }");
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  auto q = analytics::AnalyzeQuery(**parsed);
  ASSERT_FALSE(q.ok());
  EXPECT_EQ(q.status().code(), Code::kUnimplemented);
}


TEST_F(ModifierEngineTest, SampleAggregate) {
  CompareAll(
      "SELECT ?f (SAMPLE(?p) AS ?witness) (COUNT(?p) AS ?n) { "
      "?p a <T1> ; <feature> ?f . } GROUP BY ?f");
}

TEST_F(ModifierEngineTest, GroupConcatAggregate) {
  CompareAll(
      "SELECT ?f (GROUP_CONCAT(?pr ; SEPARATOR=\"|\") AS ?prices) { "
      "?p a <T1> ; <feature> ?f . ?o <product> ?p ; <price> ?pr . } "
      "GROUP BY ?f");
}

TEST_F(ModifierEngineTest, GroupConcatDefaultSeparator) {
  CompareAll(
      "SELECT (GROUP_CONCAT(?f) AS ?all) { ?p a <T1> ; <feature> ?f . }");
}

TEST(AggregateParsingTest, SampleAndGroupConcat) {
  auto q = sparql::ParseQuery(
      "SELECT (SAMPLE(?x) AS ?s) (GROUP_CONCAT(?x ; SEPARATOR=\", \") AS ?g)"
      " { ?a <p> ?x . }");
  ASSERT_TRUE(q.ok()) << q.status();
  EXPECT_EQ((*q)->items[0].expr->agg_func, sparql::AggFunc::kSample);
  EXPECT_EQ((*q)->items[1].expr->agg_func, sparql::AggFunc::kGroupConcat);
  EXPECT_EQ((*q)->items[1].expr->regex_pattern, ", ");
}

}  // namespace
}  // namespace rapida
