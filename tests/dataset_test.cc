#include "engines/dataset.h"
#include <algorithm>

#include <gtest/gtest.h>

#include "workload/bsbm.h"

namespace rapida::engine {
namespace {

rdf::Graph SmallGraph() {
  rdf::Graph g;
  g.AddIri("p1", rdf::kRdfType, "T1");
  g.AddLit("p1", "label", "one");
  g.AddIri("p1", "feature", "f1");
  g.AddIri("p2", rdf::kRdfType, "T2");
  g.AddLit("p2", "label", "two");
  g.AddIri("o1", "product", "p1");
  g.AddInt("o1", "price", 10);
  g.AddIri("o2", "product", "p2");
  g.AddInt("o2", "price", 20);
  return g;
}

TEST(DatasetTest, VpTablesPartitionByPropertyAndTypeObject) {
  Dataset d(SmallGraph());
  ASSERT_TRUE(d.EnsureVpTables().ok());
  const rdf::Dictionary& dict = d.graph().dict();

  std::string price = d.VpFile(dict.LookupIri("price"));
  ASSERT_FALSE(price.empty());
  auto f = d.dfs().Open(price);
  ASSERT_TRUE(f.ok());
  EXPECT_EQ((*f)->records.size(), 2u);

  // rdf:type gets per-object partitions, no generic table.
  EXPECT_TRUE(d.VpFile(d.type_id()).empty());
  std::string t1 = d.VpTypeFile(dict.LookupIri("T1"));
  ASSERT_FALSE(t1.empty());
  EXPECT_EQ((*d.dfs().Open(t1))->records.size(), 1u);

  EXPECT_TRUE(d.VpFile(dict.LookupIri("nope")).empty());
  EXPECT_GT(d.VpFileBytes(price), 0u);
  EXPECT_EQ(d.VpFileBytes(""), 0u);
}

TEST(DatasetTest, VpTablesCompressedByDefault) {
  Dataset::Options opts;
  opts.orc_ratio = 0.1;
  Dataset d(SmallGraph(), opts);
  ASSERT_TRUE(d.EnsureVpTables().ok());
  std::string price = d.VpFile(d.graph().dict().LookupIri("price"));
  auto f = d.dfs().Open(price);
  EXPECT_LT((*f)->stored_bytes, (*f)->logical_bytes);
}

TEST(DatasetTest, TripleGroupsPartitionedByEquivalenceClass) {
  Dataset d(SmallGraph());
  ASSERT_TRUE(d.EnsureTripleGroups().ok());
  // ECs: {type,label,feature} (p1), {type,label} (p2), {product,price}
  // (o1,o2) -> 3 files.
  EXPECT_EQ(d.AllTgFiles().size(), 3u);

  const rdf::Dictionary& dict = d.graph().dict();
  rdf::TermId product = dict.LookupIri("product");
  rdf::TermId price = dict.LookupIri("price");
  rdf::TermId label = dict.LookupIri("label");

  // Offers EC covers {product, price}.
  auto offer_files = d.TgFilesCovering({product, price});
  ASSERT_EQ(offer_files.size(), 1u);
  EXPECT_EQ((*d.dfs().Open(offer_files[0]))->records.size(), 2u);

  // {label} is covered by both product ECs.
  EXPECT_EQ(d.TgFilesCovering({label}).size(), 2u);
  // An empty requirement matches every file.
  EXPECT_EQ(d.TgFilesCovering({}).size(), 3u);
  // Unknown property: no file.
  EXPECT_TRUE(d.TgFilesCovering({dict.LookupIri("price"),
                                 dict.LookupIri("label")})
                  .empty());
}

TEST(DatasetTest, EnsureIsIdempotent) {
  Dataset d(SmallGraph());
  ASSERT_TRUE(d.EnsureVpTables().ok());
  ASSERT_TRUE(d.EnsureTripleGroups().ok());
  uint64_t bytes = d.dfs().TotalStoredBytes();
  ASSERT_TRUE(d.EnsureVpTables().ok());
  ASSERT_TRUE(d.EnsureTripleGroups().ok());
  EXPECT_EQ(d.dfs().TotalStoredBytes(), bytes);
}

TEST(DatasetTest, BothLayoutsCarryEveryTriple) {
  workload::BsbmConfig cfg;
  cfg.num_products = 80;
  Dataset d(workload::GenerateBsbm(cfg));
  ASSERT_TRUE(d.EnsureVpTables().ok());
  ASSERT_TRUE(d.EnsureTripleGroups().ok());

  size_t vp_rows = 0;
  size_t tg_triples = 0;
  for (const std::string& f : d.dfs().ListFiles()) {
    auto file = d.dfs().Open(f);
    ASSERT_TRUE(file.ok());
    if (f.rfind("vp:", 0) == 0) {
      vp_rows += (*file)->records.size();
    } else {
      for (const mr::Record& r : (*file)->records) {
        // Count ';' separators = triple count per group.
        tg_triples += static_cast<size_t>(
            std::count(r.value.begin(), r.value.end(), ';'));
      }
    }
  }
  EXPECT_EQ(vp_rows, d.graph().size());
  EXPECT_EQ(tg_triples, d.graph().size());
}


TEST(DatasetTest, SingleFileModeCoversEverything) {
  Dataset::Options opts;
  opts.tg_partition_by_ec = false;
  Dataset d(SmallGraph(), opts);
  ASSERT_TRUE(d.EnsureTripleGroups().ok());
  EXPECT_EQ(d.AllTgFiles().size(), 1u);
  const rdf::Dictionary& dict = d.graph().dict();
  // Every property request resolves to the single file.
  EXPECT_EQ(d.TgFilesCovering({dict.LookupIri("price")}).size(), 1u);
  EXPECT_EQ(d.TgFilesCovering({dict.LookupIri("label")}).size(), 1u);
  EXPECT_EQ(d.TgFilesCovering({}).size(), 1u);
}

}  // namespace
}  // namespace rapida::engine
