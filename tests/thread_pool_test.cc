#include "util/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>
#include <vector>

namespace rapida::util {
namespace {

TEST(ThreadPoolTest, SubmittedTasksRun) {
  ThreadPool pool(3);
  EXPECT_EQ(pool.num_threads(), 3);
  std::atomic<int> counter{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 100; ++i) {
    futures.push_back(pool.Submit([&counter] { ++counter; }));
  }
  for (auto& f : futures) f.get();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPoolTest, SubmitPropagatesExceptions) {
  ThreadPool pool(2);
  auto f = pool.Submit([] { throw std::runtime_error("boom"); });
  EXPECT_THROW(f.get(), std::runtime_error);
}

TEST(ThreadPoolTest, ParallelForCoversEveryIndexOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  pool.ParallelFor(hits.size(), [&hits](size_t i) { ++hits[i]; });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPoolTest, ParallelForHandlesSmallAndEmptyRanges) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  pool.ParallelFor(0, [&counter](size_t) { ++counter; });
  EXPECT_EQ(counter.load(), 0);
  pool.ParallelFor(1, [&counter](size_t) { ++counter; });
  EXPECT_EQ(counter.load(), 1);
}

TEST(ThreadPoolTest, ParallelForPropagatesFirstException) {
  ThreadPool pool(4);
  std::atomic<int> ran{0};
  EXPECT_THROW(pool.ParallelFor(64,
                                [&ran](size_t i) {
                                  ++ran;
                                  if (i % 7 == 3) {
                                    throw std::runtime_error("bad index");
                                  }
                                }),
               std::runtime_error);
  EXPECT_GT(ran.load(), 0);
}

TEST(ThreadPoolTest, ZeroThreadsFloorsAtOneWorker) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.num_threads(), 1);
  std::atomic<int> counter{0};
  pool.ParallelFor(10, [&counter](size_t) { ++counter; });
  EXPECT_EQ(counter.load(), 10);
  pool.Submit([&counter] { ++counter; }).get();
  EXPECT_EQ(counter.load(), 11);
}

TEST(ThreadPoolTest, HardwareThreadsIsPositive) {
  EXPECT_GE(ThreadPool::HardwareThreads(), 1);
}

}  // namespace
}  // namespace rapida::util
