#include "rdf/turtle.h"
#include "rdf/ntriples.h"

#include <gtest/gtest.h>

namespace rapida::rdf {
namespace {

Graph MustParse(const std::string& text) {
  Graph g;
  Status s = ParseTurtle(text, &g);
  EXPECT_TRUE(s.ok()) << s;
  return g;
}

TEST(TurtleTest, PrefixDirectiveAndAbbreviations) {
  Graph g = MustParse(R"(
    @prefix ex: <http://ex/> .
    ex:p1 a ex:Product ;
          ex:label "one" ;
          ex:feature ex:f1 , ex:f2 .
  )");
  EXPECT_EQ(g.size(), 4u);
  EXPECT_NE(g.dict().LookupIri("http://ex/p1"), kInvalidTermId);
  EXPECT_NE(g.dict().LookupIri(kRdfType), kInvalidTermId);
  EXPECT_NE(g.dict().LookupIri("http://ex/f2"), kInvalidTermId);
}

TEST(TurtleTest, SparqlStylePrefixWithoutDot) {
  Graph g = MustParse(
      "PREFIX ex: <http://ex/>\n"
      "ex:s ex:p ex:o .\n");
  EXPECT_EQ(g.size(), 1u);
}

TEST(TurtleTest, BaseResolution) {
  Graph g = MustParse(R"(
    @base <http://base/> .
    <s> <p> <o> .
    <s> <p2> <http://absolute/o> .
  )");
  EXPECT_NE(g.dict().LookupIri("http://base/s"), kInvalidTermId);
  EXPECT_NE(g.dict().LookupIri("http://absolute/o"), kInvalidTermId);
}

TEST(TurtleTest, TypedAndTaggedLiterals) {
  Graph g = MustParse(R"(
    @prefix xsd: <http://www.w3.org/2001/XMLSchema#> .
    <s> <p> "5"^^xsd:integer .
    <s> <q> "hello"@en .
    <s> <r> "plain" .
  )");
  ASSERT_EQ(g.size(), 3u);
  const Term& typed = g.dict().Get(g.triples()[0].o);
  EXPECT_EQ(typed.datatype, "http://www.w3.org/2001/XMLSchema#integer");
  const Term& tagged = g.dict().Get(g.triples()[1].o);
  EXPECT_EQ(tagged.datatype, "@en");
}

TEST(TurtleTest, BareNumbersAndBooleans) {
  Graph g = MustParse(R"(
    <s> <i> 42 .
    <s> <d> 3.14 .
    <s> <e> 1.0e3 .
    <s> <n> -7 .
    <s> <b> true .
    <s> <b2> false .
  )");
  ASSERT_EQ(g.size(), 6u);
  EXPECT_EQ(g.dict().Get(g.triples()[0].o).datatype, kXsdInteger);
  EXPECT_EQ(g.dict().Get(g.triples()[1].o).datatype,
            "http://www.w3.org/2001/XMLSchema#decimal");
  EXPECT_EQ(g.dict().Get(g.triples()[2].o).datatype,
            "http://www.w3.org/2001/XMLSchema#double");
  EXPECT_EQ(g.dict().Get(g.triples()[3].o).text, "-7");
  EXPECT_EQ(g.dict().Get(g.triples()[4].o).text, "true");
}

TEST(TurtleTest, EscapesAndLongStrings) {
  Graph g = MustParse(
      "<s> <p> \"line\\n\\\"q\\\"\" .\n"
      "<s> <q> \"\"\"multi\nline\"\"\" .\n");
  ASSERT_EQ(g.size(), 2u);
  EXPECT_EQ(g.dict().Get(g.triples()[0].o).text, "line\n\"q\"");
  EXPECT_EQ(g.dict().Get(g.triples()[1].o).text, "multi\nline");
}

TEST(TurtleTest, BlankNodes) {
  Graph g = MustParse("_:b1 <p> _:b2 .\n_:b1 <q> \"v\" .\n");
  EXPECT_EQ(g.size(), 2u);
  EXPECT_TRUE(g.dict().Get(g.triples()[0].s).is_blank());
}

TEST(TurtleTest, CommentsAnywhere) {
  Graph g = MustParse(R"(
    # leading comment
    @prefix ex: <http://ex/> .  # trailing
    ex:s ex:p ex:o . # done
  )");
  EXPECT_EQ(g.size(), 1u);
}

TEST(TurtleTest, DanglingSemicolonBeforeDot) {
  Graph g = MustParse("<s> <p> <o> ; .\n");
  EXPECT_EQ(g.size(), 1u);
}

TEST(TurtleTest, Errors) {
  Graph g;
  EXPECT_FALSE(ParseTurtle("<s> <p> .", &g).ok());           // missing object
  EXPECT_FALSE(ParseTurtle("<s> <p> <o>", &g).ok());         // missing dot
  EXPECT_FALSE(ParseTurtle("ex:s <p> <o> .", &g).ok());      // no prefix decl
  EXPECT_FALSE(ParseTurtle("\"lit\" <p> <o> .", &g).ok());   // literal subj
  EXPECT_FALSE(ParseTurtle("<s> \"p\" <o> .", &g).ok());     // literal pred
  EXPECT_FALSE(ParseTurtle("<s> <p> [ <q> <o> ] .", &g).ok());  // bnode list
  EXPECT_FALSE(ParseTurtle("<s> <p> (1 2) .", &g).ok());     // collection
  EXPECT_FALSE(ParseTurtle("<s> <p> \"unterminated .", &g).ok());
}

TEST(TurtleTest, ErrorsCarryLineNumbers) {
  Graph g;
  Status s = ParseTurtle("<s> <p> <o> .\n<s> <p>\n<o2>", &g);
  ASSERT_FALSE(s.ok());
  EXPECT_NE(s.message().find("line"), std::string::npos);
}

TEST(TurtleTest, AgreesWithNTriplesOnCommonData) {
  // Identical data in both syntaxes parses into identical graphs.
  Graph from_ttl = MustParse(R"(
    @prefix ex: <http://ex/> .
    ex:s a ex:T ;
         ex:price 10 ;
         ex:label "thing" .
  )");
  Graph from_nt;
  ASSERT_TRUE(ParseNTriples(
      "<http://ex/s> "
      "<http://www.w3.org/1999/02/22-rdf-syntax-ns#type> <http://ex/T> .\n"
      "<http://ex/s> <http://ex/price> "
      "\"10\"^^<http://www.w3.org/2001/XMLSchema#integer> .\n"
      "<http://ex/s> <http://ex/label> \"thing\" .\n",
      &from_nt)
          .ok());
  EXPECT_EQ(WriteNTriples(from_ttl), WriteNTriples(from_nt));
}

}  // namespace
}  // namespace rapida::rdf
