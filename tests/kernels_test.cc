#include "mapreduce/kernels.h"

#include <gtest/gtest.h>

#include <map>
#include <string>
#include <vector>

#include "analytics/analytical_query.h"
#include "engines/engines.h"
#include "engines/relational_ops.h"
#include "mapreduce/cluster.h"
#include "mapreduce/dfs.h"
#include "ntga/triplegroup.h"
#include "sparql/parser.h"
#include "util/string_util.h"

namespace rapida {
namespace {

using engine::AppendRow;
using engine::DecodeRow;
using engine::DecodeRowInto;
using engine::EncodeRow;

// ---------------------------------------------------------------------------
// Primitive kernels.

TEST(HashIndexTest, FindOrInsertGrowsAndFinds) {
  mr::kernels::HashIndex index;
  std::vector<uint64_t> keys;
  for (uint64_t k = 0; k < 10000; ++k) {
    auto [id, inserted] = index.FindOrInsert(
        mr::kernels::MixId(k), static_cast<uint32_t>(keys.size()),
        [&](uint32_t cand) { return keys[cand] == k; });
    ASSERT_TRUE(inserted);
    ASSERT_EQ(id, keys.size());
    keys.push_back(k);
  }
  EXPECT_EQ(index.size(), 10000u);
  for (uint64_t k = 0; k < 10000; ++k) {
    uint32_t id = index.Find(mr::kernels::MixId(k), [&](uint32_t cand) {
      return keys[cand] == k;
    });
    ASSERT_EQ(id, k);
    auto [again, inserted] = index.FindOrInsert(
        mr::kernels::MixId(k), 0xdeadu,
        [&](uint32_t cand) { return keys[cand] == k; });
    EXPECT_FALSE(inserted);
    EXPECT_EQ(again, k);
  }
  EXPECT_EQ(index.Find(mr::kernels::MixId(999999), [](uint32_t) {
    return true;
  }), mr::kernels::HashIndex::kNotFound);
  index.Clear();
  EXPECT_EQ(index.size(), 0u);
  EXPECT_EQ(index.Find(mr::kernels::MixId(1), [](uint32_t) { return true; }),
            mr::kernels::HashIndex::kNotFound);
}

TEST(HashIndexTest, ResolvesHashCollisionsThroughEq) {
  // Force every key onto one hash: correctness must come from eq().
  mr::kernels::HashIndex index;
  std::vector<int> keys;
  for (int k = 0; k < 64; ++k) {
    auto [id, inserted] = index.FindOrInsert(
        42, static_cast<uint32_t>(keys.size()),
        [&](uint32_t cand) { return keys[cand] == k; });
    ASSERT_TRUE(inserted) << k;
    keys.push_back(k);
  }
  for (int k = 0; k < 64; ++k) {
    EXPECT_EQ(index.Find(42, [&](uint32_t cand) { return keys[cand] == k; }),
              static_cast<uint32_t>(k));
  }
}

TEST(KernelsTest, AppendDecimalMatchesToString) {
  for (uint64_t v : {0ull, 1ull, 9ull, 10ull, 4294967295ull,
                     18446744073709551615ull}) {
    std::string out = "x";
    mr::kernels::AppendDecimal(&out, v);
    EXPECT_EQ(out, "x" + std::to_string(v));
  }
}

TEST(KernelsTest, RowCodecVariantsMatchScalar) {
  std::vector<std::vector<rdf::TermId>> rows = {
      {}, {0}, {1, 2, 3}, {4294967295u, 0, 7}};
  std::vector<rdf::TermId> scratch = {9, 9, 9, 9, 9};
  for (const auto& row : rows) {
    std::string batch;
    AppendRow(&batch, row);
    EXPECT_EQ(batch, EncodeRow(row));
    DecodeRowInto(batch, &scratch);
    EXPECT_EQ(scratch, DecodeRow(batch));
    EXPECT_EQ(scratch, row);
  }
}

TEST(KernelsTest, TokenizeRowMatchesFieldTokenizer) {
  for (const char* input : {"", "a", ";", "a;;b", "a;b;", ";a", "x,y;z"}) {
    mr::kernels::FieldColumns cols;
    mr::kernels::TokenizeRow(input, ';', &cols);
    std::vector<std::string> batch(cols.fields.begin(), cols.fields.end());
    std::vector<std::string> scalar;
    FieldTokenizer fields(input, ';');
    std::string_view part;
    while (fields.Next(&part)) scalar.emplace_back(part);
    EXPECT_EQ(batch, scalar) << "input: '" << input << "'";
    EXPECT_EQ(cols.num_rows(), 1u);
  }
}

TEST(KernelsTest, TokenizeValuesCoversWholeBatch) {
  std::vector<std::string> values = {"1;2,3", "", "7;8,9;10,11"};
  std::vector<mr::Record> records(values.size());
  std::vector<mr::TaggedRecord> tagged(values.size());
  for (size_t i = 0; i < values.size(); ++i) {
    records[i] = mr::MakeRecord("", values[i]);
    tagged[i] = mr::TaggedRecord{&records[i], 0};
  }
  mr::kernels::FieldColumns cols;
  mr::kernels::TokenizeValues(tagged.data(), tagged.size(), ';', &cols);
  ASSERT_EQ(cols.num_rows(), 3u);
  EXPECT_EQ(cols.fields[cols.row_begin(0)], "1");
  EXPECT_EQ(cols.fields[cols.row_begin(1)], "");
  EXPECT_EQ(cols.row_end[2] - cols.row_begin(2), 3u);
  EXPECT_EQ(cols.fields[cols.row_end[2] - 1], "10,11");
}

TEST(KernelsTest, TripleGroupCodecVariantsMatchScalar) {
  ntga::TripleGroup tg;
  tg.subject = 17;
  tg.triples.push_back(rdf::Triple{17, 3, 99});
  tg.triples.push_back(rdf::Triple{17, 4, 5});
  std::string to;
  ntga::SerializeTripleGroupTo(tg, &to);
  EXPECT_EQ(to, ntga::SerializeTripleGroup(tg));

  ntga::TripleGroup reparsed;
  reparsed.triples.resize(7);  // stale scratch must be fully reset
  ASSERT_TRUE(ntga::ParseTripleGroupInto(to, &reparsed).ok());
  EXPECT_EQ(reparsed, tg);

  ntga::NestedTripleGroup ntg;
  ntg.stars.resize(3);
  ntg.stars[0] = tg;
  ntg.stars[2].subject = 8;
  ntg.stars[2].triples.push_back(rdf::Triple{8, 1, 2});
  std::string nested;
  ntga::SerializeNestedTo(ntg, &nested);
  EXPECT_EQ(nested, ntga::SerializeNested(ntg));

  ntga::NestedTripleGroup scratch;
  scratch.stars.resize(1);
  scratch.stars[0].subject = 123;  // stale star must be cleared
  ASSERT_TRUE(ntga::ParseNestedInto(nested, 3, &scratch).ok());
  EXPECT_EQ(scratch, ntg);
}

// ---------------------------------------------------------------------------
// Cluster-level matrix: the same word-count-shaped job run through a
// scalar map and through map_batch must produce byte-identical output and
// identical JobStats, for every exec_threads x combine combination.

struct JobOutput {
  std::vector<std::pair<std::string, std::string>> records;
  mr::JobStats stats;
};

JobOutput RunCountJob(bool batch, bool combine, int threads) {
  mr::Dfs dfs;
  mr::RecordBatch input;
  for (int i = 0; i < 5000; ++i) {
    std::string value = "tok" + std::to_string(i % 91) + ";tok" +
                        std::to_string(i % 13) + ";tok" +
                        std::to_string(i % 7);
    input.Add("k" + std::to_string(i), value);
  }
  EXPECT_TRUE(dfs.Write("in", std::move(input)).ok());

  mr::ClusterConfig config;
  config.exec_threads = threads;
  mr::Cluster cluster(config, &dfs);

  mr::JobConfig job;
  job.name = "count";
  job.inputs = {"in"};
  job.output = "out";
  auto emit_tokens = [](std::string_view value, mr::MapContext* ctx) {
    FieldTokenizer fields(value, ';');
    std::string_view part;
    while (fields.Next(&part)) ctx->Emit(part, "1");
  };
  if (batch) {
    job.map_batch = [emit_tokens](const mr::TaggedRecord* recs, size_t n,
                                  mr::MapContext* ctx) {
      for (size_t i = 0; i < n; ++i) emit_tokens(recs[i].record->value, ctx);
    };
  } else {
    job.map = [emit_tokens](const mr::Record& r, int, mr::MapContext* ctx) {
      emit_tokens(r.value, ctx);
    };
  }
  auto sum = [](std::string_view key, const mr::ValueSpan& values,
                mr::ReduceContext* ctx) {
    int64_t total = 0;
    for (std::string_view v : values) {
      int64_t n = 0;
      ParseInt64(v, &n);
      total += n;
    }
    ctx->Emit(key, std::to_string(total));
  };
  if (combine) job.combine = sum;
  job.reduce = sum;
  job.reduce_parallel_safe = true;

  JobOutput out;
  auto stats = cluster.Run(job);
  EXPECT_TRUE(stats.ok()) << stats.status();
  if (stats.ok()) out.stats = *stats;
  auto file = dfs.Open("out");
  EXPECT_TRUE(file.ok());
  for (const mr::Record& r : (*file)->records) {
    out.records.emplace_back(std::string(r.key), std::string(r.value));
  }
  return out;
}

void ExpectSameStats(const mr::JobStats& a, const mr::JobStats& b,
                     const std::string& label) {
  EXPECT_EQ(a.input_records, b.input_records) << label;
  EXPECT_EQ(a.input_bytes, b.input_bytes) << label;
  EXPECT_EQ(a.map_output_records, b.map_output_records) << label;
  EXPECT_EQ(a.map_output_bytes, b.map_output_bytes) << label;
  EXPECT_EQ(a.shuffle_records, b.shuffle_records) << label;
  EXPECT_EQ(a.shuffle_bytes, b.shuffle_bytes) << label;
  EXPECT_EQ(a.output_records, b.output_records) << label;
  EXPECT_EQ(a.output_bytes, b.output_bytes) << label;
  EXPECT_EQ(a.num_mappers, b.num_mappers) << label;
  EXPECT_EQ(a.num_reducers, b.num_reducers) << label;
  EXPECT_DOUBLE_EQ(a.sim_seconds, b.sim_seconds) << label;
}

TEST(KernelMatrixTest, BatchMapMatchesScalarAcrossThreadsAndCombine) {
  JobOutput reference = RunCountJob(/*batch=*/false, /*combine=*/false, 1);
  ASSERT_FALSE(reference.records.empty());
  for (int threads : {1, 4, 8}) {
    for (bool combine : {false, true}) {
      std::string label = "threads=" + std::to_string(threads) +
                          " combine=" + (combine ? "on" : "off");
      JobOutput scalar = RunCountJob(false, combine, threads);
      JobOutput batch = RunCountJob(true, combine, threads);
      EXPECT_EQ(batch.records, scalar.records) << label;
      ExpectSameStats(batch.stats, scalar.stats, label);
      // Combine changes shuffle volume but never the reduced output.
      EXPECT_EQ(batch.records, reference.records) << label;
    }
  }
}

// ---------------------------------------------------------------------------
// Engine-level matrix: every engine, vectorized_kernels on vs off, across
// exec_threads — results and every per-job counter must be identical.

rdf::Graph BuildGraph() {
  rdf::Graph g;
  const char* products[] = {"p1", "p2", "p3", "p4", "p5"};
  const char* types[] = {"PT1", "PT1", "PT1", "PT2", "PT2"};
  for (int i = 0; i < 5; ++i) {
    g.AddIri(products[i], rdf::kRdfType, types[i]);
    g.AddLit(products[i], "label", std::string("label") + products[i]);
  }
  g.AddIri("p1", "feature", "f1");
  g.AddIri("p1", "feature", "f2");
  g.AddIri("p2", "feature", "f1");
  g.AddIri("p3", "feature", "f3");
  g.AddIri("p4", "feature", "f2");
  struct Offer {
    const char* id;
    const char* product;
    int price;
    const char* vendor;
  };
  Offer offers[] = {
      {"o1", "p1", 100, "v1"}, {"o2", "p1", 250, "v2"},
      {"o3", "p2", 80, "v1"},  {"o4", "p3", 300, "v3"},
      {"o5", "p4", 120, "v2"}, {"o6", "p5", 500, "v3"},
      {"o7", "p2", 90, "v2"},
  };
  for (const Offer& o : offers) {
    g.AddIri(o.id, "product", o.product);
    g.AddInt(o.id, "price", o.price);
    g.AddIri(o.id, "vendor", o.vendor);
  }
  g.AddIri("v1", "country", "DE");
  g.AddIri("v2", "country", "US");
  g.AddIri("v3", "country", "DE");
  return g;
}

constexpr char kOverlapQuery[] = R"(
  SELECT ?f ?cntF ?sumF ?cntT ?sumT {
    { SELECT ?f (COUNT(?pr2) AS ?cntF) (SUM(?pr2) AS ?sumF) {
        ?p2 a <PT1> . ?p2 <label> ?l2 . ?p2 <feature> ?f .
        ?off2 <product> ?p2 . ?off2 <price> ?pr2 .
      } GROUP BY ?f }
    { SELECT (COUNT(?pr) AS ?cntT) (SUM(?pr) AS ?sumT) {
        ?p1 a <PT1> . ?p1 <label> ?l1 .
        ?off1 <product> ?p1 . ?off1 <price> ?pr .
      } }
  }
)";

constexpr char kFilterQuery[] = R"(
  SELECT ?v (COUNT(?o) AS ?cnt) (SUM(?pr) AS ?total) {
    ?o <product> ?p . ?o <price> ?pr . ?o <vendor> ?v .
    FILTER(?pr >= 100)
  } GROUP BY ?v
)";

struct EngineRun {
  std::vector<std::vector<rdf::TermId>> rows;
  engine::ExecStats stats;
};

EngineRun RunEngine(engine::Engine* eng, const std::string& query_text,
                    engine::Dataset* dataset, int threads) {
  auto parsed = sparql::ParseQuery(query_text);
  EXPECT_TRUE(parsed.ok()) << parsed.status();
  auto query = analytics::AnalyzeQuery(**parsed);
  EXPECT_TRUE(query.ok()) << query.status();
  mr::ClusterConfig config;
  config.exec_threads = threads;
  mr::Cluster cluster(config, &dataset->dfs());
  EngineRun out;
  auto result = eng->Execute(*query, dataset, &cluster, &out.stats);
  EXPECT_TRUE(result.ok()) << eng->name() << ": " << result.status();
  if (result.ok()) out.rows = result->rows();
  return out;
}

TEST(KernelMatrixTest, EnginesByteIdenticalWithKernelsOnAndOff) {
  engine::Dataset dataset(BuildGraph());
  engine::EngineOptions on, off;
  on.vectorized_kernels = true;
  off.vectorized_kernels = false;
  for (const char* query : {kOverlapQuery, kFilterQuery}) {
    // The kernels-off single-thread run is the semantic reference.
    std::map<std::string, EngineRun> reference;
    for (const auto& eng : engine::MakeAllEngines(off)) {
      reference[eng->name()] = RunEngine(eng.get(), query, &dataset, 1);
    }
    for (int threads : {1, 4, 8}) {
      for (const auto& eng : engine::MakeAllEngines(on)) {
        EngineRun run = RunEngine(eng.get(), query, &dataset, threads);
        const EngineRun& ref = reference[eng->name()];
        std::string label =
            eng->name() + " threads=" + std::to_string(threads);
        EXPECT_EQ(run.rows, ref.rows) << label;
        ASSERT_EQ(run.stats.workflow.jobs.size(),
                  ref.stats.workflow.jobs.size())
            << label;
        for (size_t j = 0; j < run.stats.workflow.jobs.size(); ++j) {
          ExpectSameStats(run.stats.workflow.jobs[j],
                          ref.stats.workflow.jobs[j],
                          label + " job#" + std::to_string(j));
        }
      }
    }
  }
}

}  // namespace
}  // namespace rapida
