#include "util/crc32c.h"

#include <gtest/gtest.h>

#include <string>

namespace rapida::util {
namespace {

TEST(Crc32cTest, KnownVectors) {
  // The classic CRC-32C check value (RFC 3720 appendix / every Castagnoli
  // implementation): crc32c("123456789") == 0xE3069283.
  EXPECT_EQ(Crc32c("123456789"), 0xE3069283u);
  // 32 zero bytes, another standard vector.
  EXPECT_EQ(Crc32c(std::string(32, '\0')), 0x8A9136AAu);
  // 32 0xFF bytes.
  EXPECT_EQ(Crc32c(std::string(32, '\xff')), 0x62A8AB43u);
}

TEST(Crc32cTest, EmptyInputIsZero) { EXPECT_EQ(Crc32c(""), 0u); }

TEST(Crc32cTest, StreamingExtendMatchesOneShot) {
  const std::string data = "content-addressed artifact payload bytes";
  for (size_t split = 0; split <= data.size(); ++split) {
    uint32_t crc = Crc32cExtend(0, std::string_view(data).substr(0, split));
    crc = Crc32cExtend(crc, std::string_view(data).substr(split));
    EXPECT_EQ(crc, Crc32c(data)) << "split at " << split;
  }
}

TEST(Crc32cTest, DetectsBitFlips) {
  std::string data(256, 'a');
  uint32_t clean = Crc32c(data);
  for (size_t i = 0; i < data.size(); i += 17) {
    std::string corrupted = data;
    corrupted[i] = static_cast<char>(corrupted[i] ^ 0x40);
    EXPECT_NE(Crc32c(corrupted), clean) << "flip at byte " << i;
  }
}

TEST(Crc32cTest, OrderSensitive) {
  EXPECT_NE(Crc32c("ab"), Crc32c("ba"));
}

}  // namespace
}  // namespace rapida::util
