#include "engines/engines.h"

#include <gtest/gtest.h>

#include "analytics/reference_evaluator.h"
#include "sparql/parser.h"
#include "testing/normalize.h"

namespace rapida::engine {
namespace {

/// Builds the small BSBM-flavoured graph shared by the engine tests:
/// products of two types with labels and (multi-valued) features, offers
/// with prices and vendors, vendors with countries.
rdf::Graph BuildMiniGraph() {
  rdf::Graph g;
  auto add = [&g](const char* s, const char* p, const char* o) {
    g.AddIri(s, p, o);
  };
  const char* products[] = {"p1", "p2", "p3", "p4", "p5"};
  const char* types[] = {"PT1", "PT1", "PT1", "PT2", "PT2"};
  for (int i = 0; i < 5; ++i) {
    add(products[i], rdf::kRdfType, types[i]);
    g.AddLit(products[i], "label", std::string("label") + products[i]);
  }
  add("p1", "feature", "f1");
  add("p1", "feature", "f2");
  add("p2", "feature", "f1");
  add("p3", "feature", "f3");
  add("p4", "feature", "f2");
  // p5 has no feature.
  struct Offer {
    const char* id;
    const char* product;
    int price;
    const char* vendor;
  };
  Offer offers[] = {
      {"o1", "p1", 100, "v1"}, {"o2", "p1", 250, "v2"},
      {"o3", "p2", 80, "v1"},  {"o4", "p3", 300, "v3"},
      {"o5", "p4", 120, "v2"}, {"o6", "p5", 500, "v3"},
      {"o7", "p2", 90, "v2"},
  };
  for (const Offer& o : offers) {
    add(o.id, "product", o.product);
    g.AddInt(o.id, "price", o.price);
    add(o.id, "vendor", o.vendor);
  }
  add("v1", "country", "DE");
  add("v2", "country", "US");
  add("v3", "country", "DE");
  return g;
}

class EnginesTest : public ::testing::Test {
 protected:
  EnginesTest()
      : dataset_(BuildMiniGraph()),
        cluster_(mr::ClusterConfig{}, &dataset_.dfs()) {}

  /// Runs `query_text` on every engine and checks all results equal the
  /// reference evaluator's. Returns cycle counts by engine name.
  std::map<std::string, int> RunAllAndCompare(const std::string& query_text) {
    auto parsed = sparql::ParseQuery(query_text);
    EXPECT_TRUE(parsed.ok()) << parsed.status();
    auto query = analytics::AnalyzeQuery(**parsed);
    EXPECT_TRUE(query.ok()) << query.status();

    analytics::ReferenceEvaluator ref(&dataset_.graph());
    auto expected = ref.Evaluate(**parsed);
    EXPECT_TRUE(expected.ok()) << expected.status();
    std::vector<std::string> expected_rows =
        expected->ToSortedStrings(dataset_.dict());

    std::map<std::string, int> cycles;
    for (const auto& engine : MakeAllEngines()) {
      ExecStats stats;
      auto result = engine->Execute(*query, &dataset_, &cluster_, &stats);
      if (!result.ok()) {
        ADD_FAILURE() << engine->name() << ": " << result.status();
        continue;
      }
      EXPECT_EQ(result->ToSortedStrings(dataset_.dict()), expected_rows)
          << engine->name() << " result mismatch on:\n"
          << query_text;
      cycles[engine->name()] = stats.workflow.NumCycles();
      EXPECT_GT(stats.workflow.TotalSimSeconds(), 0) << engine->name();
    }
    return cycles;
  }

  Dataset dataset_;
  mr::Cluster cluster_;
};

// MG1-shaped query: per-feature price stats vs overall stats (overlapping
// patterns; GP1 3:2 triple patterns, GP2 2:2).
constexpr char kMg1Style[] = R"(
  SELECT ?f ?cntF ?sumF ?cntT ?sumT {
    { SELECT ?f (COUNT(?pr2) AS ?cntF) (SUM(?pr2) AS ?sumF) {
        ?p2 a <PT1> . ?p2 <label> ?l2 . ?p2 <feature> ?f .
        ?off2 <product> ?p2 . ?off2 <price> ?pr2 .
      } GROUP BY ?f }
    { SELECT (COUNT(?pr) AS ?cntT) (SUM(?pr) AS ?sumT) {
        ?p1 a <PT1> . ?p1 <label> ?l1 .
        ?off1 <product> ?p1 . ?off1 <price> ?pr .
      } }
  }
)";

TEST_F(EnginesTest, Mg1StyleAllEnginesAgree) {
  std::map<std::string, int> cycles = RunAllAndCompare(kMg1Style);
  // Plan shapes from the paper (§5.2, MG1–MG2): naive Hive 9 cycles,
  // RAPID+ 5, RAPIDAnalytics 3. Our MQO accounting lands at 8 (the paper
  // reports 7; see EXPERIMENTS.md).
  EXPECT_EQ(cycles["Hive (Naive)"], 9);
  EXPECT_EQ(cycles["RAPID+ (Naive)"], 5);
  EXPECT_EQ(cycles["RAPIDAnalytics"], 3);
  EXPECT_EQ(cycles["Hive (MQO)"], 8);
}

// MG3-shaped query: three stars per pattern (adds vendor->country).
constexpr char kMg3Style[] = R"(
  SELECT ?f ?c ?cntF ?sumF ?cntT ?sumT {
    { SELECT ?f ?c (COUNT(?pr2) AS ?cntF) (SUM(?pr2) AS ?sumF) {
        ?p2 a <PT1> . ?p2 <label> ?l2 . ?p2 <feature> ?f .
        ?off2 <product> ?p2 . ?off2 <price> ?pr2 . ?off2 <vendor> ?v2 .
        ?v2 <country> ?c .
      } GROUP BY ?f ?c }
    { SELECT ?c (COUNT(?pr) AS ?cntT) (SUM(?pr) AS ?sumT) {
        ?p1 a <PT1> . ?p1 <label> ?l1 .
        ?off1 <product> ?p1 . ?off1 <price> ?pr . ?off1 <vendor> ?v1 .
        ?v1 <country> ?c .
      } GROUP BY ?c }
  }
)";

TEST_F(EnginesTest, Mg3StyleAllEnginesAgree) {
  std::map<std::string, int> cycles = RunAllAndCompare(kMg3Style);
  // Paper: naive Hive 11, RAPID+ 7, RAPIDAnalytics 4.
  EXPECT_EQ(cycles["Hive (Naive)"], 11);
  EXPECT_EQ(cycles["RAPID+ (Naive)"], 7);
  EXPECT_EQ(cycles["RAPIDAnalytics"], 4);
}

// Single-grouping query (G3/G4 shape): GROUP BY feature.
constexpr char kG3Style[] = R"(
  SELECT ?f (COUNT(?pr) AS ?cnt) (SUM(?pr) AS ?sum) {
    ?p a <PT1> . ?p <label> ?l . ?p <feature> ?f .
    ?o <product> ?p . ?o <price> ?pr .
  } GROUP BY ?f
)";

TEST_F(EnginesTest, SingleGroupingShapes) {
  std::map<std::string, int> cycles = RunAllAndCompare(kG3Style);
  // Paper Table 3: Hive 4 cycles, RAPIDAnalytics 2.
  EXPECT_EQ(cycles["Hive (Naive)"], 4);
  EXPECT_EQ(cycles["RAPIDAnalytics"], 2);
  EXPECT_EQ(cycles["RAPID+ (Naive)"], 2);
}

// GROUP BY ALL (G1/G2 shape).
constexpr char kG1Style[] = R"(
  SELECT (COUNT(?pr) AS ?cnt) (AVG(?pr) AS ?avg) {
    ?p a <PT2> . ?p <label> ?l .
    ?o <product> ?p . ?o <price> ?pr .
  }
)";

TEST_F(EnginesTest, GroupByAll) { RunAllAndCompare(kG1Style); }

TEST_F(EnginesTest, GroupByAllOverEmptyData) {
  // No products of this type: COUNT must still be 0, on every engine.
  RunAllAndCompare(R"(
    SELECT (COUNT(?pr) AS ?cnt) {
      ?p a <PT1> . ?p <nosuchprop> ?x .
      ?o <product> ?p . ?o <price> ?pr .
    }
  )");
}

TEST_F(EnginesTest, FilterOnSharedPrimaryVariable) {
  RunAllAndCompare(R"(
    SELECT ?f ?cntF ?cntT {
      { SELECT ?f (COUNT(?pr2) AS ?cntF) {
          ?p2 a <PT1> . ?p2 <feature> ?f .
          ?off2 <product> ?p2 . ?off2 <price> ?pr2 .
          FILTER(?pr2 > 90)
        } GROUP BY ?f }
      { SELECT (COUNT(?pr) AS ?cntT) {
          ?p1 a <PT1> .
          ?off1 <product> ?p1 . ?off1 <price> ?pr .
          FILTER(?pr > 90)
        } }
    }
  )");
}

TEST_F(EnginesTest, NonOverlappingPatternsFallBack) {
  // GP1 over products, GP2 over vendors only — no overlap; MQO and
  // RAPIDAnalytics must fall back and still be correct.
  std::map<std::string, int> cycles = RunAllAndCompare(R"(
    SELECT ?cntP ?cntV {
      { SELECT (COUNT(?l) AS ?cntP) {
          ?p a <PT1> . ?p <label> ?l .
        } }
      { SELECT (COUNT(?c) AS ?cntV) {
          ?o <vendor> ?v . ?o <price> ?pc .
          ?v <country> ?c .
        } }
    }
  )");
  // Fallbacks take the naive plans.
  EXPECT_EQ(cycles["Hive (MQO)"], cycles["Hive (Naive)"]);
  EXPECT_EQ(cycles["RAPIDAnalytics"], cycles["RAPID+ (Naive)"]);
}

TEST_F(EnginesTest, TopLevelRatioExpression) {
  // AQ1-style final arithmetic over the two groupings' aggregates.
  RunAllAndCompare(R"(
    SELECT ?f ((?sumF / ?cntF) / (?sumT / ?cntT) AS ?ratio) {
      { SELECT ?f (COUNT(?pr2) AS ?cntF) (SUM(?pr2) AS ?sumF) {
          ?p2 a <PT1> . ?p2 <feature> ?f .
          ?off2 <product> ?p2 . ?off2 <price> ?pr2 .
        } GROUP BY ?f }
      { SELECT (COUNT(?pr) AS ?cntT) (SUM(?pr) AS ?sumT) {
          ?p1 a <PT1> .
          ?off1 <product> ?p1 . ?off1 <price> ?pr .
        } }
    }
  )");
}

TEST_F(EnginesTest, MinMaxAggregates) {
  RunAllAndCompare(R"(
    SELECT ?f (MIN(?pr) AS ?mn) (MAX(?pr) AS ?mx) {
      ?p a <PT1> . ?p <feature> ?f .
      ?o <product> ?p . ?o <price> ?pr .
    } GROUP BY ?f
  )");
}

TEST_F(EnginesTest, CountStar) {
  RunAllAndCompare(R"(
    SELECT ?c (COUNT(*) AS ?n) {
      ?o <vendor> ?v . ?o <price> ?pr .
      ?v <country> ?c .
    } GROUP BY ?c
  )");
}

TEST_F(EnginesTest, GroupByJoinVariable) {
  // Grouping on the product itself (a join variable).
  RunAllAndCompare(R"(
    SELECT ?p (COUNT(?pr) AS ?cnt) {
      ?p a <PT1> .
      ?o <product> ?p . ?o <price> ?pr .
    } GROUP BY ?p
  )");
}

TEST_F(EnginesTest, MapJoinProducesMapOnlyCycles) {
  auto parsed = sparql::ParseQuery(kG3Style);
  ASSERT_TRUE(parsed.ok());
  auto query = analytics::AnalyzeQuery(**parsed);
  ASSERT_TRUE(query.ok());

  EngineOptions with;
  with.map_join_threshold_bytes = 10 * 1024 * 1024;  // everything is small
  EngineOptions without;
  without.enable_map_joins = false;

  ExecStats s_with, s_without;
  HiveNaiveEngine e_with(with), e_without(without);
  auto r1 = e_with.Execute(*query, &dataset_, &cluster_, &s_with);
  auto r2 = e_without.Execute(*query, &dataset_, &cluster_, &s_without);
  ASSERT_TRUE(r1.ok()) << r1.status();
  ASSERT_TRUE(r2.ok()) << r2.status();
  EXPECT_EQ(r1->ToSortedStrings(dataset_.dict()),
            r2->ToSortedStrings(dataset_.dict()));
  EXPECT_GT(s_with.workflow.NumMapOnlyCycles(),
            s_without.workflow.NumMapOnlyCycles());
  // Map-joins avoid shuffle: strictly fewer bytes cross the network.
  EXPECT_LT(s_with.workflow.TotalShuffleBytes(),
            s_without.workflow.TotalShuffleBytes());
}

TEST_F(EnginesTest, SequentialVsParallelAggJoin) {
  auto parsed = sparql::ParseQuery(kMg1Style);
  ASSERT_TRUE(parsed.ok());
  auto query = analytics::AnalyzeQuery(**parsed);
  ASSERT_TRUE(query.ok());

  EngineOptions sequential;
  sequential.parallel_agg_join = false;
  ExecStats s_par, s_seq;
  RapidAnalyticsEngine par, seq(sequential);
  auto r1 = par.Execute(*query, &dataset_, &cluster_, &s_par);
  auto r2 = seq.Execute(*query, &dataset_, &cluster_, &s_seq);
  ASSERT_TRUE(r1.ok()) << r1.status();
  ASSERT_TRUE(r2.ok()) << r2.status();
  EXPECT_EQ(r1->ToSortedStrings(dataset_.dict()),
            r2->ToSortedStrings(dataset_.dict()));
  // Fig. 6: parallel evaluation saves one full MR cycle.
  EXPECT_EQ(s_par.workflow.NumCycles() + 1, s_seq.workflow.NumCycles());
}

TEST_F(EnginesTest, ExecThreadsDoNotChangeEngineResults) {
  // Full-stack determinism: every engine, run over a fresh dataset with a
  // serial cluster and an 8-thread cluster, must produce identical rows
  // and identical counters (dictionary interning inside aggregation
  // reduces stays in global key order, so even TermId assignment agrees).
  auto parsed = sparql::ParseQuery(kMg3Style);
  ASSERT_TRUE(parsed.ok());
  auto query = analytics::AnalyzeQuery(**parsed);
  ASSERT_TRUE(query.ok());

  Dataset ds1(BuildMiniGraph()), ds8(BuildMiniGraph());
  mr::ClusterConfig cfg;
  cfg.exec_split_bytes = 256;  // force several map tasks per job
  cfg.exec_threads = 1;
  mr::Cluster c1(cfg, &ds1.dfs());
  cfg.exec_threads = 8;
  mr::Cluster c8(cfg, &ds8.dfs());

  for (const auto& engine : MakeAllEngines()) {
    ExecStats s1, s8;
    auto r1 = engine->Execute(*query, &ds1, &c1, &s1);
    auto r8 = engine->Execute(*query, &ds8, &c8, &s8);
    ASSERT_TRUE(r1.ok()) << engine->name() << ": " << r1.status();
    ASSERT_TRUE(r8.ok()) << engine->name() << ": " << r8.status();
    EXPECT_EQ(r1->ToSortedStrings(ds1.dict()), r8->ToSortedStrings(ds8.dict()))
        << engine->name();
    EXPECT_EQ(s1.workflow.NumCycles(), s8.workflow.NumCycles())
        << engine->name();
    EXPECT_EQ(s1.workflow.TotalShuffleBytes(), s8.workflow.TotalShuffleBytes())
        << engine->name();
    EXPECT_EQ(s1.workflow.TotalOutputBytes(), s8.workflow.TotalOutputBytes())
        << engine->name();
    // Tolerant comparison: per-task sim seconds are summed in scheduling
    // order, which may differ across thread counts.
    EXPECT_TRUE(difftest::ApproxEqual(s1.workflow.TotalSimSeconds(),
                                      s8.workflow.TotalSimSeconds()))
        << engine->name() << ": " << s1.workflow.TotalSimSeconds() << " vs "
        << s8.workflow.TotalSimSeconds();
  }
}

TEST_F(EnginesTest, DfsCleanAfterRuns) {
  auto parsed = sparql::ParseQuery(kMg1Style);
  ASSERT_TRUE(parsed.ok());
  auto query = analytics::AnalyzeQuery(**parsed);
  ASSERT_TRUE(query.ok());
  for (const auto& engine : MakeAllEngines()) {
    ExecStats stats;
    ASSERT_TRUE(
        engine->Execute(*query, &dataset_, &cluster_, &stats).ok());
  }
  // Only the base layouts (vp:*, tg:*) remain.
  for (const std::string& f : dataset_.dfs().ListFiles()) {
    EXPECT_TRUE(f.rfind("vp:", 0) == 0 || f.rfind("tg:", 0) == 0)
        << "leftover temp file: " << f;
  }
}

}  // namespace
}  // namespace rapida::engine
