#include <gtest/gtest.h>

#include "mapreduce/cluster.h"
#include "mapreduce/dfs.h"
#include "util/string_util.h"

namespace rapida::mr {
namespace {

std::vector<Record> MakeRecords(std::initializer_list<
                                std::pair<const char*, const char*>> kvs) {
  std::vector<Record> out;
  for (const auto& [k, v] : kvs) out.push_back(Record{k, v});
  return out;
}

TEST(DfsTest, WriteOpenDelete) {
  Dfs dfs;
  ASSERT_TRUE(dfs.Write("f1", MakeRecords({{"a", "1"}, {"b", "2"}})).ok());
  auto file = dfs.Open("f1");
  ASSERT_TRUE(file.ok());
  EXPECT_EQ((*file)->records.size(), 2u);
  EXPECT_GT((*file)->stored_bytes, 0u);
  EXPECT_TRUE(dfs.Exists("f1"));
  ASSERT_TRUE(dfs.Delete("f1").ok());
  EXPECT_FALSE(dfs.Exists("f1"));
  EXPECT_EQ(dfs.TotalStoredBytes(), 0u);
  EXPECT_FALSE(dfs.Open("f1").ok());
  EXPECT_FALSE(dfs.Delete("f1").ok());
}

TEST(DfsTest, CompressionShrinksStoredBytes) {
  Dfs dfs;
  std::vector<Record> recs;
  for (int i = 0; i < 100; ++i) recs.push_back(Record{"key", "valuevalue"});
  FileOptions orc;
  orc.compressed = true;
  orc.compression_ratio = 0.2;
  ASSERT_TRUE(dfs.Write("plain", recs).ok());
  ASSERT_TRUE(dfs.Write("orc", recs, orc).ok());
  auto plain = dfs.Open("plain");
  auto compressed = dfs.Open("orc");
  EXPECT_EQ((*compressed)->logical_bytes, (*plain)->logical_bytes);
  EXPECT_LT((*compressed)->stored_bytes, (*plain)->stored_bytes / 4);
}

TEST(DfsTest, CapacityLimitReproducesDiskFull) {
  Dfs dfs;
  dfs.SetCapacityLimit(100);
  std::vector<Record> big(20, Record{"0123456789", "0123456789"});
  Status s = dfs.Write("big", big);
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.code(), Code::kResourceExhausted);
  // Small write still fits.
  EXPECT_TRUE(dfs.Write("small", MakeRecords({{"a", "b"}})).ok());
}

TEST(DfsTest, OverwriteReplacesAccounting) {
  Dfs dfs;
  ASSERT_TRUE(dfs.Write("f", MakeRecords({{"aaaa", "bbbb"}})).ok());
  uint64_t after_first = dfs.TotalStoredBytes();
  ASSERT_TRUE(dfs.Write("f", MakeRecords({{"a", "b"}})).ok());
  EXPECT_LT(dfs.TotalStoredBytes(), after_first);
  EXPECT_GT(dfs.LifetimeBytesWritten(), dfs.TotalStoredBytes());
}

class ClusterTest : public ::testing::Test {
 protected:
  ClusterTest() : cluster_(ClusterConfig{}, &dfs_) {}
  Dfs dfs_;
  Cluster cluster_;
};

TEST_F(ClusterTest, WordCount) {
  std::vector<Record> lines;
  lines.push_back(Record{"", "a b a"});
  lines.push_back(Record{"", "b a"});
  ASSERT_TRUE(dfs_.Write("input", lines).ok());

  JobConfig job;
  job.name = "wordcount";
  job.inputs = {"input"};
  job.output = "out";
  job.map = [](const Record& r, int, MapContext* ctx) {
    for (const std::string& w : SplitString(r.value, ' ')) {
      ctx->Emit(w, "1");
    }
  };
  job.reduce = [](const std::string& key,
                  const std::vector<std::string>& values, ReduceContext* ctx) {
    ctx->Emit(key, std::to_string(values.size()));
  };
  auto stats = cluster_.Run(job);
  ASSERT_TRUE(stats.ok()) << stats.status();
  EXPECT_FALSE(stats->map_only);
  EXPECT_EQ(stats->input_records, 2u);
  EXPECT_EQ(stats->map_output_records, 5u);
  EXPECT_EQ(stats->output_records, 2u);

  auto out = dfs_.Open("out");
  ASSERT_TRUE(out.ok());
  // Keys arrive in sorted order from the reduce phase.
  EXPECT_EQ((*out)->records[0].key, "a");
  EXPECT_EQ((*out)->records[0].value, "3");
  EXPECT_EQ((*out)->records[1].key, "b");
  EXPECT_EQ((*out)->records[1].value, "2");
}

TEST_F(ClusterTest, CombinerShrinksShuffle) {
  std::vector<Record> lines(50, Record{"", "x x x x"});
  ASSERT_TRUE(dfs_.Write("input", lines).ok());

  JobConfig job;
  job.name = "combined";
  job.inputs = {"input"};
  job.output = "out";
  job.map = [](const Record& r, int, MapContext* ctx) {
    for (const std::string& w : SplitString(r.value, ' ')) ctx->Emit(w, "1");
  };
  ReduceFn sum = [](const std::string& key,
                    const std::vector<std::string>& values,
                    ReduceContext* ctx) {
    int64_t total = 0;
    for (const std::string& v : values) {
      int64_t n = 0;
      ParseInt64(v, &n);
      total += n;
    }
    ctx->Emit(key, std::to_string(total));
  };
  job.reduce = sum;

  auto no_combine = cluster_.Run(job);
  ASSERT_TRUE(no_combine.ok());

  job.combine = sum;
  auto with_combine = cluster_.Run(job);
  ASSERT_TRUE(with_combine.ok());

  EXPECT_LT(with_combine->shuffle_records, no_combine->shuffle_records);
  // Same final answer either way.
  auto out = dfs_.Open("out");
  EXPECT_EQ((*out)->records[0].value, "200");
}

TEST_F(ClusterTest, MapOnlyJobSkipsShuffle) {
  ASSERT_TRUE(dfs_.Write("input", MakeRecords({{"k", "v"}})).ok());
  JobConfig job;
  job.name = "identity";
  job.inputs = {"input"};
  job.output = "out";
  job.map = [](const Record& r, int, MapContext* ctx) {
    ctx->Emit(r.key, r.value);
  };
  auto stats = cluster_.Run(job);
  ASSERT_TRUE(stats.ok());
  EXPECT_TRUE(stats->map_only);
  EXPECT_EQ(stats->shuffle_bytes, 0u);
  EXPECT_EQ(stats->num_reducers, 0);
  EXPECT_EQ((*dfs_.Open("out"))->records.size(), 1u);
}

TEST_F(ClusterTest, InputTagsDistinguishSides) {
  ASSERT_TRUE(dfs_.Write("left", MakeRecords({{"k1", "l"}})).ok());
  ASSERT_TRUE(dfs_.Write("right", MakeRecords({{"k1", "r"}})).ok());
  JobConfig job;
  job.name = "tagjoin";
  job.inputs = {"left", "right"};
  job.output = "out";
  job.map = [](const Record& r, int tag, MapContext* ctx) {
    ctx->Emit(r.key, (tag == 0 ? "L:" : "R:") + r.value);
  };
  job.reduce = [](const std::string& key,
                  const std::vector<std::string>& values, ReduceContext* ctx) {
    std::string joined;
    for (const std::string& v : values) joined += v;
    ctx->Emit(key, joined);
  };
  auto stats = cluster_.Run(job);
  ASSERT_TRUE(stats.ok());
  auto out = dfs_.Open("out");
  EXPECT_NE((*out)->records[0].value.find("L:l"), std::string::npos);
  EXPECT_NE((*out)->records[0].value.find("R:r"), std::string::npos);
}

TEST_F(ClusterTest, MapFinishFlushesPerMapperState) {
  std::vector<Record> input(10, Record{"k", "1"});
  ASSERT_TRUE(dfs_.Write("input", input).ok());
  JobConfig job;
  job.name = "stateful";
  job.inputs = {"input"};
  job.output = "out";
  auto counter = std::make_shared<int>(0);
  job.map = [counter](const Record&, int, MapContext*) { ++*counter; };
  job.map_finish = [counter](MapContext* ctx) {
    ctx->Emit("total", std::to_string(*counter));
    *counter = 0;
  };
  auto stats = cluster_.Run(job);
  ASSERT_TRUE(stats.ok());
  // One flush per mapper; with a small input there is a single mapper.
  auto out = dfs_.Open("out");
  ASSERT_EQ((*out)->records.size(), 1u);
  EXPECT_EQ((*out)->records[0].value, "10");
}

TEST_F(ClusterTest, MissingInputFails) {
  JobConfig job;
  job.name = "missing";
  job.inputs = {"nope"};
  job.output = "out";
  job.map = [](const Record&, int, MapContext*) {};
  EXPECT_FALSE(cluster_.Run(job).ok());
}

TEST_F(ClusterTest, CapacityFailurePropagates) {
  ASSERT_TRUE(dfs_.Write("input", MakeRecords({{"k", "v"}})).ok());
  dfs_.SetCapacityLimit(dfs_.TotalStoredBytes() + 1);
  JobConfig job;
  job.name = "blowup";
  job.inputs = {"input"};
  job.output = "out";
  job.map = [](const Record& r, int, MapContext* ctx) {
    for (int i = 0; i < 100; ++i) ctx->Emit(r.key, "xxxxxxxxxxxxxxxx");
  };
  auto stats = cluster_.Run(job);
  ASSERT_FALSE(stats.ok());
  EXPECT_EQ(stats.status().code(), Code::kResourceExhausted);
}

TEST_F(ClusterTest, CostModelShape) {
  ClusterConfig cfg;
  Cluster c(cfg, &dfs_);
  JobStats small;
  small.input_bytes = 1 << 20;
  small.num_mappers = 1;
  small.map_only = true;
  JobStats big = small;
  big.input_bytes = 200 << 20;
  big.num_mappers = 50;
  // More data costs more time even with more mappers (slots saturate).
  EXPECT_GT(c.EstimateSimSeconds(big), c.EstimateSimSeconds(small));

  // A shuffle-heavy job costs more than a map-only job of the same size.
  JobStats shuffled = big;
  shuffled.map_only = false;
  shuffled.shuffle_bytes = big.input_bytes;
  shuffled.num_reducers = 10;
  EXPECT_GT(c.EstimateSimSeconds(shuffled), c.EstimateSimSeconds(big));

  // More nodes make the same job faster.
  ClusterConfig big_cfg = cfg;
  big_cfg.num_nodes = 60;
  Cluster c60(big_cfg, &dfs_);
  EXPECT_LT(c60.EstimateSimSeconds(shuffled), c.EstimateSimSeconds(shuffled));
}

TEST_F(ClusterTest, HistoryAccumulates) {
  ASSERT_TRUE(dfs_.Write("input", MakeRecords({{"k", "v"}})).ok());
  JobConfig job;
  job.name = "j";
  job.inputs = {"input"};
  job.output = "out";
  job.map = [](const Record& r, int, MapContext* ctx) {
    ctx->Emit(r.key, r.value);
  };
  ASSERT_TRUE(cluster_.Run(job).ok());
  ASSERT_TRUE(cluster_.Run(job).ok());
  EXPECT_EQ(cluster_.history().size(), 2u);
  cluster_.ResetHistory();
  EXPECT_TRUE(cluster_.history().empty());
}

}  // namespace
}  // namespace rapida::mr
