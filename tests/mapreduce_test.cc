#include <gtest/gtest.h>

#include <algorithm>

#include "mapreduce/cluster.h"
#include "mapreduce/dfs.h"
#include "testing/normalize.h"
#include "util/string_util.h"

namespace rapida::mr {
namespace {

RecordBatch MakeBatch(std::initializer_list<
                      std::pair<const char*, const char*>> kvs) {
  RecordBatch out;
  for (const auto& [k, v] : kvs) out.Add(k, v);
  return out;
}

TEST(DfsTest, WriteOpenDelete) {
  Dfs dfs;
  ASSERT_TRUE(dfs.Write("f1", MakeBatch({{"a", "1"}, {"b", "2"}})).ok());
  auto file = dfs.Open("f1");
  ASSERT_TRUE(file.ok());
  EXPECT_EQ((*file)->records.size(), 2u);
  EXPECT_GT((*file)->stored_bytes, 0u);
  EXPECT_TRUE(dfs.Exists("f1"));
  ASSERT_TRUE(dfs.Delete("f1").ok());
  EXPECT_FALSE(dfs.Exists("f1"));
  EXPECT_EQ(dfs.TotalStoredBytes(), 0u);
  EXPECT_FALSE(dfs.Open("f1").ok());
  EXPECT_FALSE(dfs.Delete("f1").ok());
}

TEST(DfsTest, CompressionShrinksStoredBytes) {
  Dfs dfs;
  RecordBatch plain_recs, orc_recs;
  for (int i = 0; i < 100; ++i) {
    plain_recs.Add("key", "valuevalue");
    orc_recs.Add("key", "valuevalue");
  }
  FileOptions orc;
  orc.compressed = true;
  orc.compression_ratio = 0.2;
  ASSERT_TRUE(dfs.Write("plain", std::move(plain_recs)).ok());
  ASSERT_TRUE(dfs.Write("orc", std::move(orc_recs), orc).ok());
  auto plain = dfs.Open("plain");
  auto compressed = dfs.Open("orc");
  EXPECT_EQ((*compressed)->logical_bytes, (*plain)->logical_bytes);
  EXPECT_LT((*compressed)->stored_bytes, (*plain)->stored_bytes / 4);
}

TEST(DfsTest, CapacityLimitReproducesDiskFull) {
  Dfs dfs;
  dfs.SetCapacityLimit(100);
  RecordBatch big;
  for (int i = 0; i < 20; ++i) big.Add("0123456789", "0123456789");
  Status s = dfs.Write("big", std::move(big));
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.code(), Code::kResourceExhausted);
  // Small write still fits.
  EXPECT_TRUE(dfs.Write("small", MakeBatch({{"a", "b"}})).ok());
}

TEST(DfsTest, OverwriteReplacesAccounting) {
  Dfs dfs;
  ASSERT_TRUE(dfs.Write("f", MakeBatch({{"aaaa", "bbbb"}})).ok());
  uint64_t after_first = dfs.TotalStoredBytes();
  ASSERT_TRUE(dfs.Write("f", MakeBatch({{"a", "b"}})).ok());
  EXPECT_LT(dfs.TotalStoredBytes(), after_first);
  EXPECT_GT(dfs.LifetimeBytesWritten(), dfs.TotalStoredBytes());
}

class ClusterTest : public ::testing::Test {
 protected:
  ClusterTest() : cluster_(ClusterConfig{}, &dfs_) {}
  Dfs dfs_;
  Cluster cluster_;
};

TEST_F(ClusterTest, WordCount) {
  RecordBatch lines;
  lines.Add("", "a b a");
  lines.Add("", "b a");
  ASSERT_TRUE(dfs_.Write("input", std::move(lines)).ok());

  JobConfig job;
  job.name = "wordcount";
  job.inputs = {"input"};
  job.output = "out";
  job.map = [](const Record& r, int, MapContext* ctx) {
    for (const std::string& w : SplitString(r.value, ' ')) {
      ctx->Emit(w, "1");
    }
  };
  job.reduce = [](std::string_view key, const ValueSpan& values,
                  ReduceContext* ctx) {
    ctx->Emit(key, std::to_string(values.size()));
  };
  auto stats = cluster_.Run(job);
  ASSERT_TRUE(stats.ok()) << stats.status();
  EXPECT_FALSE(stats->map_only);
  EXPECT_EQ(stats->input_records, 2u);
  EXPECT_EQ(stats->map_output_records, 5u);
  EXPECT_EQ(stats->output_records, 2u);

  auto out = dfs_.Open("out");
  ASSERT_TRUE(out.ok());
  // Keys arrive in sorted order from the reduce phase.
  EXPECT_EQ((*out)->records[0].key, "a");
  EXPECT_EQ((*out)->records[0].value, "3");
  EXPECT_EQ((*out)->records[1].key, "b");
  EXPECT_EQ((*out)->records[1].value, "2");
}

TEST_F(ClusterTest, CombinerShrinksShuffle) {
  RecordBatch lines;
  for (int i = 0; i < 50; ++i) lines.Add("", "x x x x");
  ASSERT_TRUE(dfs_.Write("input", std::move(lines)).ok());

  JobConfig job;
  job.name = "combined";
  job.inputs = {"input"};
  job.output = "out";
  job.map = [](const Record& r, int, MapContext* ctx) {
    for (const std::string& w : SplitString(r.value, ' ')) ctx->Emit(w, "1");
  };
  ReduceFn sum = [](std::string_view key, const ValueSpan& values,
                    ReduceContext* ctx) {
    int64_t total = 0;
    for (std::string_view v : values) {
      int64_t n = 0;
      ParseInt64(v, &n);
      total += n;
    }
    ctx->Emit(key, std::to_string(total));
  };
  job.reduce = sum;

  auto no_combine = cluster_.Run(job);
  ASSERT_TRUE(no_combine.ok());

  job.combine = sum;
  auto with_combine = cluster_.Run(job);
  ASSERT_TRUE(with_combine.ok());

  EXPECT_LT(with_combine->shuffle_records, no_combine->shuffle_records);
  // Same final answer either way.
  auto out = dfs_.Open("out");
  EXPECT_EQ((*out)->records[0].value, "200");
}

TEST_F(ClusterTest, MapOnlyJobSkipsShuffle) {
  ASSERT_TRUE(dfs_.Write("input", MakeBatch({{"k", "v"}})).ok());
  JobConfig job;
  job.name = "identity";
  job.inputs = {"input"};
  job.output = "out";
  job.map = [](const Record& r, int, MapContext* ctx) {
    ctx->Emit(r.key, r.value);
  };
  auto stats = cluster_.Run(job);
  ASSERT_TRUE(stats.ok());
  EXPECT_TRUE(stats->map_only);
  EXPECT_EQ(stats->shuffle_bytes, 0u);
  EXPECT_EQ(stats->num_reducers, 0);
  EXPECT_EQ((*dfs_.Open("out"))->records.size(), 1u);
}

TEST_F(ClusterTest, InputTagsDistinguishSides) {
  ASSERT_TRUE(dfs_.Write("left", MakeBatch({{"k1", "l"}})).ok());
  ASSERT_TRUE(dfs_.Write("right", MakeBatch({{"k1", "r"}})).ok());
  JobConfig job;
  job.name = "tagjoin";
  job.inputs = {"left", "right"};
  job.output = "out";
  job.map = [](const Record& r, int tag, MapContext* ctx) {
    std::string tagged = tag == 0 ? "L:" : "R:";
    tagged += r.value;
    ctx->Emit(r.key, tagged);
  };
  job.reduce = [](std::string_view key, const ValueSpan& values,
                  ReduceContext* ctx) {
    std::string joined;
    for (std::string_view v : values) joined += v;
    ctx->Emit(key, joined);
  };
  auto stats = cluster_.Run(job);
  ASSERT_TRUE(stats.ok());
  auto out = dfs_.Open("out");
  EXPECT_NE((*out)->records[0].value.find("L:l"), std::string::npos);
  EXPECT_NE((*out)->records[0].value.find("R:r"), std::string::npos);
}

TEST_F(ClusterTest, MapFinishFlushesPerMapperState) {
  RecordBatch input;
  for (int i = 0; i < 10; ++i) input.Add("k", "1");
  ASSERT_TRUE(dfs_.Write("input", std::move(input)).ok());
  JobConfig job;
  job.name = "stateful";
  job.inputs = {"input"};
  job.output = "out";
  auto counter = std::make_shared<int>(0);
  job.map = [counter](const Record&, int, MapContext*) { ++*counter; };
  job.map_finish = [counter](MapContext* ctx) {
    ctx->Emit("total", std::to_string(*counter));
    *counter = 0;
  };
  auto stats = cluster_.Run(job);
  ASSERT_TRUE(stats.ok());
  // One flush per mapper; with a small input there is a single mapper.
  auto out = dfs_.Open("out");
  ASSERT_EQ((*out)->records.size(), 1u);
  EXPECT_EQ((*out)->records[0].value, "10");
}

TEST_F(ClusterTest, MissingInputFails) {
  JobConfig job;
  job.name = "missing";
  job.inputs = {"nope"};
  job.output = "out";
  job.map = [](const Record&, int, MapContext*) {};
  EXPECT_FALSE(cluster_.Run(job).ok());
}

TEST_F(ClusterTest, CapacityFailurePropagates) {
  ASSERT_TRUE(dfs_.Write("input", MakeBatch({{"k", "v"}})).ok());
  dfs_.SetCapacityLimit(dfs_.TotalStoredBytes() + 1);
  JobConfig job;
  job.name = "blowup";
  job.inputs = {"input"};
  job.output = "out";
  job.map = [](const Record& r, int, MapContext* ctx) {
    for (int i = 0; i < 100; ++i) ctx->Emit(r.key, "xxxxxxxxxxxxxxxx");
  };
  auto stats = cluster_.Run(job);
  ASSERT_FALSE(stats.ok());
  EXPECT_EQ(stats.status().code(), Code::kResourceExhausted);
}

TEST_F(ClusterTest, CostModelShape) {
  ClusterConfig cfg;
  Cluster c(cfg, &dfs_);
  JobStats small;
  small.input_bytes = 1 << 20;
  small.num_mappers = 1;
  small.map_only = true;
  JobStats big = small;
  big.input_bytes = 200 << 20;
  big.num_mappers = 50;
  // More data costs more time even with more mappers (slots saturate).
  EXPECT_GT(c.EstimateSimSeconds(big), c.EstimateSimSeconds(small));

  // A shuffle-heavy job costs more than a map-only job of the same size.
  JobStats shuffled = big;
  shuffled.map_only = false;
  shuffled.shuffle_bytes = big.input_bytes;
  shuffled.num_reducers = 10;
  EXPECT_GT(c.EstimateSimSeconds(shuffled), c.EstimateSimSeconds(big));

  // More nodes make the same job faster.
  ClusterConfig big_cfg = cfg;
  big_cfg.num_nodes = 60;
  Cluster c60(big_cfg, &dfs_);
  EXPECT_LT(c60.EstimateSimSeconds(shuffled), c.EstimateSimSeconds(shuffled));
}

// The multi-input combiner job used by the determinism tests: word counts
// tagged by input side, with enough records and a small split size that
// the parallel run gets many map tasks.
JobConfig DeterminismJob(ReduceFn* sum_out = nullptr) {
  JobConfig job;
  job.name = "determinism";
  job.inputs = {"left", "right"};
  job.output = "out";
  job.map = [](const Record& r, int tag, MapContext* ctx) {
    for (const std::string& w : SplitString(r.value, ' ')) {
      ctx->Emit((tag == 0 ? "L" : "R") + w, "1");
    }
  };
  ReduceFn sum = [](std::string_view key, const ValueSpan& values,
                    ReduceContext* ctx) {
    int64_t total = 0;
    for (std::string_view v : values) {
      int64_t n = 0;
      ParseInt64(v, &n);
      total += n;
    }
    ctx->Emit(key, std::to_string(total));
  };
  job.combine = sum;
  job.reduce = sum;
  if (sum_out != nullptr) *sum_out = sum;
  return job;
}

void WriteDeterminismInputs(Dfs* dfs) {
  RecordBatch left, right;
  for (int i = 0; i < 400; ++i) {
    std::string line;
    for (int w = 0; w < 6; ++w) {
      if (w > 0) line += ' ';
      line += "w" + std::to_string((i * 7 + w * 13) % 50);
    }
    (i % 2 == 0 ? left : right).Add("", line);
  }
  ASSERT_TRUE(dfs->Write("left", std::move(left)).ok());
  ASSERT_TRUE(dfs->Write("right", std::move(right)).ok());
}

void ExpectSameStats(const JobStats& a, const JobStats& b) {
  EXPECT_EQ(a.input_records, b.input_records);
  EXPECT_EQ(a.input_bytes, b.input_bytes);
  EXPECT_EQ(a.map_output_records, b.map_output_records);
  EXPECT_EQ(a.map_output_bytes, b.map_output_bytes);
  EXPECT_EQ(a.shuffle_records, b.shuffle_records);
  EXPECT_EQ(a.shuffle_bytes, b.shuffle_bytes);
  EXPECT_EQ(a.output_records, b.output_records);
  EXPECT_EQ(a.output_bytes, b.output_bytes);
  EXPECT_EQ(a.num_mappers, b.num_mappers);
  EXPECT_EQ(a.num_reducers, b.num_reducers);
  // Tolerant comparison: per-task sim seconds are summed in scheduling
  // order, which may differ across thread counts.
  EXPECT_TRUE(difftest::ApproxEqual(a.sim_seconds, b.sim_seconds))
      << a.sim_seconds << " vs " << b.sim_seconds;
}

// One thread vs eight must agree byte-for-byte: same output records in the
// same order, same counters, same simulated seconds. Exercised both for
// the serial (key-order-merge) reduce and the parallel-safe reduce path.
TEST(ParallelClusterTest, ThreadCountDoesNotChangeResults) {
  for (bool parallel_safe_reduce : {false, true}) {
    Dfs dfs1, dfs8;
    WriteDeterminismInputs(&dfs1);
    WriteDeterminismInputs(&dfs8);

    ClusterConfig cfg1;
    cfg1.exec_split_bytes = 256;  // many map tasks even on tiny inputs
    cfg1.exec_threads = 1;
    ClusterConfig cfg8 = cfg1;
    cfg8.exec_threads = 8;
    Cluster c1(cfg1, &dfs1);
    Cluster c8(cfg8, &dfs8);

    JobConfig job = DeterminismJob();
    job.reduce_parallel_safe = parallel_safe_reduce;

    auto s1 = c1.Run(job);
    auto s8 = c8.Run(job);
    ASSERT_TRUE(s1.ok()) << s1.status();
    ASSERT_TRUE(s8.ok()) << s8.status();
    EXPECT_GT(s1->num_mappers, 4);
    ExpectSameStats(*s1, *s8);
    EXPECT_TRUE(difftest::ApproxEqual(c1.EstimateSimSeconds(*s1),
                                    c8.EstimateSimSeconds(*s8)));

    auto out1 = dfs1.Open("out");
    auto out8 = dfs8.Open("out");
    ASSERT_TRUE(out1.ok() && out8.ok());
    ASSERT_EQ((*out1)->records.size(), (*out8)->records.size());
    // Byte-identical in original emission order...
    for (size_t i = 0; i < (*out1)->records.size(); ++i) {
      EXPECT_EQ((*out1)->records[i].key, (*out8)->records[i].key);
      EXPECT_EQ((*out1)->records[i].value, (*out8)->records[i].value);
    }
    // ...and (a fortiori) after a canonical sort.
    auto canon = [](const std::vector<Record>& recs) {
      std::vector<std::string> out;
      for (const Record& r : recs) {
        out.push_back(std::string(r.key) + "\t" + std::string(r.value));
      }
      std::sort(out.begin(), out.end());
      return out;
    };
    EXPECT_EQ(canon((*out1)->records), canon((*out8)->records));
  }
}

// The ValueSpan handed to reduce exposes the group through size(),
// operator[], and iteration, all views into the sorted partition.
TEST_F(ClusterTest, ValueSpanAccessorsAgree) {
  RecordBatch input;
  input.Add("k", "alpha");
  input.Add("k", "beta");
  input.Add("k", "gamma");
  ASSERT_TRUE(dfs_.Write("input", std::move(input)).ok());
  JobConfig job;
  job.name = "span";
  job.inputs = {"input"};
  job.output = "out";
  job.map = [](const Record& r, int, MapContext* ctx) {
    ctx->Emit(r.key, r.value);
  };
  job.reduce = [](std::string_view key, const ValueSpan& values,
                  ReduceContext* ctx) {
    ASSERT_FALSE(values.empty());
    std::string by_index, by_iter;
    for (size_t i = 0; i < values.size(); ++i) {
      by_index += values[i];
      by_index += '|';
    }
    for (std::string_view v : values) {
      by_iter += v;
      by_iter += '|';
    }
    EXPECT_EQ(by_index, by_iter);
    ctx->Emit(key, by_iter);
  };
  auto stats = cluster_.Run(job);
  ASSERT_TRUE(stats.ok()) << stats.status();
  auto out = dfs_.Open("out");
  // stable_sort keeps a group's values in arrival order.
  EXPECT_EQ((*out)->records[0].value, "alpha|beta|gamma|");
}

// The full reduce-mode matrix: combine feeding either the serial
// k-way-merge reduce or the parallel-safe reduce, at 1/4/8 execution
// threads, must produce byte-identical output files and identical
// counters in every cell.
TEST(ParallelClusterTest, ValueSpanReduceModesAreByteIdentical) {
  struct RunResult {
    JobStats stats;
    std::vector<std::string> lines;
  };
  std::vector<RunResult> runs;
  for (bool parallel_safe_reduce : {false, true}) {
    for (int threads : {1, 4, 8}) {
      Dfs dfs;
      WriteDeterminismInputs(&dfs);
      ClusterConfig cfg;
      cfg.exec_split_bytes = 256;
      cfg.exec_threads = threads;
      Cluster cluster(cfg, &dfs);
      JobConfig job = DeterminismJob();  // combine == reduce == sum
      job.reduce_parallel_safe = parallel_safe_reduce;
      auto stats = cluster.Run(job);
      ASSERT_TRUE(stats.ok()) << stats.status();
      auto out = dfs.Open("out");
      ASSERT_TRUE(out.ok());
      RunResult run;
      run.stats = *stats;
      for (const Record& r : (*out)->records) {
        run.lines.push_back(std::string(r.key) + "\t" +
                            std::string(r.value));
      }
      runs.push_back(std::move(run));
    }
  }
  for (size_t i = 1; i < runs.size(); ++i) {
    ExpectSameStats(runs[0].stats, runs[i].stats);
    EXPECT_EQ(runs[0].lines, runs[i].lines)
        << "reduce mode/thread cell " << i
        << " diverged from the serial single-thread baseline";
  }
}

// Map-only jobs concatenate task outputs in split order regardless of the
// execution interleaving.
TEST(ParallelClusterTest, MapOnlyOutputOrderIsSplitOrder) {
  Dfs dfs1, dfs8;
  WriteDeterminismInputs(&dfs1);
  WriteDeterminismInputs(&dfs8);
  ClusterConfig cfg;
  cfg.exec_split_bytes = 256;
  cfg.exec_threads = 1;
  Cluster c1(cfg, &dfs1);
  cfg.exec_threads = 8;
  Cluster c8(cfg, &dfs8);

  JobConfig job;
  job.name = "identity";
  job.inputs = {"left", "right"};
  job.output = "out";
  job.map = [](const Record& r, int tag, MapContext* ctx) {
    ctx->Emit(std::to_string(tag), r.value);
  };
  auto s1 = c1.Run(job);
  auto s8 = c8.Run(job);
  ASSERT_TRUE(s1.ok() && s8.ok());
  ExpectSameStats(*s1, *s8);
  auto out1 = dfs1.Open("out");
  auto out8 = dfs8.Open("out");
  ASSERT_EQ((*out1)->records.size(), (*out8)->records.size());
  for (size_t i = 0; i < (*out1)->records.size(); ++i) {
    EXPECT_EQ((*out1)->records[i].value, (*out8)->records[i].value);
  }
}

// Per-task state: a stateful mapper that counts records through
// MapContext::TaskState and flushes in map_finish must see every record
// exactly once across concurrent map tasks.
TEST(ParallelClusterTest, TaskStateIsPerMapTask) {
  Dfs dfs;
  RecordBatch input;
  for (int i = 0; i < 300; ++i) input.Add("k", "1");
  ASSERT_TRUE(dfs.Write("input", std::move(input)).ok());
  ClusterConfig cfg;
  cfg.exec_split_bytes = 128;
  cfg.exec_threads = 8;
  Cluster cluster(cfg, &dfs);

  JobConfig job;
  job.name = "stateful";
  job.inputs = {"input"};
  job.output = "out";
  job.map = [](const Record&, int, MapContext* ctx) {
    ++*ctx->TaskState<int>();
  };
  job.map_finish = [](MapContext* ctx) {
    ctx->Emit("total", std::to_string(*ctx->TaskState<int>()));
  };
  job.reduce = [](std::string_view key, const ValueSpan& values,
                  ReduceContext* ctx) {
    int64_t total = 0;
    for (std::string_view v : values) {
      int64_t n = 0;
      ParseInt64(v, &n);
      total += n;
    }
    ctx->Emit(key, std::to_string(total));
  };
  auto stats = cluster.Run(job);
  ASSERT_TRUE(stats.ok()) << stats.status();
  EXPECT_GT(stats->num_mappers, 1);
  auto out = dfs.Open("out");
  ASSERT_EQ((*out)->records.size(), 1u);
  EXPECT_EQ((*out)->records[0].value, "300");
}

// wall_seconds is recorded for every job.
TEST(ParallelClusterTest, WallSecondsRecorded) {
  Dfs dfs;
  ASSERT_TRUE(dfs.Write("input", MakeBatch({{"k", "v"}})).ok());
  Cluster cluster(ClusterConfig{}, &dfs);
  JobConfig job;
  job.name = "j";
  job.inputs = {"input"};
  job.map = [](const Record& r, int, MapContext* ctx) {
    ctx->Emit(r.key, r.value);
  };
  auto stats = cluster.Run(job);
  ASSERT_TRUE(stats.ok());
  EXPECT_GE(stats->wall_seconds, 0.0);
  EXPECT_LT(stats->wall_seconds, 60.0);
}

TEST_F(ClusterTest, HistoryAccumulates) {
  ASSERT_TRUE(dfs_.Write("input", MakeBatch({{"k", "v"}})).ok());
  JobConfig job;
  job.name = "j";
  job.inputs = {"input"};
  job.output = "out";
  job.map = [](const Record& r, int, MapContext* ctx) {
    ctx->Emit(r.key, r.value);
  };
  ASSERT_TRUE(cluster_.Run(job).ok());
  ASSERT_TRUE(cluster_.Run(job).ok());
  EXPECT_EQ(cluster_.history().size(), 2u);
  cluster_.ResetHistory();
  EXPECT_TRUE(cluster_.history().empty());
}

}  // namespace
}  // namespace rapida::mr
