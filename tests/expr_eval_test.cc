#include "sparql/expr_eval.h"

#include <gtest/gtest.h>

#include "sparql/parser.h"

namespace rapida::sparql {
namespace {

/// Parses a FILTER expression by wrapping it in a dummy query.
ExprPtr ParseExpr(const std::string& expr_text) {
  std::string q = "SELECT ?x { ?x <p> ?y . FILTER(" + expr_text + ") }";
  auto query = ParseQuery(q);
  EXPECT_TRUE(query.ok()) << query.status();
  return std::move((*query)->where.filters[0]);
}

class ExprEvalTest : public ::testing::Test {
 protected:
  rdf::TermId Bind(const std::string& var, rdf::TermId id) {
    bindings_[var] = id;
    return id;
  }
  EvalValue Eval(const std::string& expr_text) {
    ExprPtr e = ParseExpr(expr_text);
    auto resolve = [this](const std::string& v) {
      auto it = bindings_.find(v);
      return it == bindings_.end() ? rdf::kInvalidTermId : it->second;
    };
    return EvaluateExpr(*e, resolve, dict_);
  }
  bool EvalBool(const std::string& expr_text) {
    return EffectiveBool(Eval(expr_text));
  }

  rdf::Dictionary dict_;
  std::map<std::string, rdf::TermId> bindings_;
};

TEST_F(ExprEvalTest, NumericComparisons) {
  Bind("x", dict_.InternInt(10));
  EXPECT_TRUE(EvalBool("?x > 5"));
  EXPECT_FALSE(EvalBool("?x > 15"));
  EXPECT_TRUE(EvalBool("?x >= 10"));
  EXPECT_TRUE(EvalBool("?x <= 10"));
  EXPECT_TRUE(EvalBool("?x = 10"));
  EXPECT_TRUE(EvalBool("?x != 11"));
  EXPECT_FALSE(EvalBool("?x < 10"));
}

TEST_F(ExprEvalTest, NumericLiteralsCompareNumericallyAcrossForms) {
  Bind("x", dict_.InternLiteral("10"));   // plain literal "10"
  EXPECT_TRUE(EvalBool("?x = 10.0"));
  EXPECT_TRUE(EvalBool("?x > 9.5"));
}

TEST_F(ExprEvalTest, StringEquality) {
  Bind("x", dict_.InternLiteral("News"));
  EXPECT_TRUE(EvalBool("?x = \"News\""));
  EXPECT_FALSE(EvalBool("?x = \"Journal Article\""));
  EXPECT_TRUE(EvalBool("?x != \"Journal Article\""));
}

TEST_F(ExprEvalTest, UnboundVariableIsError) {
  EvalValue v = Eval("?missing > 5");
  EXPECT_TRUE(v.is_error());
  EXPECT_FALSE(EffectiveBool(v));
}

TEST_F(ExprEvalTest, BoundFunction) {
  Bind("x", dict_.InternLiteral("v"));
  EXPECT_TRUE(EvalBool("bound(?x)"));
  EXPECT_FALSE(EvalBool("bound(?nope)"));
  EXPECT_TRUE(EvalBool("!bound(?nope)"));
}

TEST_F(ExprEvalTest, ThreeValuedAndOr) {
  Bind("x", dict_.InternInt(1));
  // error && false = false; error || true = true; error && true = error.
  EXPECT_FALSE(EvalBool("?missing > 0 && ?x > 5"));   // err && false = false
  EXPECT_TRUE(EvalBool("?missing > 0 || ?x = 1"));    // err || true = true
  EXPECT_FALSE(EvalBool("?missing > 0 && ?x = 1"));   // err && true = error->false
  EXPECT_FALSE(EvalBool("?missing > 0 || ?x > 5"));   // err || false = error->false
}

TEST_F(ExprEvalTest, Arithmetic) {
  Bind("x", dict_.InternInt(10));
  Bind("y", dict_.InternInt(4));
  EvalValue v = Eval("?x + ?y = 14");
  EXPECT_TRUE(EffectiveBool(v));
  EXPECT_TRUE(EvalBool("?x - ?y = 6"));
  EXPECT_TRUE(EvalBool("?x * ?y = 40"));
  EXPECT_TRUE(EvalBool("?x / ?y = 2.5"));
}

TEST_F(ExprEvalTest, DivisionByZeroIsError) {
  Bind("x", dict_.InternInt(10));
  Bind("z", dict_.InternInt(0));
  EXPECT_TRUE(Eval("?x / ?z = 1").is_error());
}

TEST_F(ExprEvalTest, ArithmeticOnNonNumericIsError) {
  Bind("x", dict_.InternLiteral("abc"));
  EXPECT_TRUE(Eval("?x + 1 > 0").is_error());
}

TEST_F(ExprEvalTest, RegexCaseInsensitive) {
  Bind("x", dict_.InternLiteral("MAPK signaling pathway - human"));
  EXPECT_TRUE(EvalBool("regex(?x, \"mapk signaling\", \"i\")"));
  EXPECT_FALSE(EvalBool("regex(?x, \"mapk signaling\")"));  // case-sensitive
  EXPECT_TRUE(EvalBool("regex(?x, \"MAPK\")"));
}

TEST_F(ExprEvalTest, RegexOnIriUsesText) {
  Bind("x", dict_.InternIri("http://x/hepatomegaly"));
  EXPECT_TRUE(EvalBool("regex(?x, \"hepatomegaly\", \"i\")"));
}

TEST_F(ExprEvalTest, IriEqualityIsExact) {
  Bind("x", dict_.InternIri("http://x/a"));
  EXPECT_TRUE(EvalBool("?x = <http://x/a>"));
  EXPECT_FALSE(EvalBool("?x = <http://x/b>"));
}

TEST_F(ExprEvalTest, IriNeverEqualsLiteral) {
  Bind("x", dict_.InternIri("v"));
  EXPECT_FALSE(EvalBool("?x = \"v\""));
  EXPECT_TRUE(EvalBool("?x != \"v\""));
}

TEST_F(ExprEvalTest, OrderingIncomparableIsError) {
  Bind("x", dict_.InternIri("v"));
  EXPECT_TRUE(Eval("?x < 5").is_error());
}

TEST_F(ExprEvalTest, ToNumberHelper) {
  rdf::TermId n = dict_.InternLiteral("2.5");
  EXPECT_DOUBLE_EQ(*ToNumber(EvalValue::TermRef(n), dict_), 2.5);
  EXPECT_DOUBLE_EQ(*ToNumber(EvalValue::Number(7), dict_), 7.0);
  EXPECT_FALSE(ToNumber(EvalValue::Bool(true), dict_).has_value());
  rdf::TermId s = dict_.InternLiteral("abc");
  EXPECT_FALSE(ToNumber(EvalValue::TermRef(s), dict_).has_value());
}

}  // namespace
}  // namespace rapida::sparql
