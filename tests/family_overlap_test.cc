#include <gtest/gtest.h>

#include "analytics/analytical_query.h"
#include "analytics/reference_evaluator.h"
#include "engines/engines.h"
#include "ntga/overlap.h"
#include "sparql/parser.h"
#include "workload/bsbm.h"
#include "workload/catalog.h"

namespace rapida::ntga {
namespace {

StarGraph Decompose(const std::string& bgp_query) {
  auto q = sparql::ParseQuery(bgp_query);
  EXPECT_TRUE(q.ok()) << q.status();
  auto sg = DecomposeToStars((*q)->where.triples);
  EXPECT_TRUE(sg.ok()) << sg.status();
  return sg.ok() ? *sg : StarGraph{};
}

// Three rollup-related patterns over the same product/offer core.
StarGraph LevelFC() {  // (feature, country) level — has productFeature
  return Decompose(
      "SELECT ?f { ?p a <PT1> ; <label> ?l ; <feature> ?f . "
      "?o <product> ?p ; <price> ?pr ; <vendor> ?v . ?v <country> ?c . }");
}
StarGraph LevelC() {  // (country) level
  return Decompose(
      "SELECT ?c { ?p1 a <PT1> ; <label> ?l1 . "
      "?o1 <product> ?p1 ; <price> ?pr1 ; <vendor> ?v1 . "
      "?v1 <country> ?c . }");
}
StarGraph LevelAll() {  // () level
  return Decompose(
      "SELECT ?pr2 { ?p2 a <PT1> ; <label> ?l2 . "
      "?o2 <product> ?p2 ; <price> ?pr2 ; <vendor> ?v2 . "
      "?v2 <country> ?c2 . }");
}

TEST(FamilyOverlapTest, ThreePatternRollupOverlaps) {
  StarGraph a = LevelFC(), b = LevelC(), c = LevelAll();
  FamilyOverlapResult r = FindOverlapFamily({&a, &b, &c});
  ASSERT_TRUE(r.overlaps) << r.explanation;
  ASSERT_EQ(r.mapping.size(), 3u);
  // The anchor maps identically.
  EXPECT_EQ(r.mapping[0], (std::vector<int>{0, 1, 2}));
}

TEST(FamilyOverlapTest, CompositeHasSharedPrimaryAndOneSecondary) {
  StarGraph a = LevelFC(), b = LevelC(), c = LevelAll();
  FamilyOverlapResult r = FindOverlapFamily({&a, &b, &c});
  ASSERT_TRUE(r.overlaps);
  auto comp = BuildCompositeFamily({&a, &b, &c}, r);
  ASSERT_TRUE(comp.ok()) << comp.status();
  ASSERT_EQ(comp->stars.size(), 3u);
  // Product star: {type, label} primary; feature secondary (pattern 0
  // only).
  EXPECT_EQ(comp->stars[0].primary.size(), 2u);
  ASSERT_EQ(comp->stars[0].secondary.size(), 1u);
  EXPECT_EQ(comp->stars[0].secondary.begin()->property, "feature");
  // α: only pattern 0 requires the feature.
  EXPECT_EQ(comp->pattern_secondary[0].at(0).size(), 1u);
  EXPECT_TRUE(comp->pattern_secondary[1].empty());
  EXPECT_TRUE(comp->pattern_secondary[2].empty());
  // Var maps: each pattern's price var lands on the canonical ?pr.
  EXPECT_EQ(comp->var_map[0].at("pr"), "pr");
  EXPECT_EQ(comp->var_map[1].at("pr1"), "pr");
  EXPECT_EQ(comp->var_map[2].at("pr2"), "pr");
  // Country vars unify too (pattern 2 calls it ?c2).
  EXPECT_EQ(comp->var_map[2].at("c2"), "c");
}

TEST(FamilyOverlapTest, RejectsFamilyWithOneNonOverlappingMember) {
  StarGraph a = LevelFC(), b = LevelC();
  StarGraph alien = Decompose(
      "SELECT ?x { ?x <totally> ?y ; <different> ?z . "
      "?w <unrelated> ?x . }");
  FamilyOverlapResult r = FindOverlapFamily({&a, &b, &alien});
  EXPECT_FALSE(r.overlaps);
  EXPECT_NE(r.explanation.find("2"), std::string::npos);
}

TEST(FamilyOverlapTest, SecondaryPropSharedByTwoOfThreePatterns) {
  // 'feature' appears in patterns 0 and 1 (not 2): it is secondary (not
  // in the full intersection), required by both 0 and 1, and their
  // variables unify onto one canonical name.
  StarGraph a = Decompose(
      "SELECT ?f { ?p a <PT1> ; <feature> ?f . ?o <product> ?p . }");
  StarGraph b = Decompose(
      "SELECT ?g { ?p1 a <PT1> ; <feature> ?g . ?o1 <product> ?p1 . }");
  StarGraph c = Decompose(
      "SELECT ?p2 { ?p2 a <PT1> . ?o2 <product> ?p2 . }");
  FamilyOverlapResult r = FindOverlapFamily({&a, &b, &c});
  ASSERT_TRUE(r.overlaps) << r.explanation;
  auto comp = BuildCompositeFamily({&a, &b, &c}, r);
  ASSERT_TRUE(comp.ok());
  PropKey feature{"feature", ""};
  EXPECT_TRUE(comp->stars[0].secondary.count(feature) > 0);
  EXPECT_EQ(comp->pattern_secondary[0].at(0).count(feature), 1u);
  EXPECT_EQ(comp->pattern_secondary[1].at(0).count(feature), 1u);
  EXPECT_TRUE(comp->pattern_secondary[2].empty());
  EXPECT_EQ(comp->var_map[1].at("g"), comp->var_map[0].at("f"));
}

TEST(FamilyOverlapTest, TooFewPatternsRejected) {
  StarGraph a = LevelFC();
  FamilyOverlapResult r = FindOverlapFamily({&a});
  EXPECT_FALSE(r.overlaps);
}

// End-to-end: the R1 rollup query runs as ONE composite on
// RAPIDAnalytics: 2 α-join cycles (3 composite stars) + 1 parallel
// Agg-Join for all THREE groupings + 1 map-only final join = 4 cycles.
TEST(FamilyOverlapTest, RollupQueryRunsInFourCycles) {
  workload::BsbmConfig cfg;
  cfg.num_products = 200;
  engine::Dataset dataset(workload::GenerateBsbm(cfg));
  mr::Cluster cluster(mr::ClusterConfig{}, &dataset.dfs());

  auto cq = workload::FindQuery("R1");
  ASSERT_TRUE(cq.ok());
  auto parsed = sparql::ParseQuery((*cq)->sparql);
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  auto query = analytics::AnalyzeQuery(**parsed);
  ASSERT_TRUE(query.ok()) << query.status();
  ASSERT_EQ(query->groupings.size(), 3u);

  analytics::ReferenceEvaluator ref(&dataset.graph());
  auto expected = ref.Evaluate(**parsed);
  ASSERT_TRUE(expected.ok());

  engine::RapidAnalyticsEngine ra;
  engine::ExecStats ra_stats;
  auto ra_result = ra.Execute(*query, &dataset, &cluster, &ra_stats);
  ASSERT_TRUE(ra_result.ok()) << ra_result.status();
  EXPECT_EQ(ra_result->ToSortedStrings(dataset.dict()),
            expected->ToSortedStrings(dataset.dict()));
  EXPECT_EQ(ra_stats.workflow.NumCycles(), 4);

  // The sequential NTGA baseline needs 3 cycles per grouping + final.
  engine::RapidPlusEngine rp;
  engine::ExecStats rp_stats;
  auto rp_result = rp.Execute(*query, &dataset, &cluster, &rp_stats);
  ASSERT_TRUE(rp_result.ok());
  EXPECT_EQ(rp_stats.workflow.NumCycles(), 10);
}

}  // namespace
}  // namespace rapida::ntga
