// rapida_serve — the concurrent query service over the workload catalog.
//
// Replays catalog queries from many concurrent sessions through
// service::QueryService (admission control, fair-share scheduling, plan /
// result caching, shared-scan batching) and reports service metrics.
//
// Usage:
//   rapida_serve                 bench mode: replays the catalog trace at
//                                1/8/32 sessions with caches on and off,
//                                runs the batched-vs-serial burst
//                                experiment, and appends one JSON object
//                                to BENCH_service.json
//   rapida_serve --smoke         correctness mode for scripts/check.sh:
//                                serves every catalog query cold, hot and
//                                from 32 concurrent sessions, and
//                                cross-checks every result byte-for-byte
//                                against direct RAPIDAnalytics execution;
//                                exit 1 on any mismatch
//   --store DIR                  persistent materialization store: every
//                                executed query publishes its result as a
//                                content-addressed artifact under DIR, and
//                                later queries (same plan, same dataset
//                                content) are answered from disk with zero
//                                MapReduce jobs — across process restarts.
//                                In smoke mode this also runs a simulated
//                                warm restart (fresh datasets, second
//                                service over the same DIR) plus an
//                                incremental-view-maintenance check
//                                (mutate, then patched vs recomputed)
//   --expect-warm                with --smoke --store: require the cold
//                                pass itself to be served from the store
//                                (>= 29 of the catalog) — the cross-
//                                process warm-restart gate
//   --bench-store                mutate-heavy replay over the patchable
//                                bsbm queries, incremental maintenance vs
//                                full recompute; appends to BENCH_store.json
//   --passes N                   trace passes per session in bench mode
//   --shards N                   with --smoke: run the service's data
//                                plane across N shards (results must
//                                still match the unsharded oracle)
//   --scheme S                   placement scheme for --shards:
//                                hash-subject (default) or locality
//   --out FILE                   bench output (default BENCH_service.json)
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "analytics/analytical_query.h"
#include "engines/rapid_analytics.h"
#include "rdf/term.h"
#include "service/query_service.h"
#include "sparql/parser.h"
#include "storage/ivm.h"
#include "workload/bsbm.h"
#include "workload/catalog.h"
#include "workload/chem2bio.h"
#include "workload/pubmed.h"

namespace {

using rapida::engine::Dataset;
using rapida::service::QueryService;
using rapida::service::QuerySpec;
using rapida::service::Response;
using rapida::service::ServiceOptions;

struct Datasets {
  std::map<std::string, std::unique_ptr<Dataset>> by_name;
};

Datasets BuildDatasets() {
  Datasets d;
  d.by_name["bsbm"] = std::make_unique<Dataset>(
      rapida::workload::GenerateBsbm(rapida::workload::BsbmConfig{}));
  d.by_name["chem"] = std::make_unique<Dataset>(
      rapida::workload::GenerateChem2Bio(rapida::workload::ChemConfig{}));
  d.by_name["pubmed"] = std::make_unique<Dataset>(
      rapida::workload::GeneratePubmed(rapida::workload::PubmedConfig{}));
  return d;
}

ServiceOptions BaseOptions(int workers, bool caches, bool batching) {
  ServiceOptions opts;
  opts.workers = workers;
  opts.max_queue_depth = 4096;
  opts.enable_plan_cache = caches;
  opts.enable_result_cache = caches;
  opts.enable_batching = batching;
  opts.batch_window_ms = batching ? 2.0 : 0.0;
  return opts;
}

void RegisterAll(QueryService* svc, Datasets* data) {
  for (auto& [name, ds] : data->by_name) svc->RegisterDataset(name, ds.get());
}

/// Direct (service-free) execution on a private cluster — the oracle the
/// smoke mode compares against.
rapida::StatusOr<std::vector<std::string>> DirectSortedResult(
    const std::string& sparql, Dataset* dataset) {
  RAPIDA_ASSIGN_OR_RETURN(std::unique_ptr<rapida::sparql::SelectQuery> parsed,
                          rapida::sparql::ParseQuery(sparql));
  RAPIDA_ASSIGN_OR_RETURN(rapida::analytics::AnalyticalQuery query,
                          rapida::analytics::AnalyzeQuery(*parsed));
  rapida::mr::Cluster cluster(rapida::mr::ClusterConfig{}, &dataset->dfs());
  rapida::engine::RapidAnalyticsEngine engine;
  RAPIDA_ASSIGN_OR_RETURN(
      rapida::analytics::BindingTable table,
      engine.Execute(query, dataset, &cluster, nullptr));
  return table.ToSortedStrings(dataset->dict());
}

/// A batch of fresh BSBM offers (all-new subjects, so every triple is an
/// insert) — the mutation workload for the IVM paths. Deterministic in
/// `round` so replays are reproducible.
std::vector<Dataset::TripleUpdate> NewOffers(int round, int count) {
  using rapida::rdf::Term;
  const std::string ns(rapida::workload::kBsbmNs);
  std::vector<Dataset::TripleUpdate> ups;
  for (int i = 0; i < count; ++i) {
    std::string offer =
        ns + "OfferNew" + std::to_string(round) + "x" + std::to_string(i);
    int64_t k = static_cast<int64_t>(round) * 97 + i * 13;
    ups.push_back({Term::Iri(offer), Term::Iri(ns + "product"),
                   Term::Iri(ns + "Product" + std::to_string(1 + k % 1000))});
    ups.push_back({Term::Iri(offer), Term::Iri(ns + "price"),
                   Term::Literal(std::to_string(50 + (k * 17) % 9950),
                                 rapida::rdf::kXsdInteger)});
    ups.push_back({Term::Iri(offer), Term::Iri(ns + "vendor"),
                   Term::Iri(ns + "Vendor" + std::to_string(1 + k % 25))});
  }
  return ups;
}

/// Simulated restart: fresh datasets (fresh dictionaries — no TermId from
/// the publishing service survives) and a new service over the same store
/// directory. Every catalog query must come back byte-identical to the
/// oracle, with at least 29 of the 31 served straight from disk at zero
/// simulated MapReduce cost.
int WarmRestartCheck(
    const std::string& store_dir,
    const std::map<std::string, std::vector<std::string>>& expected) {
  Datasets data = BuildDatasets();
  ServiceOptions opts =
      BaseOptions(/*workers=*/4, /*caches=*/true, /*batching=*/true);
  opts.store_dir = store_dir;
  QueryService svc(opts);
  RegisterAll(&svc, &data);
  int session = svc.OpenSession("warm");

  int failures = 0;
  uint64_t store_hits = 0;
  for (const auto& q : rapida::workload::Catalog()) {
    Response r = svc.Execute(session, QuerySpec{q.sparql, q.dataset});
    if (!r.result.ok() ||
        r.result->ToSortedStrings(data.by_name[q.dataset]->dict()) !=
            expected.at(q.id)) {
      std::fprintf(stderr, "FAIL %s (warm): differs from direct\n",
                   q.id.c_str());
      failures++;
      continue;
    }
    if (r.store_hit) {
      store_hits++;
      if (r.sim_seconds != 0 || r.sched_sim_seconds != 0) {
        std::fprintf(stderr, "FAIL %s (warm): store hit cost %.3f sim s\n",
                     q.id.c_str(), r.sim_seconds);
        failures++;
      }
    }
  }
  size_t total = rapida::workload::Catalog().size();
  std::printf("warm restart: %llu/%zu catalog queries served from store\n",
              static_cast<unsigned long long>(store_hits), total);
  if (store_hits + 2 < total) {
    std::fprintf(stderr, "FAIL: only %llu/%zu warm queries hit the store\n",
                 static_cast<unsigned long long>(store_hits), total);
    failures++;
  }
  return failures;
}

/// Incremental-maintenance check in a private throwaway store: seed the
/// bsbm catalog, mutate, then require (a) at least one artifact was
/// patched rather than recomputed and (b) every post-mutation answer —
/// patched or not — matches a direct recompute on the mutated data.
int IvmMutateCheck(const std::string& scratch_dir) {
  namespace fs = std::filesystem;
  std::error_code ec;
  fs::remove_all(scratch_dir, ec);

  Datasets data = BuildDatasets();
  ServiceOptions opts =
      BaseOptions(/*workers=*/4, /*caches=*/true, /*batching=*/true);
  opts.store_dir = scratch_dir;
  QueryService svc(opts);
  RegisterAll(&svc, &data);
  int session = svc.OpenSession("ivm");

  int failures = 0;
  std::vector<const rapida::workload::CatalogQuery*> bsbm;
  for (const auto& q : rapida::workload::Catalog()) {
    if (q.dataset != "bsbm") continue;
    bsbm.push_back(&q);
    Response r = svc.Execute(session, QuerySpec{q.sparql, q.dataset});
    if (!r.result.ok()) {
      std::fprintf(stderr, "FAIL %s (ivm seed): %s\n", q.id.c_str(),
                   r.result.status().ToString().c_str());
      failures++;
    }
  }

  rapida::Status mutated = svc.Mutate("bsbm", NewOffers(/*round=*/0, 5));
  if (!mutated.ok()) {
    std::fprintf(stderr, "FAIL: mutate: %s\n", mutated.ToString().c_str());
    failures++;
  }
  if (svc.metrics().store_patched() == 0) {
    std::fprintf(stderr, "FAIL: mutation patched no artifact "
                         "(expected incremental maintenance)\n");
    failures++;
  }

  Dataset* ds = data.by_name["bsbm"].get();
  for (const auto* q : bsbm) {
    auto direct = DirectSortedResult(q->sparql, ds);
    Response r = svc.Execute(session, QuerySpec{q->sparql, q->dataset});
    if (!direct.ok() || !r.result.ok() ||
        r.result->ToSortedStrings(ds->dict()) != *direct) {
      std::fprintf(stderr, "FAIL %s (ivm): post-mutation result differs "
                           "from direct recompute\n",
                   q->id.c_str());
      failures++;
    }
  }
  std::printf(
      "ivm: %llu artifacts patched, %llu recomputed after mutation\n",
      static_cast<unsigned long long>(svc.metrics().store_patched()),
      static_cast<unsigned long long>(svc.metrics().store_recomputes()));
  fs::remove_all(scratch_dir, ec);
  return failures;
}

int Smoke(const std::string& store_dir, bool expect_warm, int shards,
          rapida::mr::ShardingScheme scheme) {
  Datasets data = BuildDatasets();

  // Oracle results, computed before the service touches anything.
  std::map<std::string, std::vector<std::string>> expected;
  for (const auto& q : rapida::workload::Catalog()) {
    auto direct = DirectSortedResult(q.sparql, data.by_name[q.dataset].get());
    if (!direct.ok()) {
      std::fprintf(stderr, "direct %s: %s\n", q.id.c_str(),
                   direct.status().ToString().c_str());
      return 1;
    }
    expected[q.id] = *direct;
  }

  ServiceOptions smoke_opts = BaseOptions(/*workers=*/4, /*caches=*/true,
                                          /*batching=*/true);
  smoke_opts.store_dir = store_dir;
  // Sharded smoke: the service runs its data plane across N shards; every
  // result must still match the unsharded direct oracle byte-for-byte.
  smoke_opts.cluster.num_shards = shards;
  smoke_opts.cluster.sharding = scheme;
  QueryService svc(smoke_opts);
  RegisterAll(&svc, &data);
  int session = svc.OpenSession("smoke");

  int failures = 0;
  auto check = [&](const rapida::workload::CatalogQuery& q, Response r,
                   const char* mode) {
    if (!r.result.ok()) {
      std::fprintf(stderr, "FAIL %s (%s): %s\n", q.id.c_str(), mode,
                   r.result.status().ToString().c_str());
      failures++;
      return;
    }
    std::vector<std::string> got =
        r.result->ToSortedStrings(data.by_name[q.dataset]->dict());
    if (got != expected[q.id]) {
      std::fprintf(stderr, "FAIL %s (%s): %zu rows differ from direct\n",
                   q.id.c_str(), mode, got.size());
      failures++;
    }
  };

  // Cold, then hot (the second round must be served by the result cache
  // and still be byte-identical). The cold pass also collects each query's
  // structural plan fingerprint for the metrics report.
  std::map<std::string, std::string> plan_fingerprints;
  uint64_t cold_store_hits = 0;
  for (const auto& q : rapida::workload::Catalog()) {
    Response r = svc.Execute(session, QuerySpec{q.sparql, q.dataset});
    plan_fingerprints[q.id] = r.plan_fingerprint;
    if (r.store_hit) {
      cold_store_hits++;
      if (r.sim_seconds != 0) {
        std::fprintf(stderr, "FAIL %s (cold): store hit cost %.3f sim s\n",
                     q.id.c_str(), r.sim_seconds);
        failures++;
      }
    }
    check(q, std::move(r), "cold");
  }
  if (expect_warm &&
      cold_store_hits + 2 < rapida::workload::Catalog().size()) {
    std::fprintf(stderr,
                 "FAIL: --expect-warm but only %llu/%zu cold queries were "
                 "served from the store\n",
                 static_cast<unsigned long long>(cold_store_hits),
                 rapida::workload::Catalog().size());
    failures++;
  }
  uint64_t hits_before = svc.result_cache().hits();
  for (const auto& q : rapida::workload::Catalog()) {
    check(q, svc.Execute(session, QuerySpec{q.sparql, q.dataset}), "hot");
  }
  if (svc.result_cache().hits() == hits_before) {
    std::fprintf(stderr, "FAIL: hot pass produced no result-cache hits\n");
    failures++;
  }

  // 32 concurrent sessions replaying the whole catalog.
  std::vector<int> sessions;
  for (int s = 0; s < 32; ++s) {
    sessions.push_back(svc.OpenSession("s" + std::to_string(s)));
  }
  std::atomic<int> concurrent_failures{0};
  std::vector<std::thread> threads;
  for (int s = 0; s < 32; ++s) {
    threads.emplace_back([&, s] {
      for (const auto& q : rapida::workload::Catalog()) {
        Response r = svc.Execute(sessions[static_cast<size_t>(s)],
                                 QuerySpec{q.sparql, q.dataset});
        if (!r.result.ok() ||
            r.result->ToSortedStrings(data.by_name[q.dataset]->dict()) !=
                expected[q.id]) {
          concurrent_failures++;
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  failures += concurrent_failures.load();

  std::printf("%s\n", svc.MetricsJson().c_str());
  std::string fps = "{\"plan_fingerprints\":{";
  bool first = true;
  for (const auto& [id, fp] : plan_fingerprints) {
    fps += std::string(first ? "" : ",") + "\"" + id + "\":\"" + fp + "\"";
    first = false;
  }
  fps += "}}";
  std::printf("%s\n", fps.c_str());

  if (!store_dir.empty()) {
    if (!expect_warm) failures += WarmRestartCheck(store_dir, expected);
    failures += IvmMutateCheck(store_dir + ".ivm-scratch");
  }

  if (failures == 0) {
    std::printf("smoke OK: %zu catalog queries cold+hot+32-way concurrent, "
                "all byte-identical to direct execution\n",
                rapida::workload::Catalog().size());
    return 0;
  }
  std::fprintf(stderr, "smoke FAILED: %d mismatches\n", failures);
  return 1;
}

struct ScenarioResult {
  int sessions = 0;
  bool caches = false;
  uint64_t queries = 0;
  double wall_s = 0;
  double throughput_qps = 0;
  double p50_s = 0;
  double p99_s = 0;
  uint64_t result_cache_hits = 0;
};

/// Replays `passes` passes over the catalog from `num_sessions` concurrent
/// sessions.
ScenarioResult RunScenario(Datasets* data, int num_sessions, bool caches,
                           int passes) {
  QueryService svc(
      BaseOptions(/*workers=*/4, caches, /*batching=*/true));
  RegisterAll(&svc, data);

  std::vector<int> sessions;
  for (int s = 0; s < num_sessions; ++s) {
    sessions.push_back(svc.OpenSession("s" + std::to_string(s)));
  }

  auto start = std::chrono::steady_clock::now();
  std::vector<std::thread> threads;
  std::atomic<uint64_t> served{0};
  for (int s = 0; s < num_sessions; ++s) {
    threads.emplace_back([&, s] {
      for (int pass = 0; pass < passes; ++pass) {
        for (const auto& q : rapida::workload::Catalog()) {
          Response r = svc.Execute(sessions[static_cast<size_t>(s)],
                                   QuerySpec{q.sparql, q.dataset});
          if (r.result.ok()) served++;
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  double wall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();

  ScenarioResult r;
  r.sessions = num_sessions;
  r.caches = caches;
  r.queries = served.load();
  r.wall_s = wall;
  r.throughput_qps = wall > 0 ? static_cast<double>(r.queries) / wall : 0;
  r.p50_s = svc.metrics().latency().Quantile(0.5);
  r.p99_s = svc.metrics().latency().Quantile(0.99);
  r.result_cache_hits = svc.result_cache().hits();
  return r;
}

/// The MQO experiment: 8 sessions fire the same overlapping bsbm burst at
/// once. Batched, the composite cycles are shared (and duplicates served
/// once); serial, every query pays its full workflow. Caches are off in
/// both runs so the comparison isolates the shared scan.
void RunBurst(Datasets* data, double* batched_sim, double* serial_sim,
              uint64_t* batches) {
  std::vector<std::string> burst =
      rapida::workload::QueriesForDataset("bsbm");
  for (int variant = 0; variant < 2; ++variant) {
    bool batching = variant == 0;
    QueryService svc(BaseOptions(/*workers=*/2, /*caches=*/false, batching));
    RegisterAll(&svc, data);
    std::vector<std::future<Response>> futures;
    for (int s = 0; s < 8; ++s) {
      int session = svc.OpenSession("burst" + std::to_string(s));
      for (const std::string& id : burst) {
        auto q = rapida::workload::FindQuery(id);
        auto f = svc.Submit(session, QuerySpec{(*q)->sparql, "bsbm"});
        if (f.ok()) futures.push_back(std::move(*f));
      }
    }
    for (auto& f : futures) f.get();
    double total = svc.scheduler().TotalDemandSimSeconds();
    if (batching) {
      *batched_sim = total;
      *batches = svc.metrics().batches();
    } else {
      *serial_sim = total;
    }
  }
}

int Bench(int passes, const std::string& out_path) {
  Datasets data = BuildDatasets();

  std::string json = "{\"bench\":\"service\",\"scenarios\":[";
  bool first = true;
  for (int sessions : {1, 8, 32}) {
    for (bool caches : {false, true}) {
      ScenarioResult r = RunScenario(&data, sessions, caches, passes);
      char buf[512];
      std::snprintf(
          buf, sizeof(buf),
          "%s{\"sessions\":%d,\"caches\":%s,\"queries\":%llu,"
          "\"wall_s\":%.4f,\"throughput_qps\":%.2f,\"p50_s\":%.5f,"
          "\"p99_s\":%.5f,\"result_cache_hits\":%llu}",
          first ? "" : ",", r.sessions, r.caches ? "true" : "false",
          static_cast<unsigned long long>(r.queries), r.wall_s,
          r.throughput_qps, r.p50_s, r.p99_s,
          static_cast<unsigned long long>(r.result_cache_hits));
      json += buf;
      first = false;
      std::printf(
          "sessions=%2d caches=%-5s  %5llu queries  %7.2f q/s  "
          "p50=%.4fs p99=%.4fs\n",
          r.sessions, r.caches ? "on" : "off",
          static_cast<unsigned long long>(r.queries), r.throughput_qps,
          r.p50_s, r.p99_s);
    }
  }
  json += "]";

  double batched_sim = 0, serial_sim = 0;
  uint64_t batches = 0;
  RunBurst(&data, &batched_sim, &serial_sim, &batches);
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                ",\"burst\":{\"batched_sim_s\":%.2f,\"serial_sim_s\":%.2f,"
                "\"batches\":%llu}}",
                batched_sim, serial_sim,
                static_cast<unsigned long long>(batches));
  json += buf;
  std::printf("burst (8 sessions x bsbm catalog): batched %.1f sim s vs "
              "serial %.1f sim s (%llu shared batches)\n",
              batched_sim, serial_sim,
              static_cast<unsigned long long>(batches));

  std::ofstream out(out_path, std::ios::app);
  out << json << "\n";
  std::printf("appended to %s\n", out_path.c_str());
  return 0;
}

/// Mutate-heavy replay over the incrementally-maintainable bsbm queries:
/// the same trace (seed, then rounds of mutate + full replay) runs once
/// with incremental view maintenance and once with full recompute. The
/// measured quantity is simulated MapReduce demand during the replay
/// rounds — incremental maintenance answers every round from patched
/// artifacts without launching a single job.
int BenchStore(const std::string& out_path) {
  namespace fs = std::filesystem;
  const int kRounds = 10;
  const int kOffersPerRound = 5;

  // The replay set: bsbm catalog queries whose algebra admits patching.
  std::vector<const rapida::workload::CatalogQuery*> queries;
  for (const auto& q : rapida::workload::Catalog()) {
    if (q.dataset != "bsbm") continue;
    auto parsed = rapida::sparql::ParseQuery(q.sparql);
    if (!parsed.ok()) continue;
    auto analyzed = rapida::analytics::AnalyzeQuery(**parsed);
    if (!analyzed.ok()) continue;
    if (rapida::storage::ClassifyMaintainability(*analyzed).cls !=
        rapida::storage::IvmClass::kNone) {
      queries.push_back(&q);
    }
  }
  if (queries.empty()) {
    std::fprintf(stderr, "bench-store: no patchable bsbm queries\n");
    return 1;
  }

  double replay_sim[2] = {0, 0};  // [0]=ivm, [1]=recompute
  uint64_t patched = 0, recomputed = 0;
  for (int variant = 0; variant < 2; ++variant) {
    bool ivm = variant == 0;
    std::string dir =
        ivm ? "store_bench.ivm-scratch" : "store_bench.full-scratch";
    std::error_code ec;
    fs::remove_all(dir, ec);

    Datasets data = BuildDatasets();
    ServiceOptions opts =
        BaseOptions(/*workers=*/2, /*caches=*/true, /*batching=*/false);
    opts.store_dir = dir;
    opts.enable_ivm = ivm;
    QueryService svc(opts);
    RegisterAll(&svc, &data);
    int session = svc.OpenSession("bench-store");

    for (const auto* q : queries) {
      svc.Execute(session, QuerySpec{q->sparql, q->dataset});
    }
    double seed_sim = svc.scheduler().TotalDemandSimSeconds();

    for (int round = 0; round < kRounds; ++round) {
      rapida::Status st =
          svc.Mutate("bsbm", NewOffers(round, kOffersPerRound));
      if (!st.ok()) {
        std::fprintf(stderr, "bench-store mutate: %s\n",
                     st.ToString().c_str());
        return 1;
      }
      for (const auto* q : queries) {
        Response r = svc.Execute(session, QuerySpec{q->sparql, q->dataset});
        if (!r.result.ok()) {
          std::fprintf(stderr, "bench-store %s: %s\n", q->id.c_str(),
                       r.result.status().ToString().c_str());
          return 1;
        }
      }
    }
    replay_sim[variant] =
        svc.scheduler().TotalDemandSimSeconds() - seed_sim;
    if (ivm) {
      patched = svc.metrics().store_patched();
    } else {
      recomputed = svc.metrics().store_recomputes();
    }
    fs::remove_all(dir, ec);
  }

  // An all-patched replay legitimately costs zero simulated seconds;
  // floor the denominator so the reported ratio stays finite.
  double speedup = replay_sim[1] / std::max(replay_sim[0], 1e-3);
  char buf[512];
  std::snprintf(
      buf, sizeof(buf),
      "{\"bench\":\"store\",\"queries\":%zu,\"rounds\":%d,"
      "\"offers_per_round\":%d,\"ivm_replay_sim_s\":%.3f,"
      "\"recompute_replay_sim_s\":%.3f,\"speedup\":%.1f,"
      "\"artifacts_patched\":%llu,\"artifacts_recomputed\":%llu}",
      queries.size(), kRounds, kOffersPerRound, replay_sim[0],
      replay_sim[1], speedup, static_cast<unsigned long long>(patched),
      static_cast<unsigned long long>(recomputed));
  std::printf("%s\n", buf);
  std::printf("store replay (%zu patchable queries x %d mutate rounds): "
              "incremental %.2f sim s vs recompute %.2f sim s (%.0fx)\n",
              queries.size(), kRounds, replay_sim[0], replay_sim[1],
              speedup);
  std::ofstream out(out_path, std::ios::app);
  out << buf << "\n";
  std::printf("appended to %s\n", out_path.c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  bool bench_store = false;
  bool expect_warm = false;
  int passes = 2;
  int shards = 0;
  rapida::mr::ShardingScheme scheme =
      rapida::mr::ShardingScheme::kHashSubject;
  std::string out_path;
  std::string store_dir;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strcmp(argv[i], "--bench-store") == 0) {
      bench_store = true;
    } else if (std::strcmp(argv[i], "--expect-warm") == 0) {
      expect_warm = true;
    } else if (std::strcmp(argv[i], "--store") == 0 && i + 1 < argc) {
      store_dir = argv[++i];
    } else if (std::strncmp(argv[i], "--store=", 8) == 0) {
      store_dir = argv[i] + 8;
    } else if (std::strcmp(argv[i], "--passes") == 0 && i + 1 < argc) {
      passes = std::atoi(argv[++i]);
    } else if (std::strncmp(argv[i], "--shards=", 9) == 0) {
      shards = std::atoi(argv[i] + 9);
    } else if (std::strncmp(argv[i], "--scheme=", 9) == 0) {
      if (!rapida::mr::ParseShardingScheme(argv[i] + 9, &scheme)) {
        std::fprintf(stderr, "unknown --scheme: %s\n", argv[i] + 9);
        return 2;
      }
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    } else {
      std::fprintf(stderr,
                   "usage: %s [--smoke] [--store DIR] [--expect-warm] "
                   "[--bench-store] [--passes N] [--shards N] "
                   "[--scheme hash-subject|locality] [--out FILE]\n",
                   argv[0]);
      return 2;
    }
  }
  if (bench_store) {
    return BenchStore(out_path.empty() ? "BENCH_store.json" : out_path);
  }
  if (smoke) return Smoke(store_dir, expect_warm, shards, scheme);
  return Bench(passes, out_path.empty() ? "BENCH_service.json" : out_path);
}
