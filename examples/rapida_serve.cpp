// rapida_serve — the concurrent query service over the workload catalog.
//
// Replays catalog queries from many concurrent sessions through
// service::QueryService (admission control, fair-share scheduling, plan /
// result caching, shared-scan batching) and reports service metrics.
//
// Usage:
//   rapida_serve                 bench mode: replays the catalog trace at
//                                1/8/32 sessions with caches on and off,
//                                runs the batched-vs-serial burst
//                                experiment, and appends one JSON object
//                                to BENCH_service.json
//   rapida_serve --smoke         correctness mode for scripts/check.sh:
//                                serves every catalog query cold, hot and
//                                from 32 concurrent sessions, and
//                                cross-checks every result byte-for-byte
//                                against direct RAPIDAnalytics execution;
//                                exit 1 on any mismatch
//   --passes N                   trace passes per session in bench mode
//   --out FILE                   bench output (default BENCH_service.json)
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "analytics/analytical_query.h"
#include "engines/rapid_analytics.h"
#include "service/query_service.h"
#include "sparql/parser.h"
#include "workload/bsbm.h"
#include "workload/catalog.h"
#include "workload/chem2bio.h"
#include "workload/pubmed.h"

namespace {

using rapida::engine::Dataset;
using rapida::service::QueryService;
using rapida::service::QuerySpec;
using rapida::service::Response;
using rapida::service::ServiceOptions;

struct Datasets {
  std::map<std::string, std::unique_ptr<Dataset>> by_name;
};

Datasets BuildDatasets() {
  Datasets d;
  d.by_name["bsbm"] = std::make_unique<Dataset>(
      rapida::workload::GenerateBsbm(rapida::workload::BsbmConfig{}));
  d.by_name["chem"] = std::make_unique<Dataset>(
      rapida::workload::GenerateChem2Bio(rapida::workload::ChemConfig{}));
  d.by_name["pubmed"] = std::make_unique<Dataset>(
      rapida::workload::GeneratePubmed(rapida::workload::PubmedConfig{}));
  return d;
}

ServiceOptions BaseOptions(int workers, bool caches, bool batching) {
  ServiceOptions opts;
  opts.workers = workers;
  opts.max_queue_depth = 4096;
  opts.enable_plan_cache = caches;
  opts.enable_result_cache = caches;
  opts.enable_batching = batching;
  opts.batch_window_ms = batching ? 2.0 : 0.0;
  return opts;
}

void RegisterAll(QueryService* svc, Datasets* data) {
  for (auto& [name, ds] : data->by_name) svc->RegisterDataset(name, ds.get());
}

/// Direct (service-free) execution on a private cluster — the oracle the
/// smoke mode compares against.
rapida::StatusOr<std::vector<std::string>> DirectSortedResult(
    const std::string& sparql, Dataset* dataset) {
  RAPIDA_ASSIGN_OR_RETURN(std::unique_ptr<rapida::sparql::SelectQuery> parsed,
                          rapida::sparql::ParseQuery(sparql));
  RAPIDA_ASSIGN_OR_RETURN(rapida::analytics::AnalyticalQuery query,
                          rapida::analytics::AnalyzeQuery(*parsed));
  rapida::mr::Cluster cluster(rapida::mr::ClusterConfig{}, &dataset->dfs());
  rapida::engine::RapidAnalyticsEngine engine;
  RAPIDA_ASSIGN_OR_RETURN(
      rapida::analytics::BindingTable table,
      engine.Execute(query, dataset, &cluster, nullptr));
  return table.ToSortedStrings(dataset->dict());
}

int Smoke() {
  Datasets data = BuildDatasets();

  // Oracle results, computed before the service touches anything.
  std::map<std::string, std::vector<std::string>> expected;
  for (const auto& q : rapida::workload::Catalog()) {
    auto direct = DirectSortedResult(q.sparql, data.by_name[q.dataset].get());
    if (!direct.ok()) {
      std::fprintf(stderr, "direct %s: %s\n", q.id.c_str(),
                   direct.status().ToString().c_str());
      return 1;
    }
    expected[q.id] = *direct;
  }

  QueryService svc(BaseOptions(/*workers=*/4, /*caches=*/true,
                               /*batching=*/true));
  RegisterAll(&svc, &data);
  int session = svc.OpenSession("smoke");

  int failures = 0;
  auto check = [&](const rapida::workload::CatalogQuery& q, Response r,
                   const char* mode) {
    if (!r.result.ok()) {
      std::fprintf(stderr, "FAIL %s (%s): %s\n", q.id.c_str(), mode,
                   r.result.status().ToString().c_str());
      failures++;
      return;
    }
    std::vector<std::string> got =
        r.result->ToSortedStrings(data.by_name[q.dataset]->dict());
    if (got != expected[q.id]) {
      std::fprintf(stderr, "FAIL %s (%s): %zu rows differ from direct\n",
                   q.id.c_str(), mode, got.size());
      failures++;
    }
  };

  // Cold, then hot (the second round must be served by the result cache
  // and still be byte-identical). The cold pass also collects each query's
  // structural plan fingerprint for the metrics report.
  std::map<std::string, std::string> plan_fingerprints;
  for (const auto& q : rapida::workload::Catalog()) {
    Response r = svc.Execute(session, QuerySpec{q.sparql, q.dataset});
    plan_fingerprints[q.id] = r.plan_fingerprint;
    check(q, std::move(r), "cold");
  }
  uint64_t hits_before = svc.result_cache().hits();
  for (const auto& q : rapida::workload::Catalog()) {
    check(q, svc.Execute(session, QuerySpec{q.sparql, q.dataset}), "hot");
  }
  if (svc.result_cache().hits() == hits_before) {
    std::fprintf(stderr, "FAIL: hot pass produced no result-cache hits\n");
    failures++;
  }

  // 32 concurrent sessions replaying the whole catalog.
  std::vector<int> sessions;
  for (int s = 0; s < 32; ++s) {
    sessions.push_back(svc.OpenSession("s" + std::to_string(s)));
  }
  std::atomic<int> concurrent_failures{0};
  std::vector<std::thread> threads;
  for (int s = 0; s < 32; ++s) {
    threads.emplace_back([&, s] {
      for (const auto& q : rapida::workload::Catalog()) {
        Response r = svc.Execute(sessions[static_cast<size_t>(s)],
                                 QuerySpec{q.sparql, q.dataset});
        if (!r.result.ok() ||
            r.result->ToSortedStrings(data.by_name[q.dataset]->dict()) !=
                expected[q.id]) {
          concurrent_failures++;
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  failures += concurrent_failures.load();

  std::printf("%s\n", svc.MetricsJson().c_str());
  std::string fps = "{\"plan_fingerprints\":{";
  bool first = true;
  for (const auto& [id, fp] : plan_fingerprints) {
    fps += std::string(first ? "" : ",") + "\"" + id + "\":\"" + fp + "\"";
    first = false;
  }
  fps += "}}";
  std::printf("%s\n", fps.c_str());
  if (failures == 0) {
    std::printf("smoke OK: %zu catalog queries cold+hot+32-way concurrent, "
                "all byte-identical to direct execution\n",
                rapida::workload::Catalog().size());
    return 0;
  }
  std::fprintf(stderr, "smoke FAILED: %d mismatches\n", failures);
  return 1;
}

struct ScenarioResult {
  int sessions = 0;
  bool caches = false;
  uint64_t queries = 0;
  double wall_s = 0;
  double throughput_qps = 0;
  double p50_s = 0;
  double p99_s = 0;
  uint64_t result_cache_hits = 0;
};

/// Replays `passes` passes over the catalog from `num_sessions` concurrent
/// sessions.
ScenarioResult RunScenario(Datasets* data, int num_sessions, bool caches,
                           int passes) {
  QueryService svc(
      BaseOptions(/*workers=*/4, caches, /*batching=*/true));
  RegisterAll(&svc, data);

  std::vector<int> sessions;
  for (int s = 0; s < num_sessions; ++s) {
    sessions.push_back(svc.OpenSession("s" + std::to_string(s)));
  }

  auto start = std::chrono::steady_clock::now();
  std::vector<std::thread> threads;
  std::atomic<uint64_t> served{0};
  for (int s = 0; s < num_sessions; ++s) {
    threads.emplace_back([&, s] {
      for (int pass = 0; pass < passes; ++pass) {
        for (const auto& q : rapida::workload::Catalog()) {
          Response r = svc.Execute(sessions[static_cast<size_t>(s)],
                                   QuerySpec{q.sparql, q.dataset});
          if (r.result.ok()) served++;
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  double wall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();

  ScenarioResult r;
  r.sessions = num_sessions;
  r.caches = caches;
  r.queries = served.load();
  r.wall_s = wall;
  r.throughput_qps = wall > 0 ? static_cast<double>(r.queries) / wall : 0;
  r.p50_s = svc.metrics().latency().Quantile(0.5);
  r.p99_s = svc.metrics().latency().Quantile(0.99);
  r.result_cache_hits = svc.result_cache().hits();
  return r;
}

/// The MQO experiment: 8 sessions fire the same overlapping bsbm burst at
/// once. Batched, the composite cycles are shared (and duplicates served
/// once); serial, every query pays its full workflow. Caches are off in
/// both runs so the comparison isolates the shared scan.
void RunBurst(Datasets* data, double* batched_sim, double* serial_sim,
              uint64_t* batches) {
  std::vector<std::string> burst =
      rapida::workload::QueriesForDataset("bsbm");
  for (int variant = 0; variant < 2; ++variant) {
    bool batching = variant == 0;
    QueryService svc(BaseOptions(/*workers=*/2, /*caches=*/false, batching));
    RegisterAll(&svc, data);
    std::vector<std::future<Response>> futures;
    for (int s = 0; s < 8; ++s) {
      int session = svc.OpenSession("burst" + std::to_string(s));
      for (const std::string& id : burst) {
        auto q = rapida::workload::FindQuery(id);
        auto f = svc.Submit(session, QuerySpec{(*q)->sparql, "bsbm"});
        if (f.ok()) futures.push_back(std::move(*f));
      }
    }
    for (auto& f : futures) f.get();
    double total = svc.scheduler().TotalDemandSimSeconds();
    if (batching) {
      *batched_sim = total;
      *batches = svc.metrics().batches();
    } else {
      *serial_sim = total;
    }
  }
}

int Bench(int passes, const std::string& out_path) {
  Datasets data = BuildDatasets();

  std::string json = "{\"bench\":\"service\",\"scenarios\":[";
  bool first = true;
  for (int sessions : {1, 8, 32}) {
    for (bool caches : {false, true}) {
      ScenarioResult r = RunScenario(&data, sessions, caches, passes);
      char buf[512];
      std::snprintf(
          buf, sizeof(buf),
          "%s{\"sessions\":%d,\"caches\":%s,\"queries\":%llu,"
          "\"wall_s\":%.4f,\"throughput_qps\":%.2f,\"p50_s\":%.5f,"
          "\"p99_s\":%.5f,\"result_cache_hits\":%llu}",
          first ? "" : ",", r.sessions, r.caches ? "true" : "false",
          static_cast<unsigned long long>(r.queries), r.wall_s,
          r.throughput_qps, r.p50_s, r.p99_s,
          static_cast<unsigned long long>(r.result_cache_hits));
      json += buf;
      first = false;
      std::printf(
          "sessions=%2d caches=%-5s  %5llu queries  %7.2f q/s  "
          "p50=%.4fs p99=%.4fs\n",
          r.sessions, r.caches ? "on" : "off",
          static_cast<unsigned long long>(r.queries), r.throughput_qps,
          r.p50_s, r.p99_s);
    }
  }
  json += "]";

  double batched_sim = 0, serial_sim = 0;
  uint64_t batches = 0;
  RunBurst(&data, &batched_sim, &serial_sim, &batches);
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                ",\"burst\":{\"batched_sim_s\":%.2f,\"serial_sim_s\":%.2f,"
                "\"batches\":%llu}}",
                batched_sim, serial_sim,
                static_cast<unsigned long long>(batches));
  json += buf;
  std::printf("burst (8 sessions x bsbm catalog): batched %.1f sim s vs "
              "serial %.1f sim s (%llu shared batches)\n",
              batched_sim, serial_sim,
              static_cast<unsigned long long>(batches));

  std::ofstream out(out_path, std::ios::app);
  out << json << "\n";
  std::printf("appended to %s\n", out_path.c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  int passes = 2;
  std::string out_path = "BENCH_service.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strcmp(argv[i], "--passes") == 0 && i + 1 < argc) {
      passes = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    } else {
      std::fprintf(stderr,
                   "usage: %s [--smoke] [--passes N] [--out FILE]\n",
                   argv[0]);
      return 2;
    }
  }
  return smoke ? Smoke() : Bench(passes, out_path);
}
