// Quickstart: load a small RDF graph, write an analytical SPARQL query
// with two related groupings, and run it end to end — first on the
// in-memory reference evaluator, then through the RAPIDAnalytics engine on
// the simulated MapReduce cluster, printing the execution workflow.
//
// Build & run:  ./build/examples/quickstart
#include <cstdio>

#include "analytics/analytical_query.h"
#include "analytics/reference_evaluator.h"
#include "engines/rapid_analytics.h"
#include "rdf/ntriples.h"
#include "sparql/parser.h"

int main() {
  using namespace rapida;

  // 1. Load data (N-Triples). Three products of one type, their offers
  //    with prices, vendors with countries.
  const char* kData = R"(
<p1> <http://www.w3.org/1999/02/22-rdf-syntax-ns#type> <Phone> .
<p2> <http://www.w3.org/1999/02/22-rdf-syntax-ns#type> <Phone> .
<p1> <feature> <5G> .
<p1> <feature> <NFC> .
<p2> <feature> <5G> .
<o1> <product> <p1> .
<o1> <price> "400"^^<http://www.w3.org/2001/XMLSchema#integer> .
<o2> <product> <p1> .
<o2> <price> "300"^^<http://www.w3.org/2001/XMLSchema#integer> .
<o3> <product> <p2> .
<o3> <price> "500"^^<http://www.w3.org/2001/XMLSchema#integer> .
)";
  rdf::Graph graph;
  Status st = rdf::ParseNTriples(kData, &graph);
  if (!st.ok()) {
    std::printf("load failed: %s\n", st.ToString().c_str());
    return 1;
  }

  // 2. An analytical query: average price per feature vs. overall —
  //    two overlapping graph patterns, the paper's core query shape.
  const char* kQuery = R"(
    SELECT ?f ((?sumF / ?cntF) AS ?avgF) ((?sumT / ?cntT) AS ?avgT) {
      { SELECT ?f (SUM(?pr2) AS ?sumF) (COUNT(?pr2) AS ?cntF) {
          ?p2 a <Phone> . ?p2 <feature> ?f .
          ?o2 <product> ?p2 . ?o2 <price> ?pr2 .
        } GROUP BY ?f }
      { SELECT (SUM(?pr) AS ?sumT) (COUNT(?pr) AS ?cntT) {
          ?p1 a <Phone> .
          ?o1 <product> ?p1 . ?o1 <price> ?pr .
        } }
    }
  )";
  auto parsed = sparql::ParseQuery(kQuery);
  if (!parsed.ok()) {
    std::printf("parse failed: %s\n", parsed.status().ToString().c_str());
    return 1;
  }

  // 3. Reference answer (direct in-memory evaluation).
  analytics::ReferenceEvaluator ref(&graph);
  auto expected = ref.Evaluate(**parsed);
  if (!expected.ok()) {
    std::printf("evaluate failed: %s\n",
                expected.status().ToString().c_str());
    return 1;
  }
  std::printf("Reference result:\n%s\n",
              expected->ToString(graph.dict()).c_str());

  // 4. The same query through RAPIDAnalytics on the MapReduce runtime.
  //    The engine detects the overlap, rewrites to a composite graph
  //    pattern, and evaluates both aggregations in one parallel cycle.
  auto query = analytics::AnalyzeQuery(**parsed);
  if (!query.ok()) {
    std::printf("analyze failed: %s\n", query.status().ToString().c_str());
    return 1;
  }
  // Dataset takes ownership of a graph; rebuild it from the same text.
  rdf::Graph engine_graph;
  (void)rdf::ParseNTriples(kData, &engine_graph);
  engine::Dataset dataset(std::move(engine_graph));
  mr::Cluster cluster(mr::ClusterConfig{}, &dataset.dfs());
  engine::RapidAnalyticsEngine engine;
  engine::ExecStats stats;
  auto result = engine.Execute(*query, &dataset, &cluster, &stats);
  if (!result.ok()) {
    std::printf("engine failed: %s\n", result.status().ToString().c_str());
    return 1;
  }
  std::printf("RAPIDAnalytics result:\n%s\n",
              result->ToString(dataset.dict()).c_str());
  std::printf("Execution workflow:\n%s", stats.workflow.ToString().c_str());
  return 0;
}
