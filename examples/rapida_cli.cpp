// rapida_cli — run SPARQL analytical queries from the command line.
//
// Usage:
//   rapida_cli [options]
//     --data FILE.nt|.ttl    load an N-Triples or Turtle file
//     --workload NAME        or generate a synthetic workload:
//                            bsbm | chem | pubmed
//     --scale N              workload size knob (bsbm products /
//                            chem assays / pubmed publications)
//     --engine NAME          reference (default) | ra | rapid+ | hive | mqo
//     --query FILE.rq        SPARQL query file ('-' = stdin)
//     --query-id ID          or a catalog query (G1..G9, MG1..MG18, AQ1,
//                            R1, R2)
//     --nodes N              simulated cluster size (default 10)
//     --list                 list catalog queries and exit
//     --explain              print the engine's physical plan (per-node
//                            cycle/byte estimates, pass log) and exit
//     --explain-json         the same plan as JSON
//     --plan                 preview all four engines' cycle counts
//     --trace                after running, print the executed MapReduce
//                            workflow breakdown
//
// Examples:
//   rapida_cli --workload bsbm --query-id MG3 --engine ra --explain
//   rapida_cli --data mydata.nt --query query.rq --engine hive
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "analytics/analytical_query.h"
#include "analytics/reference_evaluator.h"
#include "engines/engines.h"
#include "engines/plan_preview.h"
#include "plan/planner.h"
#include "rdf/ntriples.h"
#include "rdf/turtle.h"
#include "sparql/parser.h"
#include "workload/bsbm.h"
#include "workload/catalog.h"
#include "workload/chem2bio.h"
#include "workload/pubmed.h"

namespace {

struct CliOptions {
  std::string data_file;
  std::string workload;
  int scale = 0;
  std::string engine = "reference";
  std::string query_file;
  std::string query_id;
  int nodes = 10;
  bool list = false;
  bool explain = false;
  bool explain_json = false;
  bool plan = false;
  bool trace = false;
};

int Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s (--data FILE.nt | --workload bsbm|chem|pubmed "
               "[--scale N]) (--query FILE.rq | --query-id ID) "
               "[--engine reference|ra|rapid+|hive|mqo] [--nodes N] "
               "[--explain] [--explain-json] [--plan] [--trace] [--list]\n",
               argv0);
  return 2;
}

bool ParseArgs(int argc, char** argv, CliOptions* opts) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--data") {
      const char* v = next();
      if (!v) return false;
      opts->data_file = v;
    } else if (arg == "--workload") {
      const char* v = next();
      if (!v) return false;
      opts->workload = v;
    } else if (arg == "--scale") {
      const char* v = next();
      if (!v) return false;
      opts->scale = std::atoi(v);
    } else if (arg == "--engine") {
      const char* v = next();
      if (!v) return false;
      opts->engine = v;
    } else if (arg == "--query") {
      const char* v = next();
      if (!v) return false;
      opts->query_file = v;
    } else if (arg == "--query-id") {
      const char* v = next();
      if (!v) return false;
      opts->query_id = v;
    } else if (arg == "--nodes") {
      const char* v = next();
      if (!v) return false;
      opts->nodes = std::atoi(v);
    } else if (arg == "--list") {
      opts->list = true;
    } else if (arg == "--explain") {
      opts->explain = true;
    } else if (arg == "--explain-json") {
      opts->explain_json = true;
    } else if (arg == "--plan") {
      opts->plan = true;
    } else if (arg == "--trace") {
      opts->trace = true;
    } else {
      std::fprintf(stderr, "unknown option: %s\n", arg.c_str());
      return false;
    }
  }
  return true;
}

rapida::StatusOr<rapida::rdf::Graph> LoadGraph(const CliOptions& opts) {
  if (!opts.data_file.empty()) {
    std::ifstream in(opts.data_file);
    if (!in) {
      return rapida::Status::NotFound("cannot open " + opts.data_file);
    }
    std::stringstream buf;
    buf << in.rdbuf();
    rapida::rdf::Graph g;
    bool turtle = opts.data_file.size() >= 4 &&
                  opts.data_file.substr(opts.data_file.size() - 4) == ".ttl";
    if (turtle) {
      RAPIDA_RETURN_IF_ERROR(rapida::rdf::ParseTurtle(buf.str(), &g));
    } else {
      RAPIDA_RETURN_IF_ERROR(rapida::rdf::ParseNTriples(buf.str(), &g));
    }
    return g;
  }
  if (opts.workload == "bsbm") {
    rapida::workload::BsbmConfig cfg;
    if (opts.scale > 0) cfg.num_products = opts.scale;
    return rapida::workload::GenerateBsbm(cfg);
  }
  if (opts.workload == "chem") {
    rapida::workload::ChemConfig cfg;
    if (opts.scale > 0) cfg.num_assays = opts.scale;
    return rapida::workload::GenerateChem2Bio(cfg);
  }
  if (opts.workload == "pubmed") {
    rapida::workload::PubmedConfig cfg;
    if (opts.scale > 0) cfg.num_publications = opts.scale;
    return rapida::workload::GeneratePubmed(cfg);
  }
  return rapida::Status::InvalidArgument(
      "give --data FILE.nt or --workload bsbm|chem|pubmed");
}

/// Display name for an --engine value; empty for "reference" or unknown.
std::string EngineName(const std::string& engine) {
  if (engine == "ra") return "RAPIDAnalytics";
  if (engine == "rapid+") return "RAPID+ (Naive)";
  if (engine == "hive") return "Hive (Naive)";
  if (engine == "mqo") return "Hive (MQO)";
  return "";
}

rapida::StatusOr<std::string> LoadQueryText(const CliOptions& opts) {
  if (!opts.query_id.empty()) {
    RAPIDA_ASSIGN_OR_RETURN(const rapida::workload::CatalogQuery* cq,
                            rapida::workload::FindQuery(opts.query_id));
    return cq->sparql;
  }
  if (opts.query_file == "-") {
    std::stringstream buf;
    buf << std::cin.rdbuf();
    return buf.str();
  }
  if (!opts.query_file.empty()) {
    std::ifstream in(opts.query_file);
    if (!in) {
      return rapida::Status::NotFound("cannot open " + opts.query_file);
    }
    std::stringstream buf;
    buf << in.rdbuf();
    return buf.str();
  }
  return rapida::Status::InvalidArgument(
      "give --query FILE.rq or --query-id ID");
}

int Run(const CliOptions& opts) {
  if (opts.list) {
    for (const auto& q : rapida::workload::Catalog()) {
      std::printf("%-6s %-8s %s\n", q.id.c_str(), q.dataset.c_str(),
                  q.description.c_str());
    }
    return 0;
  }

  auto graph = LoadGraph(opts);
  if (!graph.ok()) {
    std::fprintf(stderr, "data: %s\n", graph.status().ToString().c_str());
    return 1;
  }
  auto query_text = LoadQueryText(opts);
  if (!query_text.ok()) {
    std::fprintf(stderr, "query: %s\n",
                 query_text.status().ToString().c_str());
    return 1;
  }
  auto parsed = rapida::sparql::ParseQuery(*query_text);
  if (!parsed.ok()) {
    std::fprintf(stderr, "%s\n", parsed.status().ToString().c_str());
    return 1;
  }

  if (opts.plan) {
    auto q = rapida::analytics::AnalyzeQuery(**parsed);
    if (!q.ok()) {
      std::fprintf(stderr, "%s\n", q.status().ToString().c_str());
      return 1;
    }
    for (const auto& preview : rapida::engine::PreviewAllPlans(*q)) {
      std::printf("%s\n", preview.ToString().c_str());
    }
    return 0;
  }

  if (opts.explain || opts.explain_json) {
    std::string engine_name = EngineName(opts.engine);
    if (engine_name.empty()) {
      std::fprintf(stderr,
                   "--explain requires --engine ra|rapid+|hive|mqo\n");
      return 2;
    }
    auto q = rapida::analytics::AnalyzeQuery(**parsed);
    if (!q.ok()) {
      std::fprintf(stderr, "%s\n", q.status().ToString().c_str());
      return 1;
    }
    rapida::engine::Dataset dataset(std::move(*graph));
    rapida::engine::EngineOptions eo;
    auto physical =
        rapida::plan::PlanForEngine(engine_name, *q, &dataset, eo);
    if (!physical.ok()) {
      // Composite construction failed: explain the engine's fallback
      // pipeline, exactly what Execute would run.
      if (engine_name == "Hive (MQO)") {
        physical = rapida::plan::PlanHiveNaive(*q, &dataset, eo);
      } else if (engine_name == "RAPIDAnalytics") {
        physical = rapida::plan::PlanRapidPlus(*q, &dataset, eo);
      }
      if (physical.ok()) physical->engine = engine_name;
    }
    if (!physical.ok()) {
      std::fprintf(stderr, "%s\n", physical.status().ToString().c_str());
      return 1;
    }
    if (opts.explain_json) {
      std::printf("%s\n", physical->ExplainJson().c_str());
    } else {
      std::printf("%s", physical->ExplainText().c_str());
    }
    return 0;
  }

  if (opts.engine == "reference") {
    rapida::analytics::ReferenceEvaluator ref(&*graph);
    auto result = ref.Evaluate(**parsed);
    if (!result.ok()) {
      std::fprintf(stderr, "%s\n", result.status().ToString().c_str());
      return 1;
    }
    std::printf("%s", result->ToString(graph->dict(), 50).c_str());
    return 0;
  }

  std::string engine_name = EngineName(opts.engine);
  if (engine_name.empty()) {
    std::fprintf(stderr, "unknown engine: %s\n", opts.engine.c_str());
    return 2;
  }

  auto query = rapida::analytics::AnalyzeQuery(**parsed);
  if (!query.ok()) {
    std::fprintf(stderr, "%s\n", query.status().ToString().c_str());
    return 1;
  }
  rapida::engine::Dataset dataset(std::move(*graph));
  rapida::mr::ClusterConfig cluster_cfg;
  cluster_cfg.num_nodes = opts.nodes;
  rapida::mr::Cluster cluster(cluster_cfg, &dataset.dfs());

  std::unique_ptr<rapida::engine::Engine> eng;
  for (auto& e : rapida::engine::MakeAllEngines()) {
    if (e->name() == engine_name) eng = std::move(e);
  }
  rapida::engine::ExecStats stats;
  auto result = eng->Execute(*query, &dataset, &cluster, &stats);
  if (!result.ok()) {
    std::fprintf(stderr, "%s\n", result.status().ToString().c_str());
    return 1;
  }
  std::printf("%s", result->ToString(dataset.dict(), 50).c_str());
  std::printf("\n[%s] %d MR cycles (%d map-only), %.1f simulated s, "
              "%.0f ms wall\n",
              engine_name.c_str(), stats.workflow.NumCycles(),
              stats.workflow.NumMapOnlyCycles(),
              stats.workflow.TotalSimSeconds(),
              stats.wall_seconds * 1000);
  if (opts.trace) {
    std::printf("\n%s", stats.workflow.ToString().c_str());
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  CliOptions opts;
  if (!ParseArgs(argc, argv, &opts)) return Usage(argv[0]);
  return Run(opts);
}
