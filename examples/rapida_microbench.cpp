// Microbenchmarks for the vectorized batch kernels: each compares the
// batch primitive against the scalar structure the operators used before,
// verifies both produce identical results, and reports wall time plus
// speedup. Rows are appendable to BENCH_mapreduce.json (JSON lines).
//
// Usage:
//   rapida_microbench [--rows=N] [--repeat=K] [--json[=PATH]]
//
// Benches:
//   hash-join probe   kernels::HashIndex + CSR groups vs
//                     std::unordered_map<TermId, vector<vector<TermId>>>
//   batch aggregate   insertion-ordered HashIndex aggregation table vs
//                     std::map<std::string, vector<Aggregator>>
//   batch tokenize    kernels::TokenizeValues field columns vs per-record
//                     FieldTokenizer re-scans
//
// With --json, one row per bench is appended (default BENCH_mapreduce.json,
// overridable via the RAPIDA_BENCH_JSON environment variable or =PATH).

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <string>
#include <unordered_map>
#include <vector>

#include "analytics/aggregates.h"
#include "analytics/value.h"
#include "engines/relational_ops.h"
#include "mapreduce/kernels.h"
#include "mapreduce/record.h"
#include "rdf/dictionary.h"
#include "util/string_util.h"

namespace {

using rapida::analytics::Aggregator;
using rapida::engine::AppendRow;
namespace kernels = rapida::mr::kernels;

double NowSeconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// Deterministic xorshift so runs are comparable.
uint64_t g_rng = 0x2545f4914f6cdd1dull;
uint64_t NextRand() {
  g_rng ^= g_rng << 13;
  g_rng ^= g_rng >> 7;
  g_rng ^= g_rng << 17;
  return g_rng;
}

struct BenchResult {
  std::string name;
  double scalar_seconds = 0;
  double batch_seconds = 0;
  size_t rows = 0;
  bool verified = false;

  double Speedup() const {
    return batch_seconds > 0 ? scalar_seconds / batch_seconds : 0;
  }
};

/// Runs `fn` `repeat` times and returns the best wall time (the usual
/// microbench convention: best-of filters scheduler noise).
template <typename Fn>
double BestOf(int repeat, Fn&& fn) {
  double best = 0;
  for (int i = 0; i < repeat; ++i) {
    double t0 = NowSeconds();
    fn();
    double dt = NowSeconds() - t0;
    if (i == 0 || dt < best) best = dt;
  }
  return best;
}

// ---------------------------------------------------------------------------
// hash-join probe: build a side table of rows grouped by key, then probe
// every input key and sum the matched cells (the map-join inner loop).

BenchResult BenchHashJoinProbe(size_t rows, int repeat) {
  const size_t kDistinct = rows / 4 + 1;
  std::vector<uint32_t> build_keys(rows / 2), probe_keys(rows);
  for (auto& k : build_keys) k = static_cast<uint32_t>(NextRand() % kDistinct);
  for (auto& k : probe_keys) k = static_cast<uint32_t>(NextRand() % kDistinct);

  uint64_t scalar_sum = 0, batch_sum = 0;

  double scalar_s = BestOf(repeat, [&] {
    std::unordered_map<uint32_t, std::vector<std::vector<uint32_t>>> table;
    for (uint32_t k : build_keys) table[k].push_back({k, k + 1, k + 2});
    uint64_t sum = 0;
    for (uint32_t k : probe_keys) {
      auto it = table.find(k);
      if (it == table.end()) continue;
      for (const auto& row : it->second) {
        for (uint32_t c : row) sum += c;
      }
    }
    scalar_sum = sum;
  });

  double batch_s = BestOf(repeat, [&] {
    kernels::HashIndex index;
    index.Reserve(build_keys.size());
    std::vector<uint32_t> keys;
    std::vector<std::vector<uint32_t>> cells_of;  // grouped build rows
    for (uint32_t k : build_keys) {
      auto [id, inserted] = index.FindOrInsert(
          kernels::MixId(k), static_cast<uint32_t>(keys.size()),
          [&](uint32_t cand) { return keys[cand] == k; });
      if (inserted) {
        keys.push_back(k);
        cells_of.emplace_back();
      }
      cells_of[id].insert(cells_of[id].end(), {k, k + 1, k + 2});
    }
    uint64_t sum = 0;
    for (uint32_t k : probe_keys) {
      uint32_t id = index.Find(kernels::MixId(k), [&](uint32_t cand) {
        return keys[cand] == k;
      });
      if (id == kernels::HashIndex::kNotFound) continue;
      for (uint32_t c : cells_of[id]) sum += c;
    }
    batch_sum = sum;
  });

  return BenchResult{"hash-join probe", scalar_s, batch_s, rows,
                     scalar_sum == batch_sum};
}

// ---------------------------------------------------------------------------
// batch aggregate: COUNT(*) + SUM(v) grouped by an encoded key string —
// the GroupBy / TG_AggJoin partial-aggregation table.

BenchResult BenchBatchAggregate(size_t rows, int repeat) {
  const size_t kGroups = 512;
  rapida::rdf::Dictionary dict;
  std::vector<uint32_t> group_of(rows);
  std::vector<rapida::rdf::TermId> value_of(rows);
  for (size_t i = 0; i < rows; ++i) {
    group_of[i] = static_cast<uint32_t>(NextRand() % kGroups);
    value_of[i] = rapida::analytics::InternNumber(
        &dict, static_cast<double>(NextRand() % 100));
  }
  auto make_aggs = [] {
    std::vector<Aggregator> aggs;
    aggs.emplace_back(rapida::sparql::AggFunc::kCount, false, " ");
    aggs.emplace_back(rapida::sparql::AggFunc::kSum, false, " ");
    return aggs;
  };

  std::string scalar_flush, batch_flush;

  double scalar_s = BestOf(repeat, [&] {
    std::map<std::string, std::vector<Aggregator>> table;
    for (size_t i = 0; i < rows; ++i) {
      std::vector<rapida::rdf::TermId> key{group_of[i]};
      auto [it, inserted] =
          table.emplace(rapida::engine::EncodeRow(key), make_aggs());
      it->second[0].AddRow();
      it->second[1].AddTerm(value_of[i], dict);
    }
    scalar_flush.clear();
    for (auto& [key, aggs] : table) {
      scalar_flush += key;
      for (const Aggregator& a : aggs) {
        scalar_flush += '|';
        scalar_flush += a.SerializePartial();
      }
      scalar_flush += '\n';
    }
  });

  double batch_s = BestOf(repeat, [&] {
    kernels::HashIndex index;
    std::vector<std::string> keys;
    std::vector<std::vector<Aggregator>> agg_rows;
    std::string key_buf;
    for (size_t i = 0; i < rows; ++i) {
      key_buf.clear();
      kernels::AppendDecimal(&key_buf, group_of[i]);
      auto [id, inserted] = index.FindOrInsert(
          rapida::mr::HashKey(key_buf),
          static_cast<uint32_t>(keys.size()),
          [&](uint32_t cand) { return keys[cand] == key_buf; });
      if (inserted) {
        keys.push_back(key_buf);
        agg_rows.push_back(make_aggs());
      }
      agg_rows[id][0].AddRow();
      agg_rows[id][1].AddTerm(value_of[i], dict);
    }
    // Flush sorted so the verification against std::map order passes; the
    // real operators flush insertion-ordered (the shuffle sorts anyway).
    std::vector<uint32_t> order(keys.size());
    for (uint32_t i = 0; i < order.size(); ++i) order[i] = i;
    std::sort(order.begin(), order.end(),
              [&](uint32_t a, uint32_t b) { return keys[a] < keys[b]; });
    batch_flush.clear();
    for (uint32_t id : order) {
      batch_flush += keys[id];
      for (const Aggregator& a : agg_rows[id]) {
        batch_flush += '|';
        batch_flush += a.SerializePartial();
      }
      batch_flush += '\n';
    }
  });

  return BenchResult{"batch aggregate", scalar_s, batch_s, rows,
                     scalar_flush == batch_flush};
}

// ---------------------------------------------------------------------------
// batch tokenize: materialize field columns for a split's values once vs
// re-tokenizing each record (both checksum every field byte).

BenchResult BenchBatchTokenize(size_t rows, int repeat) {
  std::vector<std::string> values(rows);
  for (size_t i = 0; i < rows; ++i) {
    std::string v;
    kernels::AppendDecimal(&v, NextRand() % 100000);
    int fields = 2 + static_cast<int>(NextRand() % 6);
    for (int f = 0; f < fields; ++f) {
      v += ';';
      kernels::AppendDecimal(&v, NextRand() % 1000);
      v += ',';
      kernels::AppendDecimal(&v, NextRand() % 100000);
    }
    values[i] = std::move(v);
  }
  std::vector<rapida::mr::Record> records(rows);
  std::vector<rapida::mr::TaggedRecord> tagged(rows);
  for (size_t i = 0; i < rows; ++i) {
    records[i] = rapida::mr::MakeRecord("", values[i]);
    tagged[i] = rapida::mr::TaggedRecord{&records[i], 0};
  }

  uint64_t scalar_sum = 0, batch_sum = 0;

  // Two consuming passes per row — arity validation, then a field
  // checksum — the access pattern the kernels exploit: tokenize once per
  // batch, read the offset columns many times. The forward-only scalar
  // tokenizer has to rescan the value for every pass.
  double scalar_s = BestOf(repeat, [&] {
    uint64_t sum = 0;
    for (size_t i = 0; i < rows; ++i) {
      std::string_view part;
      size_t arity = 0;
      rapida::FieldTokenizer count_pass(values[i], ';');
      while (count_pass.Next(&part)) ++arity;
      sum += arity;
      rapida::FieldTokenizer checksum_pass(values[i], ';');
      while (checksum_pass.Next(&part)) {
        for (char c : part) sum += static_cast<unsigned char>(c);
        sum += part.size();
      }
    }
    scalar_sum = sum;
  });

  // The scratch lives across iterations, as it does across batches inside a
  // map task: TokenizeValues Clear()s it but keeps the warm capacity.
  kernels::FieldColumns cols;
  double batch_s = BestOf(repeat, [&] {
    kernels::TokenizeValues(tagged.data(), tagged.size(), ';', &cols);
    uint64_t sum = 0;
    for (size_t r = 0; r < cols.num_rows(); ++r) {
      sum += cols.row_end[r] - cols.row_begin(r);
    }
    for (std::string_view part : cols.fields) {
      for (char c : part) sum += static_cast<unsigned char>(c);
      sum += part.size();
    }
    batch_sum = sum;
  });

  return BenchResult{"batch tokenize", scalar_s, batch_s, rows,
                     scalar_sum == batch_sum};
}

// ---------------------------------------------------------------------------

std::string GitRevision() {
  std::string rev = "unknown";
  FILE* p = ::popen("git rev-parse --short HEAD 2>/dev/null", "r");
  if (p != nullptr) {
    char buf[64] = {0};
    if (std::fgets(buf, sizeof(buf), p) != nullptr) {
      std::string s(buf);
      while (!s.empty() && (s.back() == '\n' || s.back() == '\r')) {
        s.pop_back();
      }
      if (!s.empty()) rev = s;
    }
    ::pclose(p);
  }
  return rev;
}

void AppendJson(const std::string& path,
                const std::vector<BenchResult>& results) {
  FILE* f = std::fopen(path.c_str(), "a");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot append to %s\n", path.c_str());
    return;
  }
  std::string rev = GitRevision();
  for (const BenchResult& r : results) {
    std::fprintf(f,
                 "{\"bench\":\"microbench %s\",\"git_rev\":\"%s\","
                 "\"rows\":%zu,\"scalar_seconds\":%.6f,"
                 "\"batch_seconds\":%.6f,\"speedup\":%.2f,"
                 "\"verified\":%s}\n",
                 r.name.c_str(), rev.c_str(), r.rows, r.scalar_seconds,
                 r.batch_seconds, r.Speedup(),
                 r.verified ? "true" : "false");
  }
  std::fclose(f);
}

}  // namespace

int main(int argc, char** argv) {
  size_t rows = 1 << 20;
  int repeat = 3;
  bool json = false;
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--rows=", 0) == 0) {
      rows = static_cast<size_t>(std::atoll(arg.c_str() + 7));
    } else if (arg.rfind("--repeat=", 0) == 0) {
      repeat = std::atoi(arg.c_str() + 9);
    } else if (arg == "--json") {
      json = true;
    } else if (arg.rfind("--json=", 0) == 0) {
      json = true;
      json_path = arg.substr(7);
    } else {
      std::fprintf(stderr,
                   "usage: %s [--rows=N] [--repeat=K] [--json[=PATH]]\n",
                   argv[0]);
      return 2;
    }
  }

  std::vector<BenchResult> results;
  results.push_back(BenchHashJoinProbe(rows, repeat));
  results.push_back(BenchBatchAggregate(rows / 4, repeat));
  results.push_back(BenchBatchTokenize(rows / 4, repeat));

  std::printf("%-18s %12s %12s %9s %s\n", "bench", "scalar(s)", "batch(s)",
              "speedup", "verified");
  bool all_ok = true;
  for (const BenchResult& r : results) {
    std::printf("%-18s %12.4f %12.4f %8.2fx %s\n", r.name.c_str(),
                r.scalar_seconds, r.batch_seconds, r.Speedup(),
                r.verified ? "yes" : "MISMATCH");
    all_ok = all_ok && r.verified;
  }

  if (json) {
    if (json_path.empty()) {
      const char* env = std::getenv("RAPIDA_BENCH_JSON");
      json_path = (env != nullptr && *env != '\0') ? env
                                                   : "BENCH_mapreduce.json";
    }
    AppendJson(json_path, results);
    std::printf("(json appended to %s)\n", json_path.c_str());
  }
  return all_ok ? 0 : 1;
}
