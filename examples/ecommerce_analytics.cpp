// E-commerce BI scenario (the BSBM Business Intelligence use case the
// paper's evaluation builds on): generate a product/offer/vendor dataset
// and compare all four systems on a multi-grouping analytical query —
// "average price per country-feature combination vs. per country".
//
// Build & run:  ./build/examples/ecommerce_analytics
#include <cstdio>

#include "analytics/analytical_query.h"
#include "engines/engines.h"
#include "sparql/parser.h"
#include "workload/bsbm.h"
#include "workload/catalog.h"

int main() {
  using namespace rapida;

  workload::BsbmConfig config;
  config.num_products = 1500;
  engine::Dataset dataset(workload::GenerateBsbm(config));
  std::printf("generated BSBM-like dataset: %zu triples\n",
              dataset.graph().size());

  auto cq = workload::FindQuery("MG3");
  auto parsed = sparql::ParseQuery((*cq)->sparql);
  auto query = analytics::AnalyzeQuery(**parsed);
  if (!query.ok()) {
    std::printf("analyze failed: %s\n", query.status().ToString().c_str());
    return 1;
  }
  std::printf("\nquery MG3 — %s:\n%s\n\n", (*cq)->description.c_str(),
              (*cq)->sparql.c_str());

  mr::ClusterConfig cluster_cfg;  // 10-node model
  std::printf("%-18s %8s %9s %10s %10s\n", "engine", "cycles", "map-only",
              "shuffle KB", "sim secs");
  analytics::BindingTable last;
  for (const auto& eng : engine::MakeAllEngines()) {
    mr::Cluster cluster(cluster_cfg, &dataset.dfs());
    engine::ExecStats stats;
    auto result = eng->Execute(*query, &dataset, &cluster, &stats);
    if (!result.ok()) {
      std::printf("%-18s failed: %s\n", eng->name().c_str(),
                  result.status().ToString().c_str());
      continue;
    }
    std::printf("%-18s %8d %9d %10.1f %10.1f\n", eng->name().c_str(),
                stats.workflow.NumCycles(),
                stats.workflow.NumMapOnlyCycles(),
                stats.workflow.TotalShuffleBytes() / 1024.0,
                stats.workflow.TotalSimSeconds());
    last = std::move(*result);
  }

  std::printf("\nsample of the (identical) result, %zu rows total:\n%s",
              last.NumRows(), last.ToString(dataset.dict(), 8).c_str());
  return 0;
}
