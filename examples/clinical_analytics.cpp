// Life-science scenario from the paper's introduction (ReDD-Observatory /
// chemogenomics): analytical queries over a Chem2Bio2RDF-like warehouse
// linking compounds, bioassays, genes, drugs and publications. Runs a
// single-grouping query (G5, drug-discovery style) and a multi-grouping
// comparison (MG6), showing the composite-pattern rewriting at work.
//
// Build & run:  ./build/examples/clinical_analytics
#include <cstdio>

#include "analytics/analytical_query.h"
#include "engines/engines.h"
#include "ntga/overlap.h"
#include "sparql/parser.h"
#include "workload/catalog.h"
#include "workload/chem2bio.h"

namespace {

void RunQuery(rapida::engine::Dataset* dataset, const char* id) {
  auto cq = rapida::workload::FindQuery(id);
  if (!cq.ok()) return;
  std::printf("\n===== %s — %s =====\n", id, (*cq)->description.c_str());
  auto parsed = rapida::sparql::ParseQuery((*cq)->sparql);
  auto query = rapida::analytics::AnalyzeQuery(**parsed);
  if (!query.ok()) {
    std::printf("analyze failed: %s\n", query.status().ToString().c_str());
    return;
  }

  if (query->groupings.size() == 2) {
    rapida::ntga::OverlapResult overlap = rapida::ntga::FindOverlap(
        query->groupings[0].pattern, query->groupings[1].pattern);
    std::printf("overlap: %s\n", overlap.explanation.c_str());
  }

  for (const auto& eng : rapida::engine::MakeAllEngines()) {
    rapida::mr::Cluster cluster(rapida::mr::ClusterConfig{},
                                &dataset->dfs());
    rapida::engine::ExecStats stats;
    auto result = eng->Execute(*query, dataset, &cluster, &stats);
    if (!result.ok()) {
      std::printf("%-18s failed: %s\n", eng->name().c_str(),
                  result.status().ToString().c_str());
      continue;
    }
    std::printf("%-18s: %2d cycles, %6.1f sim secs, %4zu result rows\n",
                eng->name().c_str(), stats.workflow.NumCycles(),
                stats.workflow.TotalSimSeconds(), result->NumRows());
  }
}

}  // namespace

int main() {
  rapida::workload::ChemConfig config;
  rapida::engine::Dataset dataset(
      rapida::workload::GenerateChem2Bio(config));
  std::printf("generated chemogenomics dataset: %zu triples\n",
              dataset.graph().size());
  RunQuery(&dataset, "G5");
  RunQuery(&dataset, "MG6");
  RunQuery(&dataset, "MG9");
  return 0;
}
