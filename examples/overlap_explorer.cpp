// Walks through the paper's Figure 3: why AQ2's graph patterns overlap
// (and can share execution through a composite graph pattern) while AQ3's
// do not (role-inequivalent join variables). Prints the star
// decomposition, the overlap verdict with its explanation, and — for the
// overlapping case — the composite pattern with primary/secondary
// properties and per-pattern α conditions.
//
// Build & run:  ./build/examples/overlap_explorer
#include <cstdio>

#include "ntga/overlap.h"
#include "sparql/parser.h"

namespace {

rapida::ntga::StarGraph Decompose(const char* what, const char* query) {
  auto parsed = rapida::sparql::ParseQuery(query);
  if (!parsed.ok()) {
    std::printf("parse failed: %s\n", parsed.status().ToString().c_str());
    return {};
  }
  auto sg = rapida::ntga::DecomposeToStars((*parsed)->where.triples);
  std::printf("%s:\n%s\n", what, sg->ToString().c_str());
  return std::move(*sg);
}

void Explore(const char* name, const char* gp1_text, const char* gp2_text) {
  std::printf("==================== %s ====================\n", name);
  rapida::ntga::StarGraph gp1 = Decompose("GP1", gp1_text);
  rapida::ntga::StarGraph gp2 = Decompose("GP2", gp2_text);
  rapida::ntga::OverlapResult overlap = rapida::ntga::FindOverlap(gp1, gp2);
  std::printf("Does GP1 overlap GP2?  %s\n",
              overlap.overlaps ? "YES" : "NO");
  std::printf("  %s\n\n", overlap.explanation.c_str());
  if (overlap.overlaps) {
    auto comp = rapida::ntga::BuildComposite(gp1, gp2, overlap);
    if (comp.ok()) {
      std::printf("Composite graph pattern GP':\n%s\n",
                  comp->ToString().c_str());
    }
  }
}

}  // namespace

int main() {
  // AQ2 (Figure 3, top): same type restriction, same join structure.
  Explore("AQ2 — overlapping (Fig. 3 top)",
          "SELECT ?s1 { ?s1 a <PT18> . "
          "  ?s2 <pr> ?s1 . ?s2 <pc> ?o1 . ?s2 <ve> ?o2 . }",
          "SELECT ?s1 { ?s1 a <PT18> . ?s1 <pf> ?o3 . "
          "  ?s2 <pr> ?s1 . ?s2 <pc> ?o4 . }");

  // AQ3 (Figure 3, bottom): stars overlap but the join variable plays a
  // subject role in GP1's second star and an object role in GP2's —
  // not role-equivalent, so no shared execution.
  Explore("AQ3 — NOT overlapping (Fig. 3 bottom)",
          "SELECT ?s3 { ?s3 <pr> ?s1 . ?s3 <pc> ?o5 . ?s3 <ve> ?s4 . "
          "  ?s4 <cn> ?o6 . }",
          "SELECT ?s3 { ?s3 <pr> ?s1 . ?s3 <pc> ?o5 . ?s3 <ve> ?o6 . "
          "  ?s4 <cn> ?o6 . }");
  return 0;
}
