// Differential fuzzing harness CLI: generates random analytical queries
// plus randomized workload datasets from a seed, runs every query on all
// four engines at multiple thread counts, and cross-checks the normalized
// result multisets against the in-memory reference evaluator.
//
// Usage:
//   rapida_fuzz                      # corpus run, seeds 1..200
//   rapida_fuzz --seeds=50           # corpus run, seeds 1..50
//   rapida_fuzz --start=1000 --seeds=50     # seeds 1000..1049
//   rapida_fuzz --seed=42            # one seed, print query + verdict
//   rapida_fuzz --seed=42 --shrink   # minimize a failing seed to a repro
//   rapida_fuzz --threads=1,8        # exec_threads values to cross-check
//   rapida_fuzz --inject=drop-row --seeds=20 --shrink
//                                    # sabotage RAPIDAnalytics, prove the
//                                    # harness catches + shrinks the bug
//   rapida_fuzz --no-kernels         # force the vectorized-kernels pass
//                                    # off (scalar operators); run both
//                                    # ways to cross-check the kernels
//   rapida_fuzz --shards=4           # additionally run every engine on a
//                                    # 4-shard data plane (both placement
//                                    # schemes), cross-checking results +
//                                    # cycle/shuffle counters against the
//                                    # unsharded baseline (comma list ok)
//   rapida_fuzz --grammar=opt-union  # bias the query generator hard
//                                    # toward OPTIONAL tails and UNION
//                                    # chains (default grammar includes
//                                    # them at lower rates)
//   rapida_fuzz --grammar=multival   # bias the DATA generator toward
//                                    # 3-10 objects per predicate-subject
//                                    # pair — the factorized
//                                    # (d-representation) stress regime
//   rapida_fuzz --no-factorize       # force factorized intermediates off
//                                    # (flat pipelines); run both ways to
//                                    # cross-check the d-representation
//   rapida_fuzz --service --seeds=50 # additionally push every query
//                                    # through a QueryService (caching,
//                                    # dedup, shared-scan batching) and
//                                    # cross-check against the reference
//
// Exit status: 0 = all seeds passed, 1 = at least one failure.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "testing/differential.h"
#include "testing/shrink.h"

namespace {

using rapida::difftest::DiffFailure;
using rapida::difftest::DiffOptions;
using rapida::difftest::FaultKind;
using rapida::difftest::FuzzCase;
using rapida::difftest::GenOptions;

struct Args {
  uint64_t start = 1;
  uint64_t seeds = 200;
  int64_t one_seed = -1;
  bool shrink = false;
  bool verbose = false;
  std::vector<int> threads = {1, 8};
  std::vector<int> shards;
  FaultKind fault = FaultKind::kNone;
  bool service = false;
  bool no_kernels = false;
  bool no_factorize = false;
  GenOptions gen;
};

bool ParseArgs(int argc, char** argv, Args* out) {
  for (int i = 1; i < argc; ++i) {
    const char* a = argv[i];
    if (std::strncmp(a, "--seeds=", 8) == 0) {
      out->seeds = std::strtoull(a + 8, nullptr, 10);
    } else if (std::strncmp(a, "--start=", 8) == 0) {
      out->start = std::strtoull(a + 8, nullptr, 10);
    } else if (std::strncmp(a, "--seed=", 7) == 0) {
      out->one_seed = std::strtoll(a + 7, nullptr, 10);
    } else if (std::strcmp(a, "--shrink") == 0) {
      out->shrink = true;
    } else if (std::strcmp(a, "--verbose") == 0) {
      out->verbose = true;
    } else if (std::strcmp(a, "--service") == 0) {
      out->service = true;
    } else if (std::strcmp(a, "--no-kernels") == 0) {
      out->no_kernels = true;
    } else if (std::strcmp(a, "--no-factorize") == 0) {
      out->no_factorize = true;
    } else if (std::strncmp(a, "--grammar=", 10) == 0) {
      if (std::strcmp(a + 10, "opt-union") == 0) {
        out->gen.optional_bias = 0.70;
        out->gen.union_bias = 0.50;
      } else if (std::strcmp(a + 10, "multival") == 0) {
        out->gen.multival = true;
      } else if (std::strcmp(a + 10, "default") != 0) {
        std::fprintf(stderr, "unknown --grammar: %s\n", a + 10);
        return false;
      }
    } else if (std::strncmp(a, "--shards=", 9) == 0) {
      for (const char* p = a + 9; *p != '\0';) {
        out->shards.push_back(std::atoi(p));
        const char* comma = std::strchr(p, ',');
        if (comma == nullptr) break;
        p = comma + 1;
      }
      if (out->shards.empty()) return false;
    } else if (std::strncmp(a, "--threads=", 10) == 0) {
      out->threads.clear();
      for (const char* p = a + 10; *p != '\0';) {
        out->threads.push_back(std::atoi(p));
        const char* comma = std::strchr(p, ',');
        if (comma == nullptr) break;
        p = comma + 1;
      }
      if (out->threads.empty()) return false;
    } else if (std::strncmp(a, "--inject=", 9) == 0) {
      if (std::strcmp(a + 9, "drop-row") == 0) {
        out->fault = FaultKind::kDropRow;
      } else if (std::strcmp(a + 9, "perturb-aggregate") == 0) {
        out->fault = FaultKind::kPerturbAggregate;
      } else {
        std::fprintf(stderr, "unknown --inject fault: %s\n", a + 9);
        return false;
      }
    } else {
      std::fprintf(stderr, "unknown argument: %s\n", a);
      return false;
    }
  }
  return true;
}

/// Runs one seed; returns true on pass. On failure prints the verdict and
/// (with --shrink) the minimized repro.
const char* InjectFlag(FaultKind fault) {
  switch (fault) {
    case FaultKind::kDropRow: return " --inject=drop-row";
    case FaultKind::kPerturbAggregate: return " --inject=perturb-aggregate";
    case FaultKind::kNone: break;
  }
  return "";
}

const char* GrammarFlag(const Args& args) {
  if (args.gen.multival) return " --grammar=multival";
  return args.gen.optional_bias > 0.5 ? " --grammar=opt-union" : "";
}

bool RunSeed(uint64_t seed, const Args& args, const DiffOptions& opts) {
  FuzzCase c = rapida::difftest::MakeFuzzCase(seed, args.gen);
  if (args.verbose) {
    std::printf("--- seed %llu (%s, %zu triples) ---\n%s\n",
                static_cast<unsigned long long>(seed), c.dataset.c_str(),
                c.triples.size(), c.query->ToString().c_str());
  }
  DiffFailure f = rapida::difftest::RunDifferential(c, opts);
  if (!f.failed && args.service) {
    f = rapida::difftest::RunServiceDifferential(c);
  }
  if (!f.failed) {
    if (args.verbose) std::printf("seed %llu: ok\n",
                                  static_cast<unsigned long long>(seed));
    return true;
  }
  std::printf("seed %llu FAILED: %s\n",
              static_cast<unsigned long long>(seed), f.ToString().c_str());
  if (args.shrink) {
    std::printf("shrinking...\n");
    rapida::difftest::ShrinkResult r =
        rapida::difftest::Shrink(c, opts);
    std::printf("shrunk after %d differential runs\n%s",
                r.predicate_calls,
                rapida::difftest::FormatRepro(r.reduced, r.failure).c_str());
    std::printf("reproduce with: rapida_fuzz --seed=%llu%s%s --shrink\n",
                static_cast<unsigned long long>(seed),
                InjectFlag(opts.fault), GrammarFlag(args));
  } else {
    std::printf("%s", rapida::difftest::FormatRepro(c, f).c_str());
    std::printf("minimize with: rapida_fuzz --seed=%llu%s%s --shrink\n",
                static_cast<unsigned long long>(seed),
                InjectFlag(opts.fault), GrammarFlag(args));
  }
  return false;
}

}  // namespace

int main(int argc, char** argv) {
  Args args;
  if (!ParseArgs(argc, argv, &args)) return 2;

  DiffOptions opts;
  opts.thread_counts = args.threads;
  opts.fault = args.fault;
  if (args.fault != FaultKind::kNone) opts.fault_engine = "RAPIDAnalytics";
  opts.engine_options.vectorized_kernels = !args.no_kernels;
  opts.engine_options.factorized_intermediates = !args.no_factorize;
  opts.shard_counts = args.shards;

  if (args.one_seed >= 0) {
    return RunSeed(static_cast<uint64_t>(args.one_seed), args, opts) ? 0 : 1;
  }

  uint64_t failures = 0;
  for (uint64_t s = args.start; s < args.start + args.seeds; ++s) {
    if (!RunSeed(s, args, opts)) ++failures;
    if ((s - args.start + 1) % 25 == 0) {
      std::printf("[%llu/%llu] seeds done, %llu failure(s)\n",
                  static_cast<unsigned long long>(s - args.start + 1),
                  static_cast<unsigned long long>(args.seeds),
                  static_cast<unsigned long long>(failures));
      std::fflush(stdout);
    }
  }
  std::printf("ran %llu seeds x %zu thread configs: %llu failure(s)\n",
              static_cast<unsigned long long>(args.seeds),
              args.threads.size(),
              static_cast<unsigned long long>(failures));
  return failures == 0 ? 0 : 1;
}
