// Ablation for the paper's triplegroup pre-processing (§5.1): storing
// subject triplegroups "in text files based on equivalence class" lets
// the NTGA engines scan only the classes whose property sets cover a
// star's primary properties. With the partitioning off, every star scan
// reads the entire triplegroup dump.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench/bench_common.h"
#include "workload/bsbm.h"

namespace {

rapida::engine::Dataset* DatasetWithEc(bool partitioned) {
  static auto* cache =
      new std::map<bool, std::unique_ptr<rapida::engine::Dataset>>();
  auto it = cache->find(partitioned);
  if (it == cache->end()) {
    rapida::workload::BsbmConfig cfg;
    cfg.num_products = 2000;
    rapida::engine::Dataset::Options opts;
    opts.tg_partition_by_ec = partitioned;
    it = cache
             ->emplace(partitioned,
                       std::make_unique<rapida::engine::Dataset>(
                           rapida::workload::GenerateBsbm(cfg), opts))
             .first;
  }
  return it->second.get();
}

void Run(const std::string& query, benchmark::State& state,
         bool partitioned) {
  auto eng = rapida::bench::MakeEngine("RAPIDAnalytics");
  rapida::engine::Dataset* dataset = DatasetWithEc(partitioned);
  rapida::bench::RunResult r;
  for (auto _ : state) {
    r = rapida::bench::RunOne(
        eng.get(), query, dataset,
        rapida::bench::ClusterModel("bsbm", rapida::bench::Scale::kSmall,
                                    10));
    if (!r.ok) {
      state.SkipWithError(r.error.c_str());
      return;
    }
  }
  state.counters["SimSeconds"] = r.sim_seconds;
  state.counters["ScanMB"] =
      static_cast<double>(r.scan_bytes) / (1024.0 * 1024.0);
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  for (const char* q : {"G1", "MG1", "MG3"}) {
    std::string query = q;
    benchmark::RegisterBenchmark(
        ("ablation/ec_partitioning/" + query + "/by_class").c_str(),
        [query](benchmark::State& s) { Run(query, s, true); })
        ->Iterations(1)
        ->Unit(benchmark::kMillisecond);
    benchmark::RegisterBenchmark(
        ("ablation/ec_partitioning/" + query + "/single_file").c_str(),
        [query](benchmark::State& s) { Run(query, s, false); })
        ->Iterations(1)
        ->Unit(benchmark::kMillisecond);
  }
  benchmark::RunSpecifiedBenchmarks();
  std::printf("\nEC partitioning prunes triplegroup scans to the classes "
              "covering each star's properties (compare ScanMB).\n");
  benchmark::Shutdown();
  return 0;
}
