// Reproduces Figure 8(b): MG1-MG4 on the larger BSBM dataset (50-node
// model). Paper shape: RAPIDAnalytics' relative gains over the Hive
// approaches grow with scale (90-93% -> 97% for MG1-MG2).
#include <benchmark/benchmark.h>

#include "bench/bench_common.h"

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);

  std::vector<rapida::bench::RunResult> results;
  rapida::bench::RegisterQueryBenchmarks(
      "fig8b", {"MG1", "MG2", "MG3", "MG4"},
      rapida::bench::AllEngineNames(), "bsbm",
      rapida::bench::Scale::kLarge, /*num_nodes=*/50, &results);

  benchmark::RunSpecifiedBenchmarks();
  rapida::bench::PrintTable(
      "Figure 8(b) — MG1-MG4 on BSBM-large (50-node model)",
      rapida::bench::AllEngineNames(), results);
  benchmark::Shutdown();
  return 0;
}
