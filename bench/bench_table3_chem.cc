// Reproduces Table 3 (right): single-grouping queries G5-G9 on the
// Chem2Bio2RDF-like dataset. Paper shape: G5-G8 touch small VP tables that
// Hive evaluates with map-joins (near-parity, Hive sometimes ahead);
// G9 involves the large Medline relation, where RAPIDAnalytics shows a
// large (~80%) gain.
#include <benchmark/benchmark.h>

#include "bench/bench_common.h"

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);

  std::vector<rapida::bench::RunResult> results;
  rapida::bench::RegisterQueryBenchmarks(
      "table3/chem", {"G5", "G6", "G7", "G8", "G9"},
      rapida::bench::HiveVsRapidAnalytics(), "chem",
      rapida::bench::Scale::kSmall, /*num_nodes=*/10, &results);

  benchmark::RunSpecifiedBenchmarks();
  rapida::bench::PrintTable(
      "Table 3 (right) — G5-G9 on Chem2Bio2RDF (10-node model)",
      rapida::bench::HiveVsRapidAnalytics(), results);
  benchmark::Shutdown();
  return 0;
}
