// Reproduces Figure 8(c): MG6-MG10 on the Chem2Bio2RDF-like dataset.
// Paper shape: MG6-MG8 (small VP tables, Hive map-joins) show moderate
// RAPIDAnalytics gains (40-60%); MG9-MG10 (large Medline relations) show
// ~90% gains.
#include <benchmark/benchmark.h>

#include "bench/bench_common.h"

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);

  std::vector<rapida::bench::RunResult> results;
  rapida::bench::RegisterQueryBenchmarks(
      "fig8c", {"MG6", "MG7", "MG8", "MG9", "MG10"},
      rapida::bench::AllEngineNames(), "chem",
      rapida::bench::Scale::kSmall, /*num_nodes=*/10, &results);

  benchmark::RunSpecifiedBenchmarks();
  rapida::bench::PrintTable(
      "Figure 8(c) — MG6-MG10 on Chem2Bio2RDF (10-node model)",
      rapida::bench::AllEngineNames(), results);
  benchmark::Shutdown();
  return 0;
}
