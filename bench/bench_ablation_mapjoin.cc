// Ablation for Hive's map-join optimization (§5.2 "Real-world RDF
// Analytics"): queries over small VP tables (Chem2Bio2RDF G5-G8) run as
// chains of map-only cycles when map-joins are on; disabling them forces
// full shuffles per join. This is the effect that lets Hive approach (and
// once beat) RAPIDAnalytics on G6/G7.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench/bench_common.h"

namespace {

void Run(const std::string& query, benchmark::State& state,
         bool map_joins) {
  rapida::engine::EngineOptions options;
  options.enable_map_joins = map_joins;
  options.map_join_threshold_bytes = 8 * 1024;
  auto eng = rapida::bench::MakeEngine("Hive (Naive)", options);
  rapida::engine::Dataset* dataset =
      rapida::bench::GetDataset("chem", rapida::bench::Scale::kSmall);
  rapida::bench::RunResult r;
  for (auto _ : state) {
    r = rapida::bench::RunOne(eng.get(), query, dataset,
                              rapida::bench::ClusterModel("chem", rapida::bench::Scale::kSmall, 10));
    if (!r.ok) {
      state.SkipWithError(r.error.c_str());
      return;
    }
  }
  state.counters["SimSeconds"] = r.sim_seconds;
  state.counters["MapOnlyCycles"] = r.map_only_cycles;
  state.counters["ShuffleMB"] =
      static_cast<double>(r.shuffle_bytes) / (1024.0 * 1024.0);
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  for (const char* q : {"G5", "G6", "G7", "G8", "G9"}) {
    std::string query = q;
    benchmark::RegisterBenchmark(
        ("ablation/mapjoin/" + query + "/on").c_str(),
        [query](benchmark::State& s) { Run(query, s, true); })
        ->Iterations(1)
        ->Unit(benchmark::kMillisecond);
    benchmark::RegisterBenchmark(
        ("ablation/mapjoin/" + query + "/off").c_str(),
        [query](benchmark::State& s) { Run(query, s, false); })
        ->Iterations(1)
        ->Unit(benchmark::kMillisecond);
  }
  benchmark::RunSpecifiedBenchmarks();
  std::printf("\nMap-joins convert small-table join cycles to map-only "
              "cycles (MapOnlyCycles counter) and remove their shuffle.\n");
  benchmark::Shutdown();
  return 0;
}
