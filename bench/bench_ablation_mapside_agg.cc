// Ablation for Algorithm 3's map-side hash pre-aggregation (multiAggMap):
// with it, mappers ship one partial aggregate per (grouping, key) instead
// of one record per solution mapping — the shuffle shrinks by orders of
// magnitude on low-cardinality groupings.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench/bench_common.h"

namespace {

void Run(const std::string& engine_name, const std::string& query,
         benchmark::State& state, bool partial) {
  rapida::engine::EngineOptions options;
  options.partial_aggregation = partial;
  auto eng = rapida::bench::MakeEngine(engine_name, options);
  rapida::engine::Dataset* dataset =
      rapida::bench::GetDataset("bsbm", rapida::bench::Scale::kSmall);
  rapida::bench::RunResult r;
  for (auto _ : state) {
    r = rapida::bench::RunOne(eng.get(), query, dataset,
                              rapida::bench::ClusterModel("bsbm", rapida::bench::Scale::kSmall, 10));
    if (!r.ok) {
      state.SkipWithError(r.error.c_str());
      return;
    }
  }
  state.counters["SimSeconds"] = r.sim_seconds;
  state.counters["ShuffleMB"] =
      static_cast<double>(r.shuffle_bytes) / (1024.0 * 1024.0);
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  for (const char* e : {"RAPIDAnalytics", "Hive (Naive)"}) {
    for (const char* q : {"G1", "MG1"}) {
      std::string engine_name = e, query = q;
      benchmark::RegisterBenchmark(
          ("ablation/mapside_agg/" + engine_name + "/" + query + "/on")
              .c_str(),
          [engine_name, query](benchmark::State& s) {
            Run(engine_name, query, s, true);
          })
          ->Iterations(1)
          ->Unit(benchmark::kMillisecond);
      benchmark::RegisterBenchmark(
          ("ablation/mapside_agg/" + engine_name + "/" + query + "/off")
              .c_str(),
          [engine_name, query](benchmark::State& s) {
            Run(engine_name, query, s, false);
          })
          ->Iterations(1)
          ->Unit(benchmark::kMillisecond);
    }
  }
  benchmark::RunSpecifiedBenchmarks();
  std::printf("\nCompare ShuffleMB: map-side pre-aggregation (Alg. 3 "
              "multiAggMap) collapses the aggregation shuffle.\n");
  benchmark::Shutdown();
  return 0;
}
