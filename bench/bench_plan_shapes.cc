// Reproduces the plan-shape narrative of Figures 2 and 6: the running
// example AQ1 compiled by each system, with the per-cycle breakdown
// (what each MR cycle scans, shuffles, and writes). The relational plan
// (Fig. 2) costs 10 joins / 2 groupings across many cycles; the
// RAPIDAnalytics plan (Fig. 6b) is 1 α-join cycle + 1 parallel Agg-Join
// cycle + 1 map-only join.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "analytics/analytical_query.h"
#include "bench/bench_common.h"
#include "sparql/parser.h"
#include "workload/catalog.h"

namespace {

void PrintWorkflows() {
  using rapida::bench::GetDataset;
  using rapida::bench::MakeEngine;

  auto cq = rapida::workload::FindQuery("AQ1");
  if (!cq.ok()) return;
  auto parsed = rapida::sparql::ParseQuery((*cq)->sparql);
  if (!parsed.ok()) return;
  auto query = rapida::analytics::AnalyzeQuery(**parsed);
  if (!query.ok()) return;
  rapida::engine::Dataset* dataset =
      GetDataset("bsbm", rapida::bench::Scale::kSmall);

  std::printf("\n=== AQ1 execution workflows (Figures 2 / 6) ===\n");
  for (const std::string& name : rapida::bench::AllEngineNames()) {
    auto eng = MakeEngine(name);
    rapida::mr::Cluster cluster(rapida::bench::ClusterModel("bsbm", rapida::bench::Scale::kSmall, 10), &dataset->dfs());
    rapida::engine::ExecStats stats;
    auto result = eng->Execute(*query, dataset, &cluster, &stats);
    std::printf("\n--- %s ---\n", name.c_str());
    if (!result.ok()) {
      std::printf("failed: %s\n", result.status().ToString().c_str());
      continue;
    }
    std::printf("%s", stats.workflow.ToString().c_str());
  }
  std::fflush(stdout);
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  std::vector<rapida::bench::RunResult> results;
  rapida::bench::RegisterQueryBenchmarks(
      "plan_shapes", {"AQ1"}, rapida::bench::AllEngineNames(), "bsbm",
      rapida::bench::Scale::kSmall, /*num_nodes=*/10, &results);
  benchmark::RunSpecifiedBenchmarks();
  rapida::bench::PrintTable("AQ1 (running example, Fig. 1)",
                            rapida::bench::AllEngineNames(), results);
  PrintWorkflows();
  benchmark::Shutdown();
  return 0;
}
