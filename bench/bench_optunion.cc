// Fig. 8-shaped bench for the OPTIONAL/UNION surface: the MG1-style
// variants MG-OPT (left star-join with an unbound-capable group key) and
// MG-UNION (3-arm union distributed over the detailed grouping) on
// BSBM-small, all four systems. Both take the non-conjunctive lowering —
// composite star rewriting stays off, so MQO/RAPIDAnalytics run their
// naive pipelines and the interesting numbers are the per-branch cycle
// counts of the extended planners.
#include <benchmark/benchmark.h>

#include "bench/bench_common.h"

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);

  std::vector<rapida::bench::RunResult> results;
  rapida::bench::RegisterQueryBenchmarks(
      "optunion", {"MG-OPT", "MG-UNION"}, rapida::bench::AllEngineNames(),
      "bsbm", rapida::bench::Scale::kSmall, /*num_nodes=*/10, &results);

  benchmark::RunSpecifiedBenchmarks();
  rapida::bench::PrintTable(
      "OPTIONAL/UNION — MG-OPT, MG-UNION on BSBM-small (10-node model)",
      rapida::bench::AllEngineNames(), results);
  benchmark::Shutdown();
  return 0;
}
