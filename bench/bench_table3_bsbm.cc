// Reproduces Table 3 (left): single-grouping queries G1-G4 on the
// BSBM-like datasets at two scales, Hive (Naive) vs RAPIDAnalytics.
// Paper shape: Hive needs 4 MR cycles, RAPIDAnalytics 2, with a consistent
// ~80% gain that persists (or grows) at the larger scale.
#include <benchmark/benchmark.h>

#include "bench/bench_common.h"

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);

  std::vector<rapida::bench::RunResult> small_results;
  std::vector<rapida::bench::RunResult> large_results;
  const std::vector<std::string> queries = {"G1", "G2", "G3", "G4"};
  rapida::bench::RegisterQueryBenchmarks(
      "table3/bsbm_small", queries,
      rapida::bench::HiveVsRapidAnalytics(), "bsbm",
      rapida::bench::Scale::kSmall, /*num_nodes=*/10, &small_results);
  rapida::bench::RegisterQueryBenchmarks(
      "table3/bsbm_large", queries,
      rapida::bench::HiveVsRapidAnalytics(), "bsbm",
      rapida::bench::Scale::kLarge, /*num_nodes=*/50, &large_results);

  benchmark::RunSpecifiedBenchmarks();
  rapida::bench::PrintTable(
      "Table 3 (left) — G1-G4 on BSBM-small (10-node model)",
      rapida::bench::HiveVsRapidAnalytics(), small_results);
  rapida::bench::PrintTable(
      "Table 3 (left) — G1-G4 on BSBM-large (50-node model)",
      rapida::bench::HiveVsRapidAnalytics(), large_results);
  benchmark::Shutdown();
  return 0;
}
