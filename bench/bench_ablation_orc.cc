// Ablation for the ORC storage discussion (§5.2 "Scalability Study"):
// compressed VP tables shrink Hive's scans by ~85% but also spawn fewer
// mappers (splits are computed from stored bytes), reducing map-phase
// parallelism — the trade-off the paper observes on BSBM-2M.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench/bench_common.h"

namespace {

void Run(const std::string& query, benchmark::State& state, bool orc) {
  auto eng = rapida::bench::MakeEngine("Hive (Naive)");
  rapida::engine::Dataset* dataset = rapida::bench::GetDataset(
      "bsbm", rapida::bench::Scale::kLarge, /*orc=*/orc);
  rapida::bench::RunResult r;
  for (auto _ : state) {
    r = rapida::bench::RunOne(eng.get(), query, dataset,
                              rapida::bench::ClusterModel("bsbm", rapida::bench::Scale::kLarge, 10));
    if (!r.ok) {
      state.SkipWithError(r.error.c_str());
      return;
    }
  }
  state.counters["SimSeconds"] = r.sim_seconds;
  state.counters["ScanMB"] =
      static_cast<double>(r.scan_bytes) / (1024.0 * 1024.0);
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  for (const char* q : {"G1", "G3", "MG1", "MG3"}) {
    std::string query = q;
    benchmark::RegisterBenchmark(
        ("ablation/orc/" + query + "/compressed").c_str(),
        [query](benchmark::State& s) { Run(query, s, true); })
        ->Iterations(1)
        ->Unit(benchmark::kMillisecond);
    benchmark::RegisterBenchmark(
        ("ablation/orc/" + query + "/plain").c_str(),
        [query](benchmark::State& s) { Run(query, s, false); })
        ->Iterations(1)
        ->Unit(benchmark::kMillisecond);
  }
  benchmark::RunSpecifiedBenchmarks();
  std::printf("\nORC-style compression cuts ScanMB sharply; the mapper "
              "count drops with it (fewer splits), trading parallelism "
              "for I/O.\n");
  benchmark::Shutdown();
  return 0;
}
