// Reproduces Table 4: MG11-MG18 on the PubMed-like dataset, 60-node
// cluster model, all four systems. Paper shape: RAPIDAnalytics >= 93%
// gains over both Hive approaches; RAPID+ -> RAPIDAnalytics 40-48%;
// naive Hive worst on the multi-valued MeSH/chemical queries MG13-MG16.
//
// The Table 4 footnote ("* eventually failed due to insufficient HDFS
// disk space" — naive Hive on MG13) is reproduced after the main table by
// rerunning MG13 on a capacity-limited DFS sized between RAPIDAnalytics'
// and naive Hive's peak demand.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench/bench_common.h"
#include "util/string_util.h"
#include "workload/pubmed.h"

namespace {

void RunDiskCapacityDemo() {
  using rapida::bench::MakeEngine;
  using rapida::bench::RunOne;

  std::printf("\n--- Table 4 footnote: MG13 disk-space failure ---\n");
  // Peak DFS demand of each system on MG13 (uncapped).
  rapida::engine::Dataset* dataset =
      rapida::bench::GetDataset("pubmed", rapida::bench::Scale::kSmall);
  auto hive = MakeEngine("Hive (Naive)");
  auto ra = MakeEngine("RAPIDAnalytics");
  rapida::bench::RunResult hive_run =
      RunOne(hive.get(), "MG13", dataset, rapida::bench::ClusterModel("pubmed", rapida::bench::Scale::kSmall, 60));
  rapida::bench::RunResult ra_run =
      RunOne(ra.get(), "MG13", dataset, rapida::bench::ClusterModel("pubmed", rapida::bench::Scale::kSmall, 60));
  std::printf("peak DFS demand: Hive (Naive) %s, RAPIDAnalytics %s\n",
              rapida::FormatBytes(hive_run.peak_dfs_bytes).c_str(),
              rapida::FormatBytes(ra_run.peak_dfs_bytes).c_str());
  if (hive_run.peak_dfs_bytes <= ra_run.peak_dfs_bytes) {
    std::printf("(unexpected: Hive peak not larger; skipping capped rerun)\n");
    return;
  }

  // A fresh dataset capped between the two peaks: naive Hive must fail
  // with ResourceExhausted while RAPIDAnalytics completes.
  uint64_t cap = (hive_run.peak_dfs_bytes + ra_run.peak_dfs_bytes) / 2;
  rapida::workload::PubmedConfig cfg;
  cfg.num_publications = 1500;
  rapida::engine::Dataset::Options opts;
  opts.dfs_capacity = cap;
  rapida::engine::Dataset capped(rapida::workload::GeneratePubmed(cfg), opts);
  std::printf("capping DFS at %s and rerunning MG13:\n",
              rapida::FormatBytes(cap).c_str());
  rapida::bench::RunResult capped_hive =
      RunOne(hive.get(), "MG13", &capped, rapida::bench::ClusterModel("pubmed", rapida::bench::Scale::kSmall, 60));
  rapida::bench::RunResult capped_ra =
      RunOne(ra.get(), "MG13", &capped, rapida::bench::ClusterModel("pubmed", rapida::bench::Scale::kSmall, 60));
  std::printf("  Hive (Naive):   %s\n",
              capped_hive.ok ? "completed (unexpected)"
                             : capped_hive.error.c_str());
  std::printf("  RAPIDAnalytics: %s\n",
              capped_ra.ok ? "completed" : capped_ra.error.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);

  std::vector<rapida::bench::RunResult> results;
  rapida::bench::RegisterQueryBenchmarks(
      "table4",
      {"MG11", "MG12", "MG13", "MG14", "MG15", "MG16", "MG17", "MG18"},
      rapida::bench::AllEngineNames(), "pubmed",
      rapida::bench::Scale::kSmall, /*num_nodes=*/60, &results);

  benchmark::RunSpecifiedBenchmarks();
  rapida::bench::PrintTable(
      "Table 4 — MG11-MG18 on PubMed (60-node model)",
      rapida::bench::AllEngineNames(), results);
  RunDiskCapacityDemo();
  benchmark::Shutdown();
  return 0;
}
