// Ablation for Figure 6(a) vs 6(b): sequential vs parallel evaluation of
// the independent TG Agg-Joins in RAPIDAnalytics. Parallel evaluation
// merges the two grouping-aggregation cycles into one generalized
// operator cycle, saving a full scan of the composite match relation.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench/bench_common.h"

namespace {

void Run(const std::string& query, benchmark::State& state, bool parallel) {
  rapida::engine::EngineOptions options;
  options.parallel_agg_join = parallel;
  auto eng = rapida::bench::MakeEngine("RAPIDAnalytics", options);
  rapida::engine::Dataset* dataset =
      rapida::bench::GetDataset("bsbm", rapida::bench::Scale::kSmall);
  rapida::bench::RunResult r;
  for (auto _ : state) {
    r = rapida::bench::RunOne(eng.get(), query, dataset,
                              rapida::bench::ClusterModel("bsbm", rapida::bench::Scale::kSmall, 10));
    if (!r.ok) {
      state.SkipWithError(r.error.c_str());
      return;
    }
  }
  state.counters["SimSeconds"] = r.sim_seconds;
  state.counters["Cycles"] = r.cycles;
  state.counters["ScanMB"] =
      static_cast<double>(r.scan_bytes) / (1024.0 * 1024.0);
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  for (const char* q : {"MG1", "MG3", "AQ1"}) {
    std::string query = q;
    benchmark::RegisterBenchmark(
        ("ablation/parallel_agg/" + query + "/parallel").c_str(),
        [query](benchmark::State& s) { Run(query, s, true); })
        ->Iterations(1)
        ->Unit(benchmark::kMillisecond);
    benchmark::RegisterBenchmark(
        ("ablation/parallel_agg/" + query + "/sequential").c_str(),
        [query](benchmark::State& s) { Run(query, s, false); })
        ->Iterations(1)
        ->Unit(benchmark::kMillisecond);
  }
  benchmark::RunSpecifiedBenchmarks();
  std::printf("\nParallel Agg-Join (Fig. 6b) saves one full MR cycle and "
              "one scan of the composite matches vs sequential (Fig. 6a).\n");
  benchmark::Shutdown();
  return 0;
}
