#include "bench/bench_common.h"

#include <benchmark/benchmark.h>

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <thread>

#include "analytics/analytical_query.h"
#include "sparql/parser.h"
#include "util/string_util.h"
#include "workload/bsbm.h"
#include "workload/chem2bio.h"
#include "workload/pubmed.h"

namespace rapida::bench {

using engine::Dataset;
using engine::EngineOptions;
using engine::ExecStats;

namespace {

rdf::Graph BuildGraph(const std::string& workload, Scale scale) {
  if (workload == "bsbm") {
    workload::BsbmConfig cfg;
    cfg.num_products = scale == Scale::kSmall ? 2000 : 8000;
    cfg.offers_per_product = 3.0;
    return workload::GenerateBsbm(cfg);
  }
  if (workload == "chem") {
    workload::ChemConfig cfg;
    // Medline dominates the warehouse (as in the real 60 GB dataset), so
    // the G5-G8 dimension tables are a small fraction of the total — the
    // premise of the paper's map-join observations.
    cfg.num_publications = scale == Scale::kSmall ? 20000 : 60000;
    if (scale == Scale::kLarge) cfg.num_assays = 5000;
    return workload::GenerateChem2Bio(cfg);
  }
  workload::PubmedConfig cfg;
  cfg.num_publications = scale == Scale::kSmall ? 1500 : 5000;
  return workload::GeneratePubmed(cfg);
}

}  // namespace

Dataset* GetDataset(const std::string& workload, Scale scale, bool orc) {
  static auto* cache =
      new std::map<std::string, std::unique_ptr<Dataset>>();
  std::string key = workload + (scale == Scale::kSmall ? ":s" : ":l") +
                    (orc ? ":orc" : ":plain");
  auto it = cache->find(key);
  if (it == cache->end()) {
    Dataset::Options opts;
    opts.vp_compressed = orc;
    it = cache
             ->emplace(key, std::make_unique<Dataset>(
                                BuildGraph(workload, scale), opts))
             .first;
  }
  return it->second.get();
}

int BenchExecThreads() {
  const char* env = std::getenv("RAPIDA_EXEC_THREADS");
  if (env != nullptr && *env != '\0') {
    int n = std::atoi(env);
    if (n > 0) return n;
  }
  return 0;  // ClusterConfig: 0 = hardware concurrency
}

mr::ClusterConfig ClusterFor(int num_nodes) {
  mr::ClusterConfig cfg;
  cfg.num_nodes = num_nodes;
  cfg.exec_threads = BenchExecThreads();
  return cfg;
}

mr::ClusterConfig ClusterModel(const std::string& workload, Scale scale,
                               int num_nodes) {
  mr::ClusterConfig cfg = ClusterFor(num_nodes);
  double target_gb = 43.0;  // BSBM-500K
  if (workload == "bsbm" && scale == Scale::kLarge) target_gb = 172.0;
  if (workload == "chem") target_gb = 60.0;
  if (workload == "pubmed") target_gb = 230.0;
  uint64_t sample_bytes =
      GetDataset(workload, scale)->graph().EstimateSerializedBytes();
  if (sample_bytes > 0) {
    cfg.bytes_scale =
        target_gb * 1024.0 * 1024.0 * 1024.0 / static_cast<double>(sample_bytes);
  }
  return cfg;
}

std::unique_ptr<engine::Engine> MakeEngine(const std::string& name,
                                           const EngineOptions& options) {
  if (name == "Hive (Naive)") {
    return std::make_unique<engine::HiveNaiveEngine>(options);
  }
  if (name == "Hive (MQO)") {
    return std::make_unique<engine::HiveMqoEngine>(options);
  }
  if (name == "RAPID+ (Naive)") {
    return std::make_unique<engine::RapidPlusEngine>(options);
  }
  return std::make_unique<engine::RapidAnalyticsEngine>(options);
}

std::vector<std::string> AllEngineNames() {
  return {"Hive (Naive)", "Hive (MQO)", "RAPID+ (Naive)", "RAPIDAnalytics"};
}

std::vector<std::string> HiveVsRapidAnalytics() {
  return {"Hive (Naive)", "RAPIDAnalytics"};
}

RunResult RunOne(engine::Engine* eng, const std::string& query_id,
                 Dataset* dataset, const mr::ClusterConfig& cluster_cfg) {
  RunResult out;
  out.query = query_id;
  out.engine = eng->name();

  auto cq = workload::FindQuery(query_id);
  if (!cq.ok()) {
    out.error = cq.status().ToString();
    return out;
  }
  auto parsed = sparql::ParseQuery((*cq)->sparql);
  if (!parsed.ok()) {
    out.error = parsed.status().ToString();
    return out;
  }
  auto query = analytics::AnalyzeQuery(**parsed);
  if (!query.ok()) {
    out.error = query.status().ToString();
    return out;
  }

  mr::Cluster cluster(cluster_cfg, &dataset->dfs());
  dataset->dfs().ResetPeak();
  ExecStats stats;
  auto result = eng->Execute(*query, dataset, &cluster, &stats);
  out.peak_dfs_bytes = dataset->dfs().PeakStoredBytes();
  if (!result.ok()) {
    out.error = result.status().ToString();
    out.cycles = static_cast<int>(cluster.history().size());
    return out;
  }
  out.ok = true;
  out.result_rows = result->NumRows();
  out.sim_seconds = stats.workflow.TotalSimSeconds();
  out.wall_seconds = stats.wall_seconds;
  out.mr_wall_seconds = stats.workflow.TotalWallSeconds();
  out.cycles = stats.workflow.NumCycles();
  out.map_only_cycles = stats.workflow.NumMapOnlyCycles();
  out.scan_bytes = stats.workflow.TotalInputBytes();
  out.shuffle_bytes = stats.workflow.TotalShuffleBytes();
  out.write_bytes = stats.workflow.TotalOutputBytes();
  return out;
}

void PrintTable(const std::string& title,
                const std::vector<std::string>& engine_order,
                const std::vector<RunResult>& results) {
  std::printf("\n=== %s ===\n", title.c_str());
  std::printf("(cells: simulated seconds | MR cycles; engine/cluster model"
              " — compare shapes, not absolutes)\n");
  std::printf("%-8s", "Query");
  for (const std::string& e : engine_order) std::printf(" | %20s", e.c_str());
  std::printf("\n");

  // Preserve first-seen query order.
  std::vector<std::string> queries;
  for (const RunResult& r : results) {
    bool seen = false;
    for (const std::string& q : queries) seen = seen || q == r.query;
    if (!seen) queries.push_back(r.query);
  }
  for (const std::string& q : queries) {
    std::printf("%-8s", q.c_str());
    for (const std::string& e : engine_order) {
      const RunResult* found = nullptr;
      for (const RunResult& r : results) {
        if (r.query == q && r.engine == e) found = &r;
      }
      if (found == nullptr) {
        std::printf(" | %20s", "-");
      } else if (!found->ok) {
        std::printf(" | %20s", "FAILED*");
      } else {
        char cell[32];
        std::snprintf(cell, sizeof(cell), "%9.1fs | %2d cyc",
                      found->sim_seconds, found->cycles);
        std::printf(" | %20s", cell);
      }
    }
    std::printf("\n");
  }
  // Footnotes for failures.
  for (const RunResult& r : results) {
    if (!r.ok) {
      std::printf("  * %s on %s: %s\n", r.engine.c_str(), r.query.c_str(),
                  r.error.c_str());
    }
  }
  std::fflush(stdout);

  // Optional machine-readable dump for plotting.
  const char* csv_dir = std::getenv("RAPIDA_BENCH_CSV");
  if (csv_dir != nullptr && *csv_dir != '\0') {
    std::string file_name = title;
    for (char& c : file_name) {
      if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
    }
    std::string path = std::string(csv_dir) + "/" + file_name + ".csv";
    FILE* f = std::fopen(path.c_str(), "w");
    if (f != nullptr) {
      std::fprintf(f,
                   "query,engine,ok,sim_seconds,cycles,map_only_cycles,"
                   "scan_bytes,shuffle_bytes,write_bytes,result_rows\n");
      for (const RunResult& r : results) {
        std::fprintf(f, "%s,%s,%d,%.3f,%d,%d,%llu,%llu,%llu,%zu\n",
                     r.query.c_str(), r.engine.c_str(), r.ok ? 1 : 0,
                     r.sim_seconds, r.cycles, r.map_only_cycles,
                     static_cast<unsigned long long>(r.scan_bytes),
                     static_cast<unsigned long long>(r.shuffle_bytes),
                     static_cast<unsigned long long>(r.write_bytes),
                     r.result_rows);
      }
      std::fclose(f);
      std::printf("  (csv written to %s)\n", path.c_str());
    }
  }

  AppendBenchTrajectory(title, results);
}

namespace {

std::string GitRevision() {
  static std::string* rev = [] {
    auto* out = new std::string("unknown");
    FILE* p = ::popen("git rev-parse --short HEAD 2>/dev/null", "r");
    if (p != nullptr) {
      char buf[64] = {0};
      if (std::fgets(buf, sizeof(buf), p) != nullptr) {
        std::string s(buf);
        while (!s.empty() && (s.back() == '\n' || s.back() == '\r')) {
          s.pop_back();
        }
        if (!s.empty()) *out = s;
      }
      ::pclose(p);
    }
    return out;
  }();
  return *rev;
}

}  // namespace

void AppendBenchTrajectory(const std::string& title,
                           const std::vector<RunResult>& results) {
  const char* path = std::getenv("RAPIDA_BENCH_JSON");
  if (path != nullptr && *path == '\0') return;  // explicitly disabled
  std::string file = path != nullptr ? path : "BENCH_mapreduce.json";

  double wall = 0, mr_wall = 0, sim = 0;
  int failures = 0;
  for (const RunResult& r : results) {
    wall += r.wall_seconds;
    mr_wall += r.mr_wall_seconds;
    sim += r.sim_seconds;
    failures += r.ok ? 0 : 1;
  }
  int threads = BenchExecThreads();
  if (threads <= 0) {
    threads = static_cast<int>(std::thread::hardware_concurrency());
    if (threads <= 0) threads = 1;
  }

  FILE* f = std::fopen(file.c_str(), "a");
  if (f == nullptr) return;
  std::string name = title;
  for (char& c : name) {
    if (c == '"' || c == '\\') c = '\'';
  }
  std::fprintf(f,
               "{\"bench\":\"%s\",\"git_rev\":\"%s\",\"exec_threads\":%d,"
               "\"wall_seconds\":%.4f,\"mr_wall_seconds\":%.4f,"
               "\"sim_seconds\":%.2f,\"queries\":%zu,\"failures\":%d}\n",
               name.c_str(), GitRevision().c_str(), threads, wall, mr_wall,
               sim, results.size(), failures);
  std::fclose(f);
}

void RegisterQueryBenchmarks(const std::string& prefix,
                             const std::vector<std::string>& query_ids,
                             const std::vector<std::string>& engine_names,
                             const std::string& workload, Scale scale,
                             int num_nodes,
                             std::vector<RunResult>* sink) {
  for (const std::string& query : query_ids) {
    for (const std::string& engine_name : engine_names) {
      std::string bench_name = prefix + "/" + query + "/" + engine_name;
      benchmark::RegisterBenchmark(
          bench_name.c_str(),
          [query, engine_name, workload, scale, num_nodes,
           sink](benchmark::State& state) {
            Dataset* dataset = GetDataset(workload, scale);
            // Map-join threshold sized for the sample scale: dimension
            // tables (drugs, types, pathways) stay broadcastable, fact
            // tables (offers, assays, medline) do not — mirroring Hive's
            // behaviour on the full-size datasets.
            EngineOptions options;
            options.map_join_threshold_bytes = 8 * 1024;
            auto eng = MakeEngine(engine_name, options);
            RunResult last;
            for (auto _ : state) {
              last = RunOne(eng.get(), query, dataset,
                            ClusterModel(workload, scale, num_nodes));
              if (!last.ok) {
                state.SkipWithError(last.error.c_str());
                break;
              }
            }
            state.counters["SimSeconds"] = last.sim_seconds;
            state.counters["Cycles"] = last.cycles;
            state.counters["ShuffleMB"] =
                static_cast<double>(last.shuffle_bytes) / (1024.0 * 1024.0);
            if (sink != nullptr) sink->push_back(last);
          })
          ->Iterations(1)
          ->Unit(benchmark::kMillisecond);
    }
  }
}

}  // namespace rapida::bench
