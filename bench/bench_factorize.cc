// Factorized-intermediates (d-representation) sweep: every configuration
// runs twice — flat pipelines (factorized_intermediates off) vs the
// default factorized path — and the gap is what's on trial.
//
// Two parts, both at 1 and 8 shards:
//  - fig8: MG1-MG4 on BSBM-small under RAPIDAnalytics with the fig8 map
//    join threshold — the paper's multi-grouping setup, showing the
//    factorization factor the optimized engine sees;
//  - mg-pubmed: the MG-class PubMed catalog queries under Hive (Naive)
//    with map joins disabled, the paper's Table 4 shape: the multi-valued
//    star both shuffles and materializes its cross product, so flat vs
//    factorized shows up in every byte counter.
//
// Per row in BENCH_factorize.json (one JSON object per line; path
// overridable via RAPIDA_FACTORIZE_JSON): materialized bytes (Dfs lifetime
// writes), shuffled bytes, simulated seconds for both paths, and the
// factorized run's workflow factorization factor (flat rows / groups).
// scripts/check.sh gates on the mg-pubmed rows: factor > 1, factorized
// shuffle strictly below flat, and byte-identical results everywhere —
// a flat/factorized result mismatch makes this binary exit nonzero.
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "analytics/analytical_query.h"
#include "bench/bench_common.h"
#include "sparql/parser.h"
#include "workload/catalog.h"

namespace {

using rapida::bench::GetDataset;
using rapida::bench::Scale;

struct FactRun {
  bool ok = false;
  std::string error;
  double sim_seconds = 0;
  uint64_t materialized_bytes = 0;
  uint64_t shuffle_bytes = 0;
  double factor = 1.0;
  size_t result_rows = 0;
  uint64_t result_hash = 0;
};

/// FNV-1a over the sorted rendered rows: two runs hash equal iff their
/// result multisets are identical.
uint64_t HashResult(const rapida::analytics::BindingTable& table,
                    rapida::rdf::Dictionary& dict) {
  uint64_t h = 14695981039346656037ull;
  for (const std::string& row : table.ToSortedStrings(dict)) {
    for (char c : row) {
      h ^= static_cast<unsigned char>(c);
      h *= 1099511628211ull;
    }
    h ^= 0x1E;
    h *= 1099511628211ull;
  }
  return h;
}

struct PartSpec {
  const char* bench;
  const char* workload;
  Scale scale;
  const char* engine;
  std::vector<std::string> queries;
  bool map_joins;
};

FactRun RunConfig(const PartSpec& part, const std::string& query_id,
                  int shards, bool factorize) {
  FactRun out;
  auto cq = rapida::workload::FindQuery(query_id);
  if (!cq.ok()) {
    out.error = cq.status().ToString();
    return out;
  }
  auto parsed = rapida::sparql::ParseQuery((*cq)->sparql);
  if (!parsed.ok()) {
    out.error = parsed.status().ToString();
    return out;
  }
  auto query = rapida::analytics::AnalyzeQuery(**parsed);
  if (!query.ok()) {
    out.error = query.status().ToString();
    return out;
  }

  rapida::engine::Dataset* dataset = GetDataset(part.workload, part.scale);
  rapida::mr::ClusterConfig cluster_cfg =
      rapida::bench::ClusterModel(part.workload, part.scale, /*num_nodes=*/1);
  cluster_cfg.exec_threads = 8;
  cluster_cfg.num_shards = shards;
  cluster_cfg.sharding = rapida::mr::ShardingScheme::kLocality;

  rapida::engine::EngineOptions options;
  options.factorized_intermediates = factorize;
  options.num_shards = shards;
  options.sharding_scheme = rapida::mr::ShardingScheme::kLocality;
  if (part.map_joins) {
    options.map_join_threshold_bytes = 8 * 1024;  // as in the fig8 benches
  } else {
    options.enable_map_joins = false;  // Table 4's repartition-join shape
  }
  auto eng = rapida::bench::MakeEngine(part.engine, options);

  rapida::mr::Cluster cluster(cluster_cfg, &dataset->dfs());
  uint64_t written_before = dataset->dfs().LifetimeBytesWritten();
  rapida::engine::ExecStats stats;
  auto result = eng->Execute(*query, dataset, &cluster, &stats);
  if (!result.ok()) {
    out.error = result.status().ToString();
    return out;
  }
  out.ok = true;
  out.sim_seconds = stats.workflow.TotalSimSeconds();
  out.materialized_bytes =
      dataset->dfs().LifetimeBytesWritten() - written_before;
  out.shuffle_bytes = stats.workflow.TotalShuffleBytes();
  out.factor = stats.workflow.FactorizationFactor();
  out.result_rows = result->NumRows();
  out.result_hash = HashResult(*result, dataset->dict());
  return out;
}

}  // namespace

int main() {
  const char* json_env = std::getenv("RAPIDA_FACTORIZE_JSON");
  std::string json_path = json_env != nullptr && *json_env != '\0'
                              ? json_env
                              : "BENCH_factorize.json";
  FILE* json = std::fopen(json_path.c_str(), "w");
  if (json == nullptr) {
    std::fprintf(stderr, "cannot open %s for writing\n", json_path.c_str());
    return 2;
  }

  // Every MG-class PubMed catalog query (MG11-MG18 plus the MG13F
  // overflow fixture) — the queries check.sh holds to factor > 1.
  std::vector<std::string> mg_queries;
  for (const std::string& id :
       rapida::workload::QueriesForDataset("pubmed")) {
    if (id.rfind("MG", 0) == 0) mg_queries.push_back(id);
  }

  const std::vector<PartSpec> parts = {
      {"fig8", "bsbm", Scale::kSmall, "RAPIDAnalytics",
       {"MG1", "MG2", "MG3", "MG4"}, /*map_joins=*/true},
      {"mg-pubmed", "pubmed", Scale::kSmall, "Hive (Naive)", mg_queries,
       /*map_joins=*/false},
  };
  const std::vector<int> shard_counts = {1, 8};

  int violations = 0;
  for (const PartSpec& part : parts) {
    std::printf("=== %s: %s on %s, flat vs factorized, shards 1/8 ===\n",
                part.bench, part.engine, part.workload);
    std::printf("%-6s %-6s %13s %13s %13s %13s %7s %s\n", "query", "shards",
                "flat_mat", "fact_mat", "flat_shuf", "fact_shuf", "factor",
                "identical");
    // Warm-up pass: the first execution of each query materializes any
    // missing VP tables into the shared Dfs, which would otherwise be
    // charged to the first measured configuration's materialized bytes.
    for (const std::string& q : part.queries) {
      (void)RunConfig(part, q, /*shards=*/1, /*factorize=*/false);
    }
    for (const std::string& q : part.queries) {
      for (int shards : shard_counts) {
        FactRun flat = RunConfig(part, q, shards, /*factorize=*/false);
        FactRun fact = RunConfig(part, q, shards, /*factorize=*/true);
        if (!flat.ok || !fact.ok) {
          std::fprintf(stderr, "%s/%s shards=%d failed: %s\n", part.bench,
                       q.c_str(), shards,
                       (!flat.ok ? flat.error : fact.error).c_str());
          violations++;
          continue;
        }
        bool identical = flat.result_hash == fact.result_hash &&
                         flat.result_rows == fact.result_rows;
        if (!identical) violations++;
        std::printf("%-6s %-6d %13" PRIu64 " %13" PRIu64 " %13" PRIu64
                    " %13" PRIu64 " %6.2fx %s\n",
                    q.c_str(), shards, flat.materialized_bytes,
                    fact.materialized_bytes, flat.shuffle_bytes,
                    fact.shuffle_bytes, fact.factor,
                    identical ? "yes" : "NO <-- VIOLATION");
        std::fprintf(
            json,
            "{\"bench\":\"%s\",\"query\":\"%s\",\"engine\":\"%s\","
            "\"shards\":%d,\"flat_sim_seconds\":%.2f,"
            "\"fact_sim_seconds\":%.2f,\"flat_materialized_bytes\":%" PRIu64
            ",\"fact_materialized_bytes\":%" PRIu64
            ",\"flat_shuffle_bytes\":%" PRIu64
            ",\"fact_shuffle_bytes\":%" PRIu64
            ",\"factorization_factor\":%.3f,\"result_rows\":%zu,"
            "\"result_hash\":\"%016" PRIx64 "\",\"identical\":%d}\n",
            part.bench, q.c_str(), part.engine, shards, flat.sim_seconds,
            fact.sim_seconds, flat.materialized_bytes,
            fact.materialized_bytes, flat.shuffle_bytes, fact.shuffle_bytes,
            fact.factor, fact.result_rows, fact.result_hash,
            identical ? 1 : 0);
      }
    }
    std::printf("\n");
  }
  std::fclose(json);
  std::printf("wrote %s\n", json_path.c_str());
  if (violations > 0) {
    std::fprintf(stderr,
                 "%d violation(s): factorized results must be byte-identical "
                 "to flat\n",
                 violations);
    return 1;
  }
  return 0;
}
