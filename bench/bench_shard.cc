// Shard scale-out sweep on the Fig. 8 multi-grouping workloads: MG1-MG4
// on BSBM-small (the Fig. 8a setup) and BSBM-large (Fig. 8b), executed by
// RAPIDAnalytics on the sharded data plane at 1 / 2 / 4 / 8 shards under
// both placement schemes, against the single-node unsharded baseline.
//
// Three things are on trial, all recorded per row in BENCH_shard.json
// (one JSON object per line; path overridable via RAPIDA_SHARD_JSON):
//  - byte identity: every sharded configuration must produce exactly the
//    unsharded result (compared via the sorted rendered rows' hash) — a
//    violation makes this binary exit nonzero;
//  - scale-out: sim_seconds shrink as shards are added, because the
//    shards are the cost model's nodes (speedup column, baseline / row);
//  - locality: the locality-aware scheme must move strictly fewer
//    cross-shard bytes than hash-by-subject (scripts/check.sh asserts
//    this, and the >= 3x speedup at 8 shards, from the JSON).
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <string>
#include <vector>

#include "analytics/analytical_query.h"
#include "bench/bench_common.h"
#include "sparql/parser.h"
#include "workload/catalog.h"

namespace {

using rapida::bench::GetDataset;
using rapida::bench::Scale;

struct ShardRun {
  bool ok = false;
  std::string error;
  double sim_seconds = 0;
  int cycles = 0;
  uint64_t shuffle_bytes = 0;
  uint64_t local_bytes = 0;
  uint64_t cross_bytes = 0;
  size_t result_rows = 0;
  uint64_t result_hash = 0;
};

/// FNV-1a over the engine-comparison form (sorted rendered rows), so two
/// runs hash equal iff their result multisets are identical.
uint64_t HashResult(const rapida::analytics::BindingTable& table,
                    rapida::rdf::Dictionary& dict) {
  uint64_t h = 14695981039346656037ull;
  for (const std::string& row : table.ToSortedStrings(dict)) {
    for (char c : row) {
      h ^= static_cast<unsigned char>(c);
      h *= 1099511628211ull;
    }
    h ^= 0x1E;  // row separator
    h *= 1099511628211ull;
  }
  return h;
}

ShardRun RunConfig(const std::string& query_id, const std::string& workload,
                   Scale scale, int shards,
                   rapida::mr::ShardingScheme scheme) {
  ShardRun out;
  auto cq = rapida::workload::FindQuery(query_id);
  if (!cq.ok()) {
    out.error = cq.status().ToString();
    return out;
  }
  auto parsed = rapida::sparql::ParseQuery((*cq)->sparql);
  if (!parsed.ok()) {
    out.error = parsed.status().ToString();
    return out;
  }
  auto query = rapida::analytics::AnalyzeQuery(**parsed);
  if (!query.ok()) {
    out.error = query.status().ToString();
    return out;
  }

  rapida::engine::Dataset* dataset = GetDataset(workload, scale);

  // Single-node cost model: the unsharded baseline runs on one node, and
  // each added shard contributes one node's worth of slots — the scale-out
  // the sweep measures. The sample is scaled to the paper's dataset sizes
  // so byte-bound costs dominate, as on the testbed.
  rapida::mr::ClusterConfig cluster_cfg =
      rapida::bench::ClusterModel(workload, scale, /*num_nodes=*/1);
  cluster_cfg.exec_threads = 8;
  cluster_cfg.num_shards = shards;
  cluster_cfg.sharding = scheme;

  rapida::engine::EngineOptions options;
  options.map_join_threshold_bytes = 8 * 1024;  // as in the fig8 benches
  options.num_shards = shards;
  options.sharding_scheme = scheme;
  auto eng = rapida::bench::MakeEngine("RAPIDAnalytics", options);

  rapida::mr::Cluster cluster(cluster_cfg, &dataset->dfs());
  rapida::engine::ExecStats stats;
  auto result = eng->Execute(*query, dataset, &cluster, &stats);
  if (!result.ok()) {
    out.error = result.status().ToString();
    return out;
  }
  out.ok = true;
  out.sim_seconds = stats.workflow.TotalSimSeconds();
  out.cycles = stats.workflow.NumCycles();
  out.shuffle_bytes = stats.workflow.TotalShuffleBytes();
  out.local_bytes = stats.workflow.TotalLocalShuffleBytes();
  out.cross_bytes = stats.workflow.TotalCrossShardBytes();
  out.result_rows = result->NumRows();
  out.result_hash = HashResult(*result, dataset->dict());
  return out;
}

}  // namespace

int main() {
  const char* json_env = std::getenv("RAPIDA_SHARD_JSON");
  std::string json_path =
      json_env != nullptr && *json_env != '\0' ? json_env : "BENCH_shard.json";
  FILE* json = std::fopen(json_path.c_str(), "w");
  if (json == nullptr) {
    std::fprintf(stderr, "cannot open %s for writing\n", json_path.c_str());
    return 2;
  }

  struct WorkloadSpec {
    const char* bench;
    const char* workload;
    Scale scale;
  };
  const std::vector<WorkloadSpec> workloads = {
      {"fig8a", "bsbm", Scale::kSmall},
      {"fig8b", "bsbm", Scale::kLarge},
  };
  const std::vector<std::string> queries = {"MG1", "MG2", "MG3", "MG4"};
  const std::vector<int> shard_counts = {1, 2, 4, 8};

  int violations = 0;
  for (const WorkloadSpec& w : workloads) {
    std::printf("=== %s: MG1-MG4, RAPIDAnalytics, shards 1/2/4/8 ===\n",
                w.bench);
    std::printf("%-5s %-7s %-13s %12s %14s %14s %9s %s\n", "query", "shards",
                "scheme", "sim_s", "local_bytes", "cross_bytes", "speedup",
                "identical");
    for (const std::string& q : queries) {
      ShardRun baseline;
      for (int shards : shard_counts) {
        std::vector<rapida::mr::ShardingScheme> schemes;
        if (shards <= 1) {
          schemes = {rapida::mr::ShardingScheme::kHashSubject};
        } else {
          schemes = {rapida::mr::ShardingScheme::kHashSubject,
                     rapida::mr::ShardingScheme::kLocality};
        }
        for (rapida::mr::ShardingScheme scheme : schemes) {
          ShardRun r = RunConfig(q, w.workload, w.scale, shards, scheme);
          if (!r.ok) {
            std::fprintf(stderr, "%s/%s shards=%d failed: %s\n", w.bench,
                         q.c_str(), shards, r.error.c_str());
            violations++;
            continue;
          }
          const char* scheme_name =
              shards <= 1 ? "none"
                          : rapida::mr::ShardingSchemeName(scheme);
          bool identical = true;
          double speedup = 1.0;
          if (shards <= 1) {
            baseline = r;
          } else {
            identical = baseline.ok &&
                        r.result_hash == baseline.result_hash &&
                        r.result_rows == baseline.result_rows;
            if (r.sim_seconds > 0) {
              speedup = baseline.sim_seconds / r.sim_seconds;
            }
            if (!identical) violations++;
          }
          std::printf("%-5s %-7d %-13s %12.1f %14" PRIu64 " %14" PRIu64
                      " %8.2fx %s\n",
                      q.c_str(), shards, scheme_name, r.sim_seconds,
                      r.local_bytes, r.cross_bytes, speedup,
                      identical ? "yes" : "NO <-- VIOLATION");
          std::fprintf(
              json,
              "{\"bench\":\"%s\",\"query\":\"%s\",\"engine\":"
              "\"RAPIDAnalytics\",\"shards\":%d,\"scheme\":\"%s\","
              "\"sim_seconds\":%.2f,\"cycles\":%d,\"shuffle_bytes\":%" PRIu64
              ",\"local_bytes\":%" PRIu64 ",\"cross_bytes\":%" PRIu64
              ",\"result_rows\":%zu,\"result_hash\":\"%016" PRIx64
              "\",\"identical\":%d,\"speedup\":%.3f}\n",
              w.bench, q.c_str(), shards, scheme_name, r.sim_seconds,
              r.cycles, r.shuffle_bytes, r.local_bytes, r.cross_bytes,
              r.result_rows, r.result_hash, identical ? 1 : 0, speedup);
        }
      }
    }
    std::printf("\n");
  }
  std::fclose(json);
  std::printf("wrote %s\n", json_path.c_str());
  if (violations > 0) {
    std::fprintf(stderr,
                 "%d violation(s): sharded results must be byte-identical "
                 "to the unsharded baseline\n",
                 violations);
    return 1;
  }
  return 0;
}
