// Extension bench (the paper's §6 future work, "more complex OLAP
// queries"): ROLLUP-style queries with THREE related groupings. The N-ary
// composite rewriting evaluates the whole rollup lattice level set as one
// composite pattern + one parallel Agg-Join cycle; the baselines pay per
// level.
#include <benchmark/benchmark.h>

#include "bench/bench_common.h"

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);

  std::vector<rapida::bench::RunResult> bsbm_results;
  std::vector<rapida::bench::RunResult> pubmed_results;
  rapida::bench::RegisterQueryBenchmarks(
      "ext_rollup/bsbm", {"R1"}, rapida::bench::AllEngineNames(), "bsbm",
      rapida::bench::Scale::kSmall, /*num_nodes=*/10, &bsbm_results);
  rapida::bench::RegisterQueryBenchmarks(
      "ext_rollup/pubmed", {"R2"}, rapida::bench::AllEngineNames(),
      "pubmed", rapida::bench::Scale::kSmall, /*num_nodes=*/60,
      &pubmed_results);

  benchmark::RunSpecifiedBenchmarks();
  rapida::bench::PrintTable(
      "Extension — R1 rollup (feature,country)/(country)/() on BSBM",
      rapida::bench::AllEngineNames(), bsbm_results);
  rapida::bench::PrintTable(
      "Extension — R2 rollup (country,agency)/(country)/() on PubMed",
      rapida::bench::AllEngineNames(), pubmed_results);
  benchmark::Shutdown();
  return 0;
}
