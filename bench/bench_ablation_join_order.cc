// Ablation for greedy size-based join ordering: G5/G7-style chain
// patterns join four stars; starting from the smallest relation (drug
// metadata) instead of the query's textual order (bioassays first)
// shrinks the intermediate materializations. Cycle counts are identical —
// only bytes move.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench/bench_common.h"

namespace {

void Run(const std::string& engine_name, const std::string& query,
         benchmark::State& state, bool greedy) {
  rapida::engine::EngineOptions options;
  options.greedy_join_order = greedy;
  options.map_join_threshold_bytes = 8 * 1024;
  auto eng = rapida::bench::MakeEngine(engine_name, options);
  rapida::engine::Dataset* dataset =
      rapida::bench::GetDataset("chem", rapida::bench::Scale::kSmall);
  rapida::bench::RunResult r;
  for (auto _ : state) {
    r = rapida::bench::RunOne(
        eng.get(), query, dataset,
        rapida::bench::ClusterModel("chem", rapida::bench::Scale::kSmall,
                                    10));
    if (!r.ok) {
      state.SkipWithError(r.error.c_str());
      return;
    }
  }
  state.counters["SimSeconds"] = r.sim_seconds;
  state.counters["WriteMB"] =
      static_cast<double>(r.write_bytes) / (1024.0 * 1024.0);
  state.counters["Cycles"] = r.cycles;
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  for (const char* e : {"Hive (Naive)", "RAPIDAnalytics"}) {
    for (const char* q : {"G5", "G7", "MG6"}) {
      std::string engine_name = e, query = q;
      benchmark::RegisterBenchmark(
          ("ablation/join_order/" + engine_name + "/" + query + "/textual")
              .c_str(),
          [engine_name, query](benchmark::State& s) {
            Run(engine_name, query, s, false);
          })
          ->Iterations(1)
          ->Unit(benchmark::kMillisecond);
      benchmark::RegisterBenchmark(
          ("ablation/join_order/" + engine_name + "/" + query + "/greedy")
              .c_str(),
          [engine_name, query](benchmark::State& s) {
            Run(engine_name, query, s, true);
          })
          ->Iterations(1)
          ->Unit(benchmark::kMillisecond);
    }
  }
  benchmark::RunSpecifiedBenchmarks();
  std::printf("\nGreedy join ordering keeps cycle counts but reduces "
              "intermediate materialization (WriteMB) on chain-shaped "
              "patterns.\n");
  benchmark::Shutdown();
  return 0;
}
