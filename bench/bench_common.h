#ifndef RAPIDA_BENCH_BENCH_COMMON_H_
#define RAPIDA_BENCH_BENCH_COMMON_H_

#include <memory>
#include <string>
#include <vector>

#include "engines/engines.h"
#include "mapreduce/cluster.h"
#include "workload/catalog.h"

namespace rapida::bench {

/// Scale of the shared bench datasets.
enum class Scale { kSmall, kLarge };

/// Cached dataset for a workload (built once per process). `orc` toggles
/// compressed VP tables (the ORC ablation uses both variants).
engine::Dataset* GetDataset(const std::string& workload, Scale scale,
                            bool orc = true);

/// Cluster config matching the paper's setups: 10 nodes for BSBM-500K and
/// Chem2Bio2RDF, 50 for BSBM-2M, 60 for PubMed (§5.1). Executor threads
/// come from BenchExecThreads().
mr::ClusterConfig ClusterFor(int num_nodes);

/// Host threads the benches execute MR tasks with: the RAPIDA_EXEC_THREADS
/// environment variable when set, otherwise 0 (= hardware concurrency).
/// Results and simulated seconds are identical for any value; only real
/// wall time changes.
int BenchExecThreads();

/// Cluster config whose cost model scales the in-process sample up to the
/// paper's dataset sizes (BSBM 43 GB / 172 GB, Chem2Bio2RDF 60 GB, PubMed
/// 230 GB) so byte-bound costs dominate like they did on the testbed.
mr::ClusterConfig ClusterModel(const std::string& workload, Scale scale,
                               int num_nodes);

/// Outcome of one engine × query run.
struct RunResult {
  std::string query;
  std::string engine;
  bool ok = false;
  std::string error;
  double sim_seconds = 0;
  double wall_seconds = 0;     // host time for the whole engine run
  double mr_wall_seconds = 0;  // host time inside Cluster::Run only
  int cycles = 0;
  int map_only_cycles = 0;
  uint64_t scan_bytes = 0;
  uint64_t shuffle_bytes = 0;
  uint64_t write_bytes = 0;
  uint64_t peak_dfs_bytes = 0;
  size_t result_rows = 0;
};

/// Executes one catalog query on one engine; never throws, failures are
/// reported in the result.
RunResult RunOne(engine::Engine* eng, const std::string& query_id,
                 engine::Dataset* dataset, const mr::ClusterConfig& cluster);

/// Prints a paper-style table: rows = queries, columns = engines, cells =
/// simulated seconds (with cycle counts). When the RAPIDA_BENCH_CSV
/// environment variable names a directory, the raw results are also
/// appended as CSV there (one file per table, plot-ready). Additionally
/// appends one real-time trajectory entry via AppendBenchTrajectory.
void PrintTable(const std::string& title,
                const std::vector<std::string>& engine_order,
                const std::vector<RunResult>& results);

/// Appends one JSON line for this bench run to BENCH_mapreduce.json (path
/// overridable via RAPIDA_BENCH_JSON; empty value disables): bench title,
/// git revision, exec_threads, total host wall seconds (whole run and
/// MR-runtime-only), total simulated seconds. Lets successive PRs track
/// real-time speedup alongside the simulated numbers.
void AppendBenchTrajectory(const std::string& title,
                           const std::vector<RunResult>& results);

/// Registers a google-benchmark per (engine, query) that runs the full
/// workflow once per iteration and reports SimSeconds / Cycles counters.
/// Collected results land in `sink` for the summary table.
void RegisterQueryBenchmarks(const std::string& prefix,
                             const std::vector<std::string>& query_ids,
                             const std::vector<std::string>& engine_names,
                             const std::string& workload, Scale scale,
                             int num_nodes,
                             std::vector<RunResult>* sink);

/// Makes an engine by its display name ("Hive (Naive)", ...).
std::unique_ptr<engine::Engine> MakeEngine(
    const std::string& name,
    const engine::EngineOptions& options = engine::EngineOptions());

/// Standard engine name lists.
std::vector<std::string> AllEngineNames();
std::vector<std::string> HiveVsRapidAnalytics();

}  // namespace rapida::bench

#endif  // RAPIDA_BENCH_BENCH_COMMON_H_
