// Reproduces Figure 8(a): multi-grouping queries MG1-MG4 on BSBM-small,
// all four systems. Paper shape: cycle counts 9 / ~7 / 5 / 3 for MG1-MG2
// and 11 / ~8 / 7 / 4 for MG3-MG4; RAPIDAnalytics fastest throughout.
#include <benchmark/benchmark.h>

#include "bench/bench_common.h"

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);

  std::vector<rapida::bench::RunResult> results;
  rapida::bench::RegisterQueryBenchmarks(
      "fig8a", {"MG1", "MG2", "MG3", "MG4"},
      rapida::bench::AllEngineNames(), "bsbm",
      rapida::bench::Scale::kSmall, /*num_nodes=*/10, &results);

  benchmark::RunSpecifiedBenchmarks();
  rapida::bench::PrintTable(
      "Figure 8(a) — MG1-MG4 on BSBM-small (10-node model)",
      rapida::bench::AllEngineNames(), results);
  benchmark::Shutdown();
  return 0;
}
