// Cluster-size sweep (the paper's 10 / 50 / 60-node setups, §5.1): the
// same query and data on growing clusters. Per-cycle overhead does not
// parallelize, so the cycle-count advantage of RAPIDAnalytics persists at
// every cluster size while byte-bound costs shrink.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench/bench_common.h"

namespace {

void Run(const std::string& engine_name, int nodes,
         benchmark::State& state) {
  auto eng = rapida::bench::MakeEngine(engine_name);
  rapida::engine::Dataset* dataset =
      rapida::bench::GetDataset("bsbm", rapida::bench::Scale::kLarge);
  rapida::bench::RunResult r;
  for (auto _ : state) {
    r = rapida::bench::RunOne(eng.get(), "MG3", dataset,
                              rapida::bench::ClusterModel("bsbm", rapida::bench::Scale::kLarge, nodes));
    if (!r.ok) {
      state.SkipWithError(r.error.c_str());
      return;
    }
  }
  state.counters["SimSeconds"] = r.sim_seconds;
  state.counters["Nodes"] = nodes;
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  for (const char* e : {"Hive (Naive)", "RAPIDAnalytics"}) {
    for (int nodes : {10, 50, 60}) {
      std::string engine_name = e;
      benchmark::RegisterBenchmark(
          ("scaleout/MG3/" + engine_name + "/" + std::to_string(nodes) +
           "nodes")
              .c_str(),
          [engine_name, nodes](benchmark::State& s) {
            Run(engine_name, nodes, s);
          })
          ->Iterations(1)
          ->Unit(benchmark::kMillisecond);
    }
  }
  benchmark::RunSpecifiedBenchmarks();
  std::printf("\nSimSeconds shrink with nodes, but the fixed per-cycle "
              "overhead keeps the cycle-count gap visible at 60 nodes.\n");
  benchmark::Shutdown();
  return 0;
}
